//! Offline, in-repo subset of the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build container has no network access, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`],
//! [`Bencher::iter`], benchmark groups with `sample_size`, parameterised
//! IDs via [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one warm-up call sizes the batch so a
//! sample lasts roughly [`TARGET_SAMPLE`], then `sample_size` timed samples
//! run and the mean/min/max per-iteration times are printed. There are no
//! HTML reports, statistics beyond min/mean/max, or baselines — `--bench`
//! output here is for quick relative comparisons; the committed perf
//! numbers come from the experiments crate's own harness binary.
//!
//! Bench filters (`cargo bench -- <filter>`) are honoured by substring
//! match, and `--list` prints benchmark names, so `cargo test --benches`
//! style invocations stay cheap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Default number of samples per benchmark (kept small: the heavyweight
/// scenario benches here set `sample_size(10)` themselves anyway).
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Runs closures under timing; handed to bench functions.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `iters` times per sample.
    // Wall-clock reads are this crate's entire job (benchmark timing);
    // the workspace-wide disallowed-methods rule targets simulation code.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups benching one function over inputs.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark manager: owns CLI args (filter / `--list`) and defaults.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut list_only = false;
        // Accept the cargo-bench calling convention: flags we don't
        // implement are ignored; the first bare word is the filter.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--list" => list_only = true,
                "--bench" | "--test" | "--nocapture" | "--quiet" => {}
                a if a.starts_with('-') => {}
                a => {
                    if filter.is_none() {
                        filter = Some(a.to_string());
                    }
                }
            }
        }
        Criterion {
            filter,
            list_only,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequently registered benches.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Registers and (unless filtered out) runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, self, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Registers and (unless filtered out) runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, samples, self.criterion, f);
        self
    }

    /// Registers a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, samples: usize, criterion: &Criterion, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.list_only {
        println!("{name}: benchmark");
        return;
    }

    // Warm-up: one single-iteration sample, reused to size the batch.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.iters = iters;
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<56} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Declares a bench group function running each target against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 80).to_string(), "f/80");
        assert_eq!(BenchmarkId::from_parameter("x_y").to_string(), "x_y");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(0.002).ends_with(" ms"));
        assert!(fmt_time(0.000002).ends_with(" us"));
        assert!(fmt_time(0.000000002).ends_with(" ns"));
    }
}
