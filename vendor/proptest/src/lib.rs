//! Offline, in-repo subset of the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of the proptest API its property tests use: the [`Strategy`]
//! trait with `prop_map`/`boxed`, `any::<T>()` for the primitive types,
//! regex-subset string strategies (`"[a-z0-9]{1,12}"` style patterns),
//! tuple and integer-range strategies, [`collection::vec`], [`Just`],
//! `prop_oneof!`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros.
//!
//! Differences from the real crate, chosen deliberately for an offline
//! repro repo:
//!
//! * **No shrinking.** A failing case reports its inputs, case index, and
//!   seed instead of a minimised counterexample.
//! * **Deterministic.** Case seeds derive from the test name and case
//!   index, so CI failures reproduce exactly. `PROPTEST_CASES` still
//!   overrides the per-test case count (default 256).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Module alias so `prop::collection::vec(..)` paths work.
pub mod prop {
    pub use crate::collection;
}

/// The glob-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a union strategy choosing uniformly between the listed arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current property test case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property test case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current property test case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    let __proptest_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __proptest_result = (move || ->
                        ::std::result::Result<(), $crate::test_runner::TestCaseError>
                    {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __proptest_result.map_err(|e| (e, __proptest_inputs))
                });
            }
        )*
    };
}
