//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use crate::test_runner::new_rng;

    #[test]
    fn vec_respects_half_open_size_range() {
        let mut rng = new_rng("vec-size", 0);
        let s = vec(any::<u8>(), 1..4);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn vec_of_tuples_and_nested_vecs() {
        let mut rng = new_rng("vec-nest", 0);
        let s = vec((any::<u16>(), vec(any::<u8>(), 0..3)), 0..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 5);
            for (_, inner) in &v {
                assert!(inner.len() < 3);
            }
        }
    }
}
