//! The deterministic case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a test case failed.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message (what `prop_assert!` produces).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Default number of cases per property, as in the real proptest.
const DEFAULT_CASES: u32 = 256;

fn case_count() -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a number, got {v:?}")),
        Err(_) => DEFAULT_CASES,
    }
}

/// FNV-1a, used to derive a per-test seed base from the test name so every
/// property walks its own deterministic stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The RNG for case `case` of the property named `name`.
pub fn new_rng(name: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(fnv1a(name.as_bytes()) ^ (u64::from(case) << 1))
}

/// Runs `case_count()` generated cases of the property named `name`.
///
/// `f` generates its inputs from the provided RNG and returns `Err` with
/// the failure and a rendering of the inputs when an assertion fails.
///
/// # Panics
///
/// Panics on the first failing case, reporting the case index, seed
/// derivation, inputs, and message (there is no shrinking).
pub fn run<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let cases = case_count();
    for case in 0..cases {
        let mut rng = new_rng(name, case);
        if let Err((error, inputs)) = f(&mut rng) {
            panic!(
                "proptest property {name:?} failed at case {case}/{cases} \
                 (deterministic seed: fnv1a(name) ^ (case << 1))\n\
                 inputs: {inputs}\n{error}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_differ_by_case_and_name() {
        use rand::RngCore;
        assert_ne!(new_rng("a", 0).next_u64(), new_rng("a", 1).next_u64());
        assert_ne!(new_rng("a", 0).next_u64(), new_rng("b", 0).next_u64());
        assert_eq!(new_rng("a", 3).next_u64(), new_rng("a", 3).next_u64());
    }

    #[test]
    fn run_executes_every_case() {
        std::env::remove_var("PROPTEST_CASES");
        let mut n = 0;
        run("counter", |_rng| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, DEFAULT_CASES);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn run_reports_failures() {
        run("always-fails", |_rng| {
            Err((TestCaseError::fail("nope"), "x = 1".to_string()))
        });
    }
}
