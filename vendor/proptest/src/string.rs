//! Generator for the regex subset used as string strategies.
//!
//! Supported syntax (what the repo's tests actually use): a concatenation
//! of atoms, each a character class `[...]` or a literal character, each
//! optionally followed by `{n}` or `{m,n}`. Classes support literal
//! characters, `a-z` ranges, and a trailing `-` as a literal. Examples:
//! `"[a-z0-9]{1,12}"`, `"[a-z_][a-z0-9_]{0,30}"`, `"[ -~]{0,40}"`,
//! `"[A-Za-z0-9:/._-]{1,40}"`.

use rand::Rng;

use crate::test_runner::TestRng;

/// One pattern element: a set of candidate chars and a repetition range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset, so an unsupported test
/// pattern fails loudly instead of silently generating garbage.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            let idx = rng.gen_range(0..atom.chars.len());
            out.push(atom.chars[idx]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            '{' | '}' | ']' => panic!("unsupported regex syntax at {i} in {pattern:?}"),
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        atoms.push(Atom {
            chars: candidates,
            min,
            max,
        });
    }
    atoms
}

/// Parses the interior of `[...]` starting just past `[`; returns the
/// candidate set and the index just past `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = chars[i];
        // `a-z` range: a `-` that is neither first-after-something nor last.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (c as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for v in lo..=hi {
                set.push(char::from_u32(v).expect("valid char range"));
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in {pattern:?}"
    );
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    (set, i + 1)
}

/// Parses an optional `{n}` / `{m,n}` at `i`; returns `(min, max, next)`.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("quantifier min"),
            hi.trim().parse().expect("quantifier max"),
        ),
        None => {
            let n = body.trim().parse().expect("quantifier count");
            (n, n)
        }
    };
    assert!(min <= max, "inverted quantifier in {pattern:?}");
    (min, max, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    fn check(pattern: &str, ok: impl Fn(&str) -> bool) {
        let mut rng = new_rng(pattern, 0);
        for _ in 0..300 {
            let s = generate_from_pattern(pattern, &mut rng);
            assert!(ok(&s), "pattern {pattern:?} generated {s:?}");
        }
    }

    #[test]
    fn simple_class_with_counts() {
        check("[a-z0-9]{1,12}", |s| {
            (1..=12).contains(&s.len())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
        });
    }

    #[test]
    fn concatenated_atoms() {
        check("[a-z_][a-z0-9_]{0,30}", |s| {
            !s.is_empty()
                && s.len() <= 31
                && s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        });
    }

    #[test]
    fn printable_ascii_range() {
        check("[ -~]{0,40}", |s| {
            s.len() <= 40 && s.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn trailing_dash_is_literal() {
        check("[a-b.-]{1,5}", |s| {
            s.chars().all(|c| matches!(c, 'a' | 'b' | '.' | '-'))
        });
    }

    #[test]
    fn mixed_punctuation_class() {
        check("[A-Za-z0-9:/._-]{1,40}", |s| {
            (1..=40).contains(&s.len())
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || ":/._-".contains(c))
        });
    }

    #[test]
    fn exact_count_and_literals() {
        check("x[0-9]{3}", |s| {
            s.len() == 4 && s.starts_with('x') && s[1..].chars().all(|c| c.is_ascii_digit())
        });
    }

    #[test]
    fn lengths_cover_the_whole_quantifier_range() {
        let mut rng = new_rng("cover", 0);
        let mut seen = [false; 4];
        for _ in 0..500 {
            let s = generate_from_pattern("[ab]{0,3}", &mut rng);
            seen[s.len()] = true;
        }
        assert!(seen.iter().all(|&b| b), "lengths 0..=3 should all appear");
    }
}
