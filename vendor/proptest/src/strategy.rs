//! The [`Strategy`] trait and the primitive/combinator strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::{Rng, RngCore};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// container (e.g. the arms of `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among its arms (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy for a primitive type.
pub struct Any<T>(PhantomData<T>);

/// Returns the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly raw bit patterns (which already cover NaN/inf/subnormals),
        // with a boosted dose of the classic edge cases.
        const SPECIALS: [f64; 8] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::EPSILON,
        ];
        if rng.gen_range(0u32..16) == 0 {
            if rng.gen_range(0u32..4) == 0 {
                return f64::NAN;
            }
            return SPECIALS[rng.gen_range(0usize..SPECIALS.len())];
        }
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII; fall back to any scalar value.
        if rng.gen_range(0u32..4) != 0 {
            return char::from(rng.gen_range(0x20u32..0x7F) as u8);
        }
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                return c;
            }
        }
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}
int_range_strategy!(u32, u64, usize, i32, i64);

macro_rules! narrow_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.start as u32..self.end as u32) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(*self.start() as u32..=*self.end() as u32) as $ty
                }
            }
        )*
    };
}
narrow_range_strategy!(u8, u16);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn just_clones() {
        let mut rng = new_rng("just", 0);
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = new_rng("ranges", 0);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = new_rng("union", 0);
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_applies() {
        let mut rng = new_rng("map", 0);
        let s = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = new_rng("tuples", 0);
        let (a, b, c) = (any::<u8>(), 0u32..3, Just(7i64)).generate(&mut rng);
        let _ = a;
        assert!(b < 3);
        assert_eq!(c, 7);
    }
}
