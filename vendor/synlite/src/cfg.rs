//! Control-flow-graph lowering of function bodies.
//!
//! R10's interval analysis runs a fixpoint over basic blocks, so it needs
//! `let` / `if` / `while` / `loop` / `for` / `match` / `return` /
//! `break` / `continue` structure rather than a flat token stream. The
//! lowering here is approximate in the same spirit as [`crate::expr`]:
//! every statement keeps its raw tokens (for the expression parser), and
//! constructs we cannot model precisely fall back to conservative edges
//! rather than being dropped.
//!
//! Known approximations, all conservative for a may-analysis joining at
//! merge points:
//! - `?` is treated as falling through (the early-return path leaves the
//!   function and so never reaches a checked site anyway);
//! - labelled `break`/`continue` target the innermost loop;
//! - `let .. else` blocks are lowered as diverging.

use crate::{Delim, Span, Tok, TokenTree};

/// A lowered function body: basic blocks with explicit edges.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

/// One basic block: straight-line statements plus a terminator.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements executed in order.
    pub stmts: Vec<Stmt>,
    /// How control leaves the block.
    pub term: Term,
}

/// One statement, with the raw tokens an analysis can re-parse.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Position of the statement's first token.
    pub span: Span,
    /// The statement shape.
    pub kind: StmtKind,
}

/// Statement shapes the lowering distinguishes.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `let [mut] name[: ty] = init;` — `name` is `None` for patterns
    /// more complex than one identifier, `init` is `None` for
    /// declarations without an initialiser.
    Let {
        /// Bound variable for single-identifier patterns.
        name: Option<String>,
        /// Every identifier the pattern binds (also for destructuring
        /// patterns where `name` is `None`) — an analysis must kill any
        /// fact about these, since they are rebound fresh.
        bindings: Vec<String>,
        /// Declared type text, when annotated.
        ty: Option<String>,
        /// Initialiser tokens.
        init: Option<Vec<TokenTree>>,
    },
    /// `target = value;` or `target op= value;` (`op` is the compound
    /// operator character, `None` for plain `=`).
    Assign {
        /// Left-hand-side tokens.
        target: Vec<TokenTree>,
        /// Compound operator (`+` for `+=`, ...), if any.
        op: Option<char>,
        /// Right-hand-side tokens.
        value: Vec<TokenTree>,
    },
    /// Any other expression statement (including scrutinees of lowered
    /// `match`/`if`/`while` — their condition tokens appear here so site
    /// scans still visit them).
    Expr(Vec<TokenTree>),
}

/// Block terminators.
#[derive(Clone, Debug, Default)]
pub enum Term {
    /// Unconditional jump.
    Goto(usize),
    /// Two-way branch on `cond` (empty for `if let`-style conditions the
    /// analysis cannot refine on).
    Branch {
        /// Condition tokens.
        cond: Vec<TokenTree>,
        /// Successor when the condition holds.
        then_to: usize,
        /// Successor when it does not.
        else_to: usize,
    },
    /// Multi-way branch from a `match`; each arm carries its pattern
    /// tokens (guard included) and target block.
    Match {
        /// `(pattern-and-guard tokens, target block)` per arm.
        arms: Vec<(Vec<TokenTree>, usize)>,
    },
    /// The function returns here.
    #[default]
    Return,
}

/// Lowers a function body (the token stream inside the outer braces) to a
/// [`Cfg`].
pub fn lower(body: &[TokenTree]) -> Cfg {
    let mut b = Builder {
        blocks: vec![Block::default()],
        cur: 0,
        loops: Vec::new(),
    };
    b.stmts(body);
    b.seal(Term::Return);
    Cfg { blocks: b.blocks }
}

struct LoopCtx {
    continue_to: usize,
    break_to: usize,
}

struct Builder {
    blocks: Vec<Block>,
    cur: usize,
    loops: Vec<LoopCtx>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn emit(&mut self, span: Span, kind: StmtKind) {
        self.blocks[self.cur].stmts.push(Stmt { span, kind });
    }

    /// Terminates the current block and moves the cursor to a fresh
    /// (initially unreachable) one.
    fn seal(&mut self, term: Term) {
        self.blocks[self.cur].term = term;
    }

    fn goto_new(&mut self) -> usize {
        let next = self.new_block();
        self.seal(Term::Goto(next));
        self.cur = next;
        next
    }

    /// Lowers a statement list into the current block chain.
    fn stmts(&mut self, trees: &[TokenTree]) {
        let mut i = 0usize;
        while i < trees.len() {
            let t = &trees[i];
            // Skip attributes and stray semicolons.
            if t.is_punct(';') {
                i += 1;
                continue;
            }
            if t.is_punct('#') {
                i += 1;
                if matches!(trees.get(i), Some(n) if n.group(Delim::Bracket).is_some()) {
                    i += 1;
                }
                continue;
            }
            match t.ident() {
                Some("let") => i = self.lower_let(trees, i),
                Some("if") => i = self.lower_if(trees, i),
                Some("while") => i = self.lower_while(trees, i),
                Some("loop") => i = self.lower_loop(trees, i),
                Some("for") => i = self.lower_for(trees, i),
                Some("match") => i = self.lower_match(trees, i),
                Some("return") => {
                    let end = stmt_end(trees, i + 1);
                    if i + 1 < end {
                        self.emit(t.span, StmtKind::Expr(trees[i + 1..end].to_vec()));
                    }
                    self.seal(Term::Return);
                    self.cur = self.new_block();
                    i = end + 1;
                }
                Some(kw @ ("break" | "continue")) => {
                    let end = stmt_end(trees, i + 1);
                    let target = self.loops.last().map(|l| {
                        if kw == "break" {
                            l.break_to
                        } else {
                            l.continue_to
                        }
                    });
                    match target {
                        Some(to) => self.seal(Term::Goto(to)),
                        None => self.seal(Term::Return),
                    }
                    self.cur = self.new_block();
                    i = end + 1;
                }
                _ => {
                    // Bare block statement: lower inline.
                    if let Some(inner) = t.group(Delim::Brace) {
                        let inner = inner.to_vec();
                        self.stmts(&inner);
                        i += 1;
                        continue;
                    }
                    i = self.lower_expr_stmt(trees, i);
                }
            }
        }
    }

    fn lower_let(&mut self, trees: &[TokenTree], i: usize) -> usize {
        let span = trees[i].span;
        let end = stmt_end(trees, i + 1);
        let inner = &trees[i + 1..end];
        // `let PAT[: TY] = INIT [else { .. }]`.
        let eq = top_level_eq(inner);
        let (pat_ty, init) = match eq {
            Some(p) => (&inner[..p], Some(&inner[p + 1..])),
            None => (inner, None),
        };
        // Split an optional `: ty` off the pattern (top-level single `:`).
        let mut colon = None;
        let mut k = 0usize;
        while k < pat_ty.len() {
            if pat_ty[k].is_punct(':') {
                if k + 1 < pat_ty.len() && pat_ty[k + 1].is_punct(':') {
                    k += 2;
                    continue;
                }
                colon = Some(k);
                break;
            }
            k += 1;
        }
        let (pat, ty) = match colon {
            Some(c) => (
                &pat_ty[..c],
                Some(crate::ast::tokens_text(&pat_ty[c + 1..])),
            ),
            None => (pat_ty, None),
        };
        let name = simple_binding(pat);
        let bindings = pattern_bindings(pat);
        // `let .. else { diverge }`: the else block leaves this scope.
        let mut init_tokens = init.map(|s| s.to_vec());
        let mut has_else = false;
        if let Some(toks) = &mut init_tokens {
            if let Some(e) = toks
                .iter()
                .position(|t| t.is_ident("else"))
                .filter(|e| matches!(toks.get(e + 1), Some(n) if n.group(Delim::Brace).is_some()))
            {
                toks.truncate(e);
                has_else = true;
            }
        }
        self.emit(
            span,
            StmtKind::Let {
                name,
                bindings,
                ty,
                init: init_tokens,
            },
        );
        if has_else {
            // Model the refutable binding as a branch whose else-side
            // diverges.
            let cont = self.new_block();
            let diverge = self.new_block();
            self.seal(Term::Branch {
                cond: Vec::new(),
                then_to: cont,
                else_to: diverge,
            });
            self.blocks[diverge].term = Term::Return;
            self.cur = cont;
        }
        end + 1
    }

    fn lower_if(&mut self, trees: &[TokenTree], i: usize) -> usize {
        // `if COND { .. } [else if .. | else { .. }]`
        let mut j = i + 1;
        let cond_start = j;
        while j < trees.len() && trees[j].group(Delim::Brace).is_none() {
            j += 1;
        }
        let cond = refinable_cond(&trees[cond_start..j]);
        let then_body: Vec<TokenTree> = trees
            .get(j)
            .and_then(|t| t.group(Delim::Brace))
            .map(|b| b.to_vec())
            .unwrap_or_default();
        let then_b = self.new_block();
        let join = self.new_block();
        // Lower the then-branch.
        let mut else_to = join;
        let mut next = j + 1;
        let mut else_lower: Option<usize> = None;
        if matches!(trees.get(next), Some(t) if t.is_ident("else")) {
            let eb = self.new_block();
            else_to = eb;
            else_lower = Some(eb);
            next += 1;
        }
        self.seal(Term::Branch {
            cond,
            then_to: then_b,
            else_to,
        });
        self.cur = then_b;
        self.stmts(&then_body);
        self.seal(Term::Goto(join));
        if let Some(eb) = else_lower {
            self.cur = eb;
            if matches!(trees.get(next), Some(t) if t.is_ident("if")) {
                next = self.lower_if(trees, next);
            } else if let Some(body) = trees.get(next).and_then(|t| t.group(Delim::Brace)) {
                let body = body.to_vec();
                self.stmts(&body);
                next += 1;
            }
            self.seal(Term::Goto(join));
        }
        self.cur = join;
        next
    }

    fn lower_while(&mut self, trees: &[TokenTree], i: usize) -> usize {
        let mut j = i + 1;
        let cond_start = j;
        while j < trees.len() && trees[j].group(Delim::Brace).is_none() {
            j += 1;
        }
        let cond = refinable_cond(&trees[cond_start..j]);
        let body: Vec<TokenTree> = trees
            .get(j)
            .and_then(|t| t.group(Delim::Brace))
            .map(|b| b.to_vec())
            .unwrap_or_default();
        let header = self.goto_new();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.seal(Term::Branch {
            cond,
            then_to: body_b,
            else_to: exit,
        });
        self.cur = body_b;
        self.loops.push(LoopCtx {
            continue_to: header,
            break_to: exit,
        });
        self.stmts(&body);
        self.loops.pop();
        self.seal(Term::Goto(header));
        self.cur = exit;
        j + 1
    }

    fn lower_loop(&mut self, trees: &[TokenTree], i: usize) -> usize {
        let body: Vec<TokenTree> = trees
            .get(i + 1)
            .and_then(|t| t.group(Delim::Brace))
            .map(|b| b.to_vec())
            .unwrap_or_default();
        let header = self.goto_new();
        let exit = self.new_block();
        self.loops.push(LoopCtx {
            continue_to: header,
            break_to: exit,
        });
        self.stmts(&body);
        self.loops.pop();
        self.seal(Term::Goto(header));
        self.cur = exit;
        i + 2
    }

    fn lower_for(&mut self, trees: &[TokenTree], i: usize) -> usize {
        // `for PAT in EXPR { .. }` — evaluate EXPR once, then an opaque
        // loop whose binding is unknown.
        let mut j = i + 1;
        while j < trees.len() && !trees[j].is_ident("in") {
            j += 1;
        }
        let pat = &trees[i + 1..j.min(trees.len())];
        let name = simple_binding(pat);
        let bindings = pattern_bindings(pat);
        let iter_start = j + 1;
        let mut k = iter_start;
        while k < trees.len() && trees[k].group(Delim::Brace).is_none() {
            k += 1;
        }
        if iter_start < k {
            self.emit(trees[i].span, StmtKind::Expr(trees[iter_start..k].to_vec()));
        }
        let body: Vec<TokenTree> = trees
            .get(k)
            .and_then(|t| t.group(Delim::Brace))
            .map(|b| b.to_vec())
            .unwrap_or_default();
        let header = self.goto_new();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.seal(Term::Branch {
            cond: Vec::new(),
            then_to: body_b,
            else_to: exit,
        });
        self.cur = body_b;
        // The loop variable is freshly bound each iteration with an
        // unknown value.
        self.emit(
            trees[i].span,
            StmtKind::Let {
                name,
                bindings,
                ty: None,
                init: None,
            },
        );
        self.loops.push(LoopCtx {
            continue_to: header,
            break_to: exit,
        });
        self.stmts(&body);
        self.loops.pop();
        self.seal(Term::Goto(header));
        self.cur = exit;
        k + 1
    }

    fn lower_match(&mut self, trees: &[TokenTree], i: usize) -> usize {
        let mut j = i + 1;
        while j < trees.len() && trees[j].group(Delim::Brace).is_none() {
            j += 1;
        }
        let scrutinee = &trees[i + 1..j.min(trees.len())];
        if !scrutinee.is_empty() {
            self.emit(trees[i].span, StmtKind::Expr(scrutinee.to_vec()));
        }
        let arms = trees
            .get(j)
            .and_then(|t| t.group(Delim::Brace))
            .map(crate::ast::match_arms)
            .unwrap_or_default();
        let owned: Vec<(Vec<TokenTree>, Vec<TokenTree>)> = arms
            .into_iter()
            .map(|a| (a.pattern.to_vec(), a.body.to_vec()))
            .collect();
        let join = self.new_block();
        let mut term_arms = Vec::new();
        let from = self.cur;
        for (pattern, body) in owned {
            let arm_b = self.new_block();
            term_arms.push((pattern, arm_b));
            self.cur = arm_b;
            if body.len() == 1 {
                if let Some(inner) = body[0].group(Delim::Brace) {
                    let inner = inner.to_vec();
                    self.stmts(&inner);
                    self.seal(Term::Goto(join));
                    continue;
                }
            }
            // Expression arm: lower as one statement list (handles
            // `return ..`, nested `match`, plain expressions alike).
            self.stmts(&body);
            self.seal(Term::Goto(join));
        }
        self.cur = from;
        self.seal(Term::Match { arms: term_arms });
        self.cur = join;
        j + 1
    }

    /// Lowers one expression/assignment statement ending at `;` or a
    /// top-level brace-terminated construct boundary.
    fn lower_expr_stmt(&mut self, trees: &[TokenTree], i: usize) -> usize {
        let end = stmt_end(trees, i);
        let span = trees[i].span;
        let inner = &trees[i..end];
        if let Some((p, op)) = top_level_assign(inner) {
            // `p` indexes the operator start: `=` for plain assignment,
            // the op char(s) for compound (`-=`, `<<=`).
            let value_at = match op {
                None => p + 1,
                Some('<' | '>') if inner.get(p + 1).map(|t| !t.is_punct('=')).unwrap_or(false) => {
                    p + 3
                }
                Some(_) => p + 2,
            };
            self.emit(
                span,
                StmtKind::Assign {
                    target: inner[..p].to_vec(),
                    op,
                    value: inner[value_at.min(inner.len())..].to_vec(),
                },
            );
        } else if !inner.is_empty() {
            self.emit(span, StmtKind::Expr(inner.to_vec()));
        }
        end + 1
    }
}

/// The index just past the last token of the statement starting at `i`
/// (the position of the terminating `;`, or `trees.len()`).
fn stmt_end(trees: &[TokenTree], i: usize) -> usize {
    let mut j = i;
    while j < trees.len() && !trees[j].is_punct(';') {
        j += 1;
    }
    j
}

/// Finds a top-level `=` that is plain assignment (`=`), not `==`, `<=`,
/// `>=`, `!=`, `=>`, and returns `(index-of-'='-token, compound-op)`.
/// For compound assignment (`+=`), the returned index is that of the `=`
/// and the operator char is carried separately (target excludes it).
fn top_level_assign(trees: &[TokenTree]) -> Option<(usize, Option<char>)> {
    let eq = top_level_eq(trees)?;
    if eq == 0 {
        return None;
    }
    if let Tok::Punct(c @ ('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')) = trees[eq - 1].tok {
        // `a += b` — exclude the op char from the target tokens.
        return Some((eq - 1, Some(c)));
    }
    if eq >= 2 && trees[eq - 1].is_punct('<') && trees[eq - 2].is_punct('<') {
        return Some((eq - 2, Some('<')));
    }
    if eq >= 2 && trees[eq - 1].is_punct('>') && trees[eq - 2].is_punct('>') {
        return Some((eq - 2, Some('>')));
    }
    Some((eq, None))
}

/// Finds the first top-level plain `=` (not part of `==`, `!=`, `<=`,
/// `>=`, `=>`, and not preceded by a comparison that consumed it).
fn top_level_eq(trees: &[TokenTree]) -> Option<usize> {
    let mut k = 0usize;
    while k < trees.len() {
        if trees[k].is_punct('=') {
            let next_eq = matches!(trees.get(k + 1), Some(t) if t.is_punct('=') || t.is_punct('>'));
            let prev_cmp = k > 0 && matches!(trees[k - 1].tok, Tok::Punct('=' | '!' | '<' | '>'));
            if next_eq {
                k += 2;
                continue;
            }
            if prev_cmp {
                // Part of `==`/`!=`/`<=`/`>=` — but `+=`-style compound
                // assignment is handled by the caller; `<`/`>` could also
                // be shifts (`<<=`), already excluded by prev char.
                k += 1;
                continue;
            }
            return Some(k);
        }
        k += 1;
    }
    None
}

/// `Some(name)` when the pattern is a single (optionally `mut`/`ref`)
/// identifier.
fn simple_binding(pat: &[TokenTree]) -> Option<String> {
    let pat: Vec<&TokenTree> = pat
        .iter()
        .filter(|t| !t.is_ident("mut") && !t.is_ident("ref"))
        .collect();
    match pat.as_slice() {
        [only] => only.ident().map(str::to_string),
        _ => None,
    }
}

/// Every identifier a pattern binds: lowercase-initial idents that are
/// not keywords, not path segments (`Enum::Variant`), and not struct
/// field names in `field: subpat` position. Good enough for kill sets —
/// over-approximating (killing a fact that would have survived) only
/// loses precision, never soundness.
pub fn pattern_bindings(pat: &[TokenTree]) -> Vec<String> {
    fn walk(trees: &[TokenTree], out: &mut Vec<String>) {
        let mut k = 0usize;
        while k < trees.len() {
            match &trees[k].tok {
                Tok::Ident(name) => {
                    let lower_start = name
                        .chars()
                        .next()
                        .map(|c| c.is_ascii_lowercase() || c == '_')
                        .unwrap_or(false);
                    let keyword = matches!(name.as_str(), "mut" | "ref" | "if" | "box" | "_");
                    let path_seg = matches!(trees.get(k + 1), Some(n) if n.is_punct(':'))
                        && matches!(trees.get(k + 2), Some(n) if n.is_punct(':'));
                    if path_seg {
                        k += 3;
                        continue;
                    }
                    // `field: subpat` — the ident names a field, the
                    // binding (if any) is in the sub-pattern.
                    if matches!(trees.get(k + 1), Some(n) if n.is_punct(':')) {
                        k += 2;
                        continue;
                    }
                    if lower_start && !keyword && !out.contains(name) {
                        out.push(name.clone());
                    }
                }
                Tok::Group(_, inner) => walk(inner, out),
                _ => {}
            }
            k += 1;
        }
    }
    let mut out = Vec::new();
    walk(pat, &mut out);
    out
}

/// Condition tokens usable for branch refinement: `if let`/`while let`
/// conditions yield an empty vec (no numeric refinement possible).
fn refinable_cond(cond: &[TokenTree]) -> Vec<TokenTree> {
    if matches!(cond.first(), Some(t) if t.is_ident("let")) {
        Vec::new()
    } else {
        cond.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_file;

    fn cfg(src: &str) -> Cfg {
        lower(&parse_file(src).expect("lex"))
    }

    #[test]
    fn straight_line_lets_and_assigns() {
        let c = cfg("let mut x: usize = 1; x += 2; self.pos = x;");
        let b = &c.blocks[0];
        assert_eq!(b.stmts.len(), 3);
        assert!(matches!(
            &b.stmts[0].kind,
            StmtKind::Let { name: Some(n), ty: Some(t), init: Some(_), .. }
                if n == "x" && t == "usize"
        ));
        assert!(matches!(
            &b.stmts[1].kind,
            StmtKind::Assign { op: Some('+'), .. }
        ));
        assert!(matches!(
            &b.stmts[2].kind,
            StmtKind::Assign { op: None, .. }
        ));
    }

    #[test]
    fn if_else_branches_and_join() {
        let c = cfg("if a < b { x = 1; } else { x = 2; } y = 3;");
        let Term::Branch {
            cond,
            then_to,
            else_to,
        } = &c.blocks[0].term
        else {
            panic!("want branch: {:?}", c.blocks[0].term);
        };
        assert_eq!(cond.len(), 3);
        assert_ne!(then_to, else_to);
        // Both sides join and the join block holds `y = 3`.
        let Term::Goto(j1) = c.blocks[*then_to].term else {
            panic!()
        };
        let Term::Goto(j2) = c.blocks[*else_to].term else {
            panic!()
        };
        assert_eq!(j1, j2);
        assert_eq!(c.blocks[j1].stmts.len(), 1);
    }

    #[test]
    fn while_loops_back_to_header() {
        let c = cfg("while i < n { i += 1; } done = 1;");
        // Entry jumps to a header that branches into body/exit.
        let Term::Goto(h) = c.blocks[0].term else {
            panic!()
        };
        let Term::Branch {
            then_to, else_to, ..
        } = c.blocks[h].term
        else {
            panic!()
        };
        let Term::Goto(back) = c.blocks[then_to].term else {
            panic!()
        };
        assert_eq!(back, h);
        assert_eq!(c.blocks[else_to].stmts.len(), 1);
    }

    #[test]
    fn match_fans_out_and_rejoins() {
        let c = cfg("match m { A => { x = 1; } B(v) => y = v, _ => {} } z = 1;");
        // Scrutinee recorded as an Expr stmt first.
        assert!(matches!(&c.blocks[0].stmts[0].kind, StmtKind::Expr(_)));
        let Term::Match { arms } = &c.blocks[0].term else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
    }

    #[test]
    fn break_targets_innermost_loop() {
        let c = cfg("loop { if done { break; } n += 1; } after = 1;");
        // Some block must Goto the loop exit (the block holding `after`).
        let exit = c
            .blocks
            .iter()
            .position(|b| {
                b.stmts.iter().any(|s| {
                    matches!(&s.kind, StmtKind::Assign { target, .. }
                        if target.first().map(|t| t.is_ident("after")).unwrap_or(false))
                })
            })
            .expect("exit block");
        assert!(c
            .blocks
            .iter()
            .enumerate()
            .any(|(bi, b)| { bi != exit && matches!(b.term, Term::Goto(to) if to == exit) }));
    }

    #[test]
    fn destructuring_let_reports_bindings() {
        let c = cfg("let Some(front) = q.front_mut() else { break; };");
        let StmtKind::Let { name, bindings, .. } = &c.blocks[0].stmts[0].kind else {
            panic!("want let");
        };
        assert_eq!(*name, None);
        assert_eq!(bindings, &["front".to_string()]);
        assert_eq!(
            pattern_bindings(&parse_file("Reply { id: rid, ref mut body }").expect("lex")),
            vec!["rid".to_string(), "body".to_string()]
        );
    }

    #[test]
    fn if_let_cond_is_not_refinable() {
        let c = cfg("if let Some(v) = q.pop() { x = v; }");
        let Term::Branch { cond, .. } = &c.blocks[0].term else {
            panic!()
        };
        assert!(cond.is_empty());
    }
}
