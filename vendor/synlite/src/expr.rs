//! A best-effort expression AST over lexed token trees.
//!
//! detlint's interval-dataflow pass (R10) needs to see *inside*
//! right-hand sides: `self.pos.checked_add(n)`, `(align - pos % align) %
//! align`, `s.try_into().unwrap_or([0; 2])`. The spanned token trees from
//! [`crate::parse_file`] are too flat for that, so this module parses one
//! expression at a time with a small precedence climber.
//!
//! The parser is deliberately forgiving: any construct outside the
//! recognised grammar (struct literals, closures, `if`/`match` in value
//! position, ...) becomes [`ExprKind::Opaque`] whose children are still
//! parsed best-effort, so an analysis can keep walking for interesting
//! sites without understanding the whole expression.

use crate::{Delim, Span, Tok, TokenTree};

use crate::ast::tokens_text;

/// A parsed expression with the source position of its head token.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Position of the expression's first token.
    pub span: Span,
    /// The expression shape.
    pub kind: ExprKind,
}

/// Binary operators the analysis distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
    /// Any other recognised-but-uninterpreted operator (`&`, `|`, `^`,
    /// `<<`, `>>`).
    Other,
}

/// The shape of one expression.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// An integer literal (underscores and a type suffix are accepted).
    Int(i128),
    /// A non-integer literal (string, float, char, bool keyword).
    Lit(String),
    /// A `::`-joined path: `x`, `u32::MAX`, `Endian::Big`.
    Path(String),
    /// Field access: `self.pos`, `hdr.len`.
    Field {
        /// The expression owning the field.
        base: Box<Expr>,
        /// The field name.
        name: String,
    },
    /// A path call: `wire_len(x)`, `u32::try_from(v)`.
    Call {
        /// The callee path (`wire_len`, `u32::try_from`).
        func: String,
        /// Parsed arguments.
        args: Vec<Expr>,
    },
    /// A method call: `buf.get(a..b)`, `x.min(y)`.
    MethodCall {
        /// The receiver expression.
        recv: Box<Expr>,
        /// The method name.
        name: String,
        /// Parsed arguments.
        args: Vec<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A prefix unary operation (`-`, `!`, `&`, `*`).
    Unary {
        /// The operator character.
        op: char,
        /// The operand.
        inner: Box<Expr>,
    },
    /// `expr as Type`.
    Cast {
        /// The value being cast.
        inner: Box<Expr>,
        /// The target type, as compact text.
        ty: String,
    },
    /// `expr?`.
    Try(Box<Expr>),
    /// `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `lo..hi` / `lo..=hi` (either end optional).
    Range {
        /// Lower bound, if present.
        lo: Option<Box<Expr>>,
        /// Upper bound, if present.
        hi: Option<Box<Expr>>,
        /// `true` for `..=`.
        inclusive: bool,
    },
    /// `[elem; len]`.
    Repeat {
        /// The repeated element.
        elem: Box<Expr>,
        /// The length expression.
        len: Box<Expr>,
    },
    /// Anything unrecognised; children are parsed best-effort so walks
    /// can still find sites inside.
    Opaque(Vec<Expr>),
}

impl Expr {
    /// Renders the expression back to a canonical compact string, used as
    /// a symbolic key by the dataflow pass (`self.pos`, `front.len()`).
    pub fn key(&self) -> String {
        match &self.kind {
            ExprKind::Int(v) => v.to_string(),
            ExprKind::Lit(s) | ExprKind::Path(s) => s.clone(),
            ExprKind::Field { base, name } => format!("{}.{name}", base.key()),
            ExprKind::Call { func, args } => {
                let args: Vec<String> = args.iter().map(Expr::key).collect();
                format!("{func}({})", args.join(","))
            }
            ExprKind::MethodCall { recv, name, args } => {
                let args: Vec<String> = args.iter().map(Expr::key).collect();
                format!("{}.{name}({})", recv.key(), args.join(","))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let op = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Other => "?op?",
                };
                format!("{} {op} {}", lhs.key(), rhs.key())
            }
            ExprKind::Unary { op, inner } => format!("{op}{}", inner.key()),
            ExprKind::Cast { inner, ty } => format!("{} as {ty}", inner.key()),
            ExprKind::Try(inner) => format!("{}?", inner.key()),
            ExprKind::Index { base, index } => format!("{}[{}]", base.key(), index.key()),
            ExprKind::Range { lo, hi, inclusive } => format!(
                "{}..{}{}",
                lo.as_ref().map(|e| e.key()).unwrap_or_default(),
                if *inclusive { "=" } else { "" },
                hi.as_ref().map(|e| e.key()).unwrap_or_default(),
            ),
            ExprKind::Repeat { elem, len } => format!("[{}; {}]", elem.key(), len.key()),
            ExprKind::Opaque(_) => "?".to_string(),
        }
    }

    /// Visits this expression and every child, outermost first.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Int(_) | ExprKind::Lit(_) | ExprKind::Path(_) => {}
            ExprKind::Field { base, .. } => base.walk(f),
            ExprKind::Call { args, .. } => args.iter().for_each(|a| a.walk(f)),
            ExprKind::MethodCall { recv, args, .. } => {
                recv.walk(f);
                args.iter().for_each(|a| a.walk(f));
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Unary { inner, .. } | ExprKind::Cast { inner, .. } | ExprKind::Try(inner) => {
                inner.walk(f)
            }
            ExprKind::Index { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            ExprKind::Range { lo, hi, .. } => {
                if let Some(lo) = lo {
                    lo.walk(f);
                }
                if let Some(hi) = hi {
                    hi.walk(f);
                }
            }
            ExprKind::Repeat { elem, len } => {
                elem.walk(f);
                len.walk(f);
            }
            ExprKind::Opaque(children) => children.iter().for_each(|c| c.walk(f)),
        }
    }
}

/// Parses `trees` as one expression. Always succeeds; unrecognised input
/// degrades to [`ExprKind::Opaque`].
pub fn parse_expr(trees: &[TokenTree]) -> Expr {
    let mut p = Parser { trees, i: 0 };
    let e = p.expr(0);
    if p.i < trees.len() {
        // Leftover tokens: the whole thing was not a single expression we
        // understand. Keep what parsed as an opaque child alongside a
        // best-effort parse of the remainder.
        let rest = parse_children(&trees[p.i..]);
        let mut children = vec![e];
        children.extend(rest);
        return Expr {
            span: span_of(trees),
            kind: ExprKind::Opaque(children),
        };
    }
    e
}

fn span_of(trees: &[TokenTree]) -> Span {
    trees
        .first()
        .map(|t| t.span)
        .unwrap_or(Span { line: 0, col: 0 })
}

/// Best-effort parse of a token run into child expressions: groups parse
/// recursively, everything else is skipped.
fn parse_children(trees: &[TokenTree]) -> Vec<Expr> {
    let mut out = Vec::new();
    for t in trees {
        if let Tok::Group(_, inner) = &t.tok {
            out.push(parse_expr(inner));
        }
    }
    out
}

struct Parser<'a> {
    trees: &'a [TokenTree],
    i: usize,
}

/// Binding powers, loosest to tightest.
const BP_RANGE: u8 = 1;
const BP_OR: u8 = 2;
const BP_AND: u8 = 3;
const BP_CMP: u8 = 4;
const BP_BITOR: u8 = 5;
const BP_ADD: u8 = 6;
const BP_MUL: u8 = 7;
const BP_CAST: u8 = 8;

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&'a TokenTree> {
        self.trees.get(self.i + off)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.trees.get(self.i);
        self.i += 1;
        t
    }

    fn at_punct(&self, off: usize, c: char) -> bool {
        matches!(self.peek(off), Some(t) if t.is_punct(c))
    }

    /// The operator starting at the cursor, with its binding power and
    /// token length. `None` when the next tokens are not a binary op.
    fn binop(&self) -> Option<(BinOp, u8, usize)> {
        let t = self.peek(0)?;
        let c = match &t.tok {
            Tok::Punct(c) => *c,
            Tok::Ident(s) if s == "as" => return Some((BinOp::Other, BP_CAST, 1)),
            _ => return None,
        };
        let eq = self.at_punct(1, '=');
        Some(match c {
            '.' if self.at_punct(1, '.') => {
                let len = if self.at_punct(2, '=') { 3 } else { 2 };
                (BinOp::Other, BP_RANGE, len)
            }
            '|' if self.at_punct(1, '|') => (BinOp::Or, BP_OR, 2),
            '&' if self.at_punct(1, '&') => (BinOp::And, BP_AND, 2),
            '=' if eq => (BinOp::Eq, BP_CMP, 2),
            '!' if eq => (BinOp::Ne, BP_CMP, 2),
            '<' if eq => (BinOp::Le, BP_CMP, 2),
            '>' if eq => (BinOp::Ge, BP_CMP, 2),
            '<' if self.at_punct(1, '<') => (BinOp::Other, BP_MUL, 2),
            '>' if self.at_punct(1, '>') => (BinOp::Other, BP_MUL, 2),
            '<' => (BinOp::Lt, BP_CMP, 1),
            '>' => (BinOp::Gt, BP_CMP, 1),
            '+' if !eq => (BinOp::Add, BP_ADD, 1),
            '-' if !eq => (BinOp::Sub, BP_ADD, 1),
            '*' if !eq => (BinOp::Mul, BP_MUL, 1),
            '/' if !eq => (BinOp::Div, BP_MUL, 1),
            '%' if !eq => (BinOp::Rem, BP_MUL, 1),
            '|' if !eq => (BinOp::Other, BP_BITOR, 1),
            '&' if !eq => (BinOp::Other, BP_BITOR, 1),
            '^' if !eq => (BinOp::Other, BP_BITOR, 1),
            _ => return None,
        })
    }

    fn expr(&mut self, min_bp: u8) -> Expr {
        let mut lhs = self.unary();
        // `..`/`..=` must not be confused with field access `.`.
        while let Some((op, bp, len)) = self.binop() {
            if bp < min_bp {
                break;
            }
            if bp == BP_RANGE {
                self.i += len;
                let inclusive = len == 3;
                let hi = if self.i < self.trees.len() && self.binop().is_none() {
                    Some(Box::new(self.expr(BP_RANGE + 1)))
                } else {
                    None
                };
                lhs = Expr {
                    span: lhs.span,
                    kind: ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                        inclusive,
                    },
                };
                continue;
            }
            if bp == BP_CAST {
                self.i += 1;
                // The target type runs as far as a plausible type can:
                // idents, `::`, and generic groups.
                let start = self.i;
                while let Some(t) = self.peek(0) {
                    match &t.tok {
                        Tok::Ident(_) | Tok::Punct(':') => self.i += 1,
                        _ => break,
                    }
                }
                lhs = Expr {
                    span: lhs.span,
                    kind: ExprKind::Cast {
                        inner: Box::new(lhs),
                        ty: tokens_text(&self.trees[start..self.i]),
                    },
                };
                continue;
            }
            self.i += len;
            let rhs = self.expr(bp + 1);
            lhs = Expr {
                span: lhs.span,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        lhs
    }

    fn unary(&mut self) -> Expr {
        if let Some(t) = self.peek(0) {
            if let Tok::Punct(c @ ('-' | '!' | '&' | '*')) = t.tok {
                // `&&x` lexes as two `&`; fold the double-reference.
                let span = t.span;
                self.i += 1;
                if c == '&' && matches!(self.peek(0), Some(n) if n.is_ident("mut")) {
                    self.i += 1;
                }
                let inner = self.unary();
                return Expr {
                    span,
                    kind: ExprKind::Unary {
                        op: c,
                        inner: Box::new(inner),
                    },
                };
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Expr {
        let mut e = self.primary();
        loop {
            // `?`
            if self.at_punct(0, '?') {
                self.i += 1;
                e = Expr {
                    span: e.span,
                    kind: ExprKind::Try(Box::new(e)),
                };
                continue;
            }
            // `.method(args)` / `.field` / `.await` — but not `..` range.
            if self.at_punct(0, '.') && !self.at_punct(1, '.') {
                if let Some(name) = self.peek(1).and_then(|t| t.ident()) {
                    // Skip a `::<..>` turbofish between name and args.
                    let mut k = 2;
                    if matches!(self.peek(k), Some(t) if t.is_punct(':'))
                        && matches!(self.peek(k + 1), Some(t) if t.is_punct(':'))
                    {
                        k += 2;
                        let mut depth = 0i32;
                        while let Some(t) = self.peek(k) {
                            match &t.tok {
                                Tok::Punct('<') => depth += 1,
                                Tok::Punct('>') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    if let Some(args) = self.peek(k).and_then(|t| t.group(Delim::Paren)) {
                        let args = parse_args(args);
                        self.i += k + 1;
                        e = Expr {
                            span: e.span,
                            kind: ExprKind::MethodCall {
                                recv: Box::new(e),
                                name: name.to_string(),
                                args,
                            },
                        };
                    } else {
                        self.i += 2;
                        e = Expr {
                            span: e.span,
                            kind: ExprKind::Field {
                                base: Box::new(e),
                                name: name.to_string(),
                            },
                        };
                    }
                    continue;
                }
                // Tuple index `.0` — treat as a field.
                if let Some(Tok::Lit(l)) = self.peek(1).map(|t| &t.tok) {
                    let name = l.clone();
                    self.i += 2;
                    e = Expr {
                        span: e.span,
                        kind: ExprKind::Field {
                            base: Box::new(e),
                            name,
                        },
                    };
                    continue;
                }
            }
            // Index `base[i]`.
            if let Some(inner) = self
                .peek(0)
                .and_then(|t| t.group(Delim::Bracket))
                .filter(|_| !matches!(e.kind, ExprKind::Opaque(_)))
            {
                let index = parse_expr(inner);
                self.i += 1;
                e = Expr {
                    span: e.span,
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                };
                continue;
            }
            break;
        }
        e
    }

    fn primary(&mut self) -> Expr {
        let Some(t) = self.bump() else {
            return Expr {
                span: Span { line: 0, col: 0 },
                kind: ExprKind::Opaque(Vec::new()),
            };
        };
        let span = t.span;
        match &t.tok {
            Tok::Lit(l) => match parse_int(l) {
                Some(v) => Expr {
                    span,
                    kind: ExprKind::Int(v),
                },
                None => Expr {
                    span,
                    kind: ExprKind::Lit(l.clone()),
                },
            },
            Tok::Ident(first) => {
                if first == "true" || first == "false" {
                    return Expr {
                        span,
                        kind: ExprKind::Lit(first.clone()),
                    };
                }
                // Keywords that start constructs we do not model.
                if matches!(
                    first.as_str(),
                    "if" | "match" | "loop" | "while" | "for" | "unsafe" | "move" | "return"
                ) {
                    let rest = &self.trees[self.i..];
                    self.i = self.trees.len();
                    return Expr {
                        span,
                        kind: ExprKind::Opaque(parse_children(rest)),
                    };
                }
                // Path: idents joined by `::`.
                let mut path = first.clone();
                while self.at_punct(0, ':') && self.at_punct(1, ':') {
                    if let Some(seg) = self.peek(2).and_then(|t| t.ident()) {
                        path.push_str("::");
                        path.push_str(seg);
                        self.i += 3;
                    } else if let Some(t) = self.peek(2) {
                        if t.is_punct('<') {
                            // turbofish `path::<..>` — skip the generics.
                            self.i += 3;
                            let mut depth = 1i32;
                            while let Some(t) = self.peek(0) {
                                match &t.tok {
                                    Tok::Punct('<') => depth += 1,
                                    Tok::Punct('>') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            self.i += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                self.i += 1;
                            }
                            continue;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                // A call when a paren group follows; a struct literal
                // (opaque) when a brace group follows a plain path.
                if let Some(args) = self.peek(0).and_then(|t| t.group(Delim::Paren)) {
                    let args = parse_args(args);
                    self.i += 1;
                    return Expr {
                        span,
                        kind: ExprKind::Call { func: path, args },
                    };
                }
                if let Some(body) = self.peek(0).and_then(|t| t.group(Delim::Brace)) {
                    self.i += 1;
                    return Expr {
                        span,
                        kind: ExprKind::Opaque(parse_children(body)),
                    };
                }
                Expr {
                    span,
                    kind: ExprKind::Path(path),
                }
            }
            Tok::Group(Delim::Paren, inner) => parse_expr_spanned(inner, span),
            Tok::Group(Delim::Bracket, inner) => {
                // `[elem; len]` repeat or an array literal (opaque).
                if let Some(semi) = inner.iter().position(|t| t.is_punct(';')) {
                    let elem = parse_expr(&inner[..semi]);
                    let len = parse_expr(&inner[semi + 1..]);
                    Expr {
                        span,
                        kind: ExprKind::Repeat {
                            elem: Box::new(elem),
                            len: Box::new(len),
                        },
                    }
                } else {
                    Expr {
                        span,
                        kind: ExprKind::Opaque(parse_children(inner)),
                    }
                }
            }
            Tok::Group(Delim::Brace, inner) => Expr {
                span,
                kind: ExprKind::Opaque(parse_children(inner)),
            },
            // `<Ty>::func(args)` qualified calls and anything else
            // punctuation-led: opaque, children best-effort.
            _ => {
                let rest = &self.trees[self.i..];
                self.i = self.trees.len();
                let mut children = parse_children(rest);
                // Recover `<Ty>::name(args)` as a Call so checked
                // conversions (`<[u8; 4]>::try_from(s)`) are visible.
                if t.is_punct('<') {
                    if let Some(close) = rest.iter().position(|n| n.is_punct('>')) {
                        let after = &rest[close + 1..];
                        if after.len() >= 4 && after[0].is_punct(':') && after[1].is_punct(':') {
                            if let (Some(name), Some(args)) = (
                                after[2].ident(),
                                after.get(3).and_then(|n| n.group(Delim::Paren)),
                            ) {
                                return Expr {
                                    span,
                                    kind: ExprKind::Call {
                                        func: format!("<{}>::{name}", tokens_text(&rest[..close])),
                                        args: parse_args(args),
                                    },
                                };
                            }
                        }
                    }
                    children = parse_children(rest);
                }
                Expr {
                    span,
                    kind: ExprKind::Opaque(children),
                }
            }
        }
    }
}

fn parse_expr_spanned(trees: &[TokenTree], span: Span) -> Expr {
    let mut e = parse_expr(trees);
    if trees.is_empty() {
        e.span = span;
    }
    e
}

/// Splits a call argument list on top-level commas and parses each.
fn parse_args(inner: &[TokenTree]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut depth = 0i32;
    for (i, t) in inner.iter().enumerate() {
        match &t.tok {
            Tok::Punct('<') => depth += 1,
            // `->` is not a closing angle bracket.
            Tok::Punct('>') if !(i > 0 && inner[i - 1].is_punct('-')) => depth -= 1,
            Tok::Punct(',') if depth <= 0 => {
                if start < i {
                    out.push(parse_expr(&inner[start..i]));
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < inner.len() {
        out.push(parse_expr(&inner[start..]));
    }
    out
}

/// Parses an integer literal: decimal/hex/octal/binary, `_` separators,
/// optional type suffix.
pub fn parse_int(lit: &str) -> Option<i128> {
    let clean: String = lit.chars().filter(|c| *c != '_').collect();
    let body = clean.as_str();
    // Strip a type suffix (`10usize`, `0xFFu32`).
    let strip = |s: &str| -> String {
        for suf in [
            "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        ] {
            if let Some(stripped) = s.strip_suffix(suf) {
                return stripped.to_string();
            }
        }
        s.to_string()
    };
    let body = strip(body);
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        return i128::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = body.strip_prefix("0o") {
        return i128::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = body.strip_prefix("0b") {
        return i128::from_str_radix(bin, 2).ok();
    }
    if body.is_empty() || !body.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    body.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_file;

    fn expr(src: &str) -> Expr {
        parse_expr(&parse_file(src).expect("lex"))
    }

    #[test]
    fn arithmetic_precedence() {
        let e = expr("a + b * 2");
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &e.kind
        else {
            panic!("want Add at top: {e:?}");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn method_chain_and_try() {
        let e = expr("self.pos.checked_add(n).ok_or(Eof)?");
        assert_eq!(e.key(), "self.pos.checked_add(n).ok_or(Eof)?");
    }

    #[test]
    fn modulo_alignment_shape() {
        let e = expr("(align - pos % align) % align");
        let ExprKind::Binary {
            op: BinOp::Rem,
            lhs,
            rhs,
        } = &e.kind
        else {
            panic!("want Rem: {e:?}");
        };
        assert_eq!(rhs.key(), "align");
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn ranges_and_indexing() {
        let e = expr("buf.get(self.pos..end)");
        let ExprKind::MethodCall { name, args, .. } = &e.kind else {
            panic!("want method call: {e:?}");
        };
        assert_eq!(name, "get");
        assert!(matches!(args[0].kind, ExprKind::Range { .. }));
        assert!(matches!(expr("xs[i + 1]").kind, ExprKind::Index { .. }));
    }

    #[test]
    fn repeat_and_qualified_call() {
        assert!(matches!(expr("[0; 2]").kind, ExprKind::Repeat { .. }));
        let e = expr("<[u8; 4]>::try_from(s)");
        let ExprKind::Call { func, .. } = &e.kind else {
            panic!("want call: {e:?}");
        };
        assert_eq!(func, "<[u8;4]>::try_from");
    }

    #[test]
    fn int_literals() {
        assert_eq!(parse_int("1_000"), Some(1000));
        assert_eq!(parse_int("0xFFu32"), Some(255));
        assert_eq!(parse_int("12usize"), Some(12));
        assert_eq!(parse_int("abc"), None);
    }

    #[test]
    fn comparisons_join_two_chars() {
        let e = expr("a <= b");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Le, .. }));
        let e = expr("x != y");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Ne, .. }));
    }

    #[test]
    fn unknown_constructs_degrade_to_opaque() {
        let e = expr("if c { 1 } else { 2 }");
        assert!(matches!(e.kind, ExprKind::Opaque(_)));
        let e = expr("Foo { a: 1 }");
        assert!(matches!(e.kind, ExprKind::Opaque(_)));
    }
}
