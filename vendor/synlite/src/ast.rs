//! A lightweight item-level AST on top of the token-tree lexer.
//!
//! [`parse_items`] walks a lexed stream and recovers just enough structure
//! for interprocedural lint rules: `fn` declarations (name, receiver, body
//! stream), `impl`/`trait` blocks (self type, trait name, methods), inline
//! `mod`s, `enum`s with their variants, and `struct` names. Everything it
//! does not recognise becomes [`ItemKind::Other`] and is skipped without
//! error — like the lexer, this is a lint front-end, not a compiler.
//!
//! Two expression-level utilities complete the surface `crates/lint`
//! needs: [`call_sites`] extracts every path call (`a::b::c(..)`) and
//! method call (`recv.next_frame(..)`) from a token stream, and
//! [`match_arms`] splits a `match` body into `pattern => body` arms.
//!
//! Test gating follows the lexer-era convention: any item whose outer
//! attributes mention the ident `test` (`#[test]`, `#[cfg(test)]`,
//! `#[cfg(all(test, ..))]`) is marked [`Item::test_only`], and the flag is
//! inherited by everything nested inside it.

use crate::{Delim, Span, Tok, TokenTree};

/// One recognised top-level or nested item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Position of the item keyword (`fn`, `impl`, ...).
    pub span: Span,
    /// `true` when the item (or an enclosing item) is test-gated.
    pub test_only: bool,
    /// The parsed shape.
    pub kind: ItemKind,
}

/// The recognised item shapes.
#[derive(Clone, Debug)]
pub enum ItemKind {
    /// A `fn` declaration (free, method, or trait default).
    Fn(FnDecl),
    /// An `impl` or `trait` block and the items inside it.
    Impl(ImplBlock),
    /// An inline `mod name { .. }`.
    Mod(ModDecl),
    /// An `enum` with its variant list.
    Enum(EnumDecl),
    /// A `struct` (name only; fields are not modelled).
    Struct(StructDecl),
}

/// A `fn` declaration.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// The function name.
    pub name: String,
    /// `true` when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Simply-named parameters with their declared types (`x: usize`);
    /// `self` receivers and destructuring patterns are omitted.
    pub params: Vec<Param>,
    /// The body token stream; `None` for body-less signatures
    /// (trait-required methods, `extern` decls).
    pub body: Option<Vec<TokenTree>>,
}

/// One simply-named `name: Type` function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// The binding name (without `mut`).
    pub name: String,
    /// The declared type, rendered as compact source text.
    pub ty: String,
}

/// An `impl Type`, `impl Trait for Type`, or `trait Name` block.
#[derive(Clone, Debug)]
pub struct ImplBlock {
    /// The implemented-on type name (last path segment), or the trait
    /// name for a `trait` block.
    pub self_ty: String,
    /// The trait name (last path segment) for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Items inside the block (methods, nested consts are skipped).
    pub items: Vec<Item>,
}

/// An inline module.
#[derive(Clone, Debug)]
pub struct ModDecl {
    /// The module name.
    pub name: String,
    /// Items inside the module body.
    pub items: Vec<Item>,
}

/// An `enum` declaration.
#[derive(Clone, Debug)]
pub struct EnumDecl {
    /// The enum name.
    pub name: String,
    /// The declared variants, in order.
    pub variants: Vec<Variant>,
}

/// One enum variant.
#[derive(Clone, Debug)]
pub struct Variant {
    /// The variant name.
    pub name: String,
    /// Position of the variant name.
    pub span: Span,
}

/// A `struct` declaration (name and position only).
#[derive(Clone, Debug)]
pub struct StructDecl {
    /// The struct name.
    pub name: String,
    /// Named fields with their declared types; empty for tuple/unit
    /// structs and structs whose body was not recognised.
    pub fields: Vec<Param>,
}

/// Renders a token slice back to compact source text: idents/literals are
/// separated by single spaces only where gluing them would merge tokens,
/// punctuation binds tightly, and groups re-print their delimiters.
pub fn tokens_text(trees: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in trees {
        let piece = match &t.tok {
            Tok::Ident(s) => s.clone(),
            Tok::Lifetime(s) => format!("'{s}"),
            Tok::Punct(c) => c.to_string(),
            Tok::Lit(s) => s.clone(),
            Tok::Group(d, inner) => {
                let (open, close) = match d {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                format!("{open}{}{close}", tokens_text(inner))
            }
        };
        let needs_space = matches!(
            (out.chars().last(), piece.chars().next()),
            (Some(a), Some(b)) if (a.is_alphanumeric() || a == '_') && (b.is_alphanumeric() || b == '_')
        );
        if needs_space {
            out.push(' ');
        }
        out.push_str(&piece);
    }
    out
}

/// Parses a lexed token stream into items. Unrecognised tokens are
/// skipped; nested items inside `fn` bodies are not recovered.
pub fn parse_items(trees: &[TokenTree]) -> Vec<Item> {
    parse_items_inner(trees, false)
}

fn parse_items_inner(trees: &[TokenTree], inherited_test: bool) -> Vec<Item> {
    let mut items = Vec::new();
    let mut pending_test = false;
    let mut i = 0;
    while i < trees.len() {
        let t = &trees[i];
        // Outer attribute: `#` `[..]` (inner `#![..]` has a `!` between).
        if t.is_punct('#') {
            let mut j = i + 1;
            if matches!(trees.get(j), Some(n) if n.is_punct('!')) {
                j += 1;
            }
            if let Some(Tok::Group(Delim::Bracket, inner)) = trees.get(j).map(|n| &n.tok) {
                if contains_ident(inner, "test") {
                    pending_test = true;
                }
                i = j + 1;
                continue;
            }
        }
        let Some(kw) = t.ident() else {
            // A stray `;` ends whatever the pending attributes applied to.
            if t.is_punct(';') {
                pending_test = false;
            }
            i += 1;
            continue;
        };
        let test_only = inherited_test || pending_test;
        match kw {
            "fn" => {
                let (item, next) = parse_fn(trees, i, test_only);
                if let Some(item) = item {
                    items.push(item);
                }
                pending_test = false;
                i = next;
            }
            "impl" | "trait" => {
                let (item, next) = parse_impl(trees, i, kw == "trait", test_only);
                if let Some(item) = item {
                    items.push(item);
                }
                pending_test = false;
                i = next;
            }
            "mod" => {
                let name = trees.get(i + 1).and_then(|n| n.ident());
                let body = trees.get(i + 2).and_then(|n| n.group(Delim::Brace));
                if let (Some(name), Some(body)) = (name, body) {
                    items.push(Item {
                        span: t.span,
                        test_only,
                        kind: ItemKind::Mod(ModDecl {
                            name: name.to_string(),
                            items: parse_items_inner(body, test_only),
                        }),
                    });
                    pending_test = false;
                    i += 3;
                } else {
                    // `mod name;` — out-of-line; nothing to recover here.
                    pending_test = false;
                    i += 1;
                }
            }
            "enum" => {
                let name = trees.get(i + 1).and_then(|n| n.ident());
                // Skip generics between the name and the body.
                let mut j = i + 2;
                j = skip_generics(trees, j);
                let body = trees.get(j).and_then(|n| n.group(Delim::Brace));
                if let (Some(name), Some(body)) = (name, body) {
                    items.push(Item {
                        span: t.span,
                        test_only,
                        kind: ItemKind::Enum(EnumDecl {
                            name: name.to_string(),
                            variants: parse_variants(body),
                        }),
                    });
                    pending_test = false;
                    i = j + 1;
                } else {
                    pending_test = false;
                    i += 1;
                }
            }
            "struct" => {
                if let Some(name) = trees.get(i + 1).and_then(|n| n.ident()) {
                    // Named fields live in the brace group after the name
                    // (and any generics); tuple/unit structs have none.
                    let j = skip_generics(trees, i + 2);
                    let fields = trees
                        .get(j)
                        .and_then(|n| n.group(Delim::Brace))
                        .map(parse_params)
                        .unwrap_or_default();
                    items.push(Item {
                        span: t.span,
                        test_only,
                        kind: ItemKind::Struct(StructDecl {
                            name: name.to_string(),
                            fields,
                        }),
                    });
                }
                pending_test = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    items
}

/// Parses `fn name<..>(args) -> Ret { body }` starting at the `fn`
/// keyword. Returns the item (if the shape is recognisable) and the index
/// to resume scanning at.
fn parse_fn(trees: &[TokenTree], i: usize, test_only: bool) -> (Option<Item>, usize) {
    let span = trees[i].span;
    let Some(name) = trees.get(i + 1).and_then(|n| n.ident()) else {
        return (None, i + 1);
    };
    let mut j = skip_generics(trees, i + 2);
    // The argument list is the first paren group after the generics.
    let Some(args) = trees.get(j).and_then(|n| n.group(Delim::Paren)) else {
        return (None, i + 1);
    };
    let has_self = args
        .iter()
        .take_while(|a| !a.is_punct(','))
        .any(|a| a.is_ident("self"));
    let params = parse_params(args);
    j += 1;
    // Return type / where clause run up to the body brace or a `;`.
    let mut body = None;
    while j < trees.len() {
        match &trees[j].tok {
            Tok::Group(Delim::Brace, inner) => {
                body = Some(inner.clone());
                j += 1;
                break;
            }
            Tok::Punct(';') => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (
        Some(Item {
            span,
            test_only,
            kind: ItemKind::Fn(FnDecl {
                name: name.to_string(),
                has_self,
                params,
                body,
            }),
        }),
        j,
    )
}

/// Parses `name: Type` pairs from a comma-separated list (fn argument
/// list or struct body). `self` receivers, destructuring patterns,
/// attributes and visibility modifiers are skipped; only simply-named
/// entries are kept.
fn parse_params(list: &[TokenTree]) -> Vec<Param> {
    let mut params = Vec::new();
    for piece in split_commas(list) {
        // Drop leading attributes (`#[..]`), `pub`/`pub(..)` and `mut`.
        let mut k = 0;
        while k < piece.len() {
            if piece[k].is_punct('#') {
                k += 1;
                if matches!(
                    piece.get(k).map(|n| &n.tok),
                    Some(Tok::Group(Delim::Bracket, _))
                ) {
                    k += 1;
                }
                continue;
            }
            if piece[k].is_ident("pub") {
                k += 1;
                if matches!(
                    piece.get(k).map(|n| &n.tok),
                    Some(Tok::Group(Delim::Paren, _))
                ) {
                    k += 1;
                }
                continue;
            }
            if piece[k].is_ident("mut") {
                k += 1;
                continue;
            }
            break;
        }
        let Some(name) = piece.get(k).and_then(|n| n.ident()) else {
            continue;
        };
        if name == "self" {
            continue;
        }
        // `name :` but not `name ::` (a path expression, not a binding).
        if !matches!(piece.get(k + 1), Some(n) if n.is_punct(':'))
            || matches!(piece.get(k + 2), Some(n) if n.is_punct(':'))
        {
            continue;
        }
        params.push(Param {
            name: name.to_string(),
            ty: tokens_text(&piece[k + 2..]),
        });
    }
    params
}

/// Splits a token list on top-level commas (angle-bracket generic depth is
/// respected so `BTreeMap<K, V>` stays one piece).
fn split_commas(list: &[TokenTree]) -> Vec<&[TokenTree]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in list.iter().enumerate() {
        match &t.tok {
            Tok::Punct('<') => depth += 1,
            // `->` is not a closing angle bracket.
            Tok::Punct('>') if !(i > 0 && list[i - 1].is_punct('-')) => depth -= 1,
            Tok::Punct(',') if depth == 0 => {
                out.push(&list[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < list.len() {
        out.push(&list[start..]);
    }
    out
}

/// Parses `impl [<..>] [Trait for] Type [where ..] { items }` or
/// `trait Name { items }` starting at the keyword.
fn parse_impl(
    trees: &[TokenTree],
    i: usize,
    is_trait: bool,
    test_only: bool,
) -> (Option<Item>, usize) {
    let span = trees[i].span;
    // Collect header idents outside angle-bracket depth until the body.
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut header: Vec<&str> = Vec::new();
    let mut body = None;
    while j < trees.len() {
        match &trees[j].tok {
            Tok::Group(Delim::Brace, inner) if depth == 0 => {
                body = Some(inner);
                j += 1;
                break;
            }
            Tok::Punct(';') if depth == 0 => {
                j += 1;
                break;
            }
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                // `->` inside a generic bound (`Fn(..) -> T`) is not a
                // closing angle bracket.
                let arrow = j > 0 && trees[j - 1].is_punct('-');
                if !arrow {
                    depth -= 1;
                }
            }
            Tok::Ident(name) if depth == 0 => header.push(name.as_str()),
            _ => {}
        }
        j += 1;
    }
    let Some(body) = body else {
        return (None, j);
    };
    // Drop the where clause from the header before naming types.
    let header: Vec<&str> = match header.iter().position(|s| *s == "where") {
        Some(w) => header[..w].to_vec(),
        None => header,
    };
    let (self_ty, trait_name) = if is_trait {
        match header.first() {
            Some(name) => (name.to_string(), None),
            None => return (None, j),
        }
    } else {
        match header.iter().position(|s| *s == "for") {
            Some(f) if f > 0 && f + 1 < header.len() => (
                header.last().map(|s| s.to_string()).unwrap_or_default(),
                Some(header[f - 1].to_string()),
            ),
            _ => match header.last() {
                Some(name) => (name.to_string(), None),
                None => return (None, j),
            },
        }
    };
    (
        Some(Item {
            span,
            test_only,
            kind: ItemKind::Impl(ImplBlock {
                self_ty,
                trait_name,
                items: parse_items_inner(body, test_only),
            }),
        }),
        j,
    )
}

/// Skips a balanced `<..>` generic-parameter run starting at `j`, if one
/// is present. `->` arrows inside bounds do not close the run.
fn skip_generics(trees: &[TokenTree], mut j: usize) -> usize {
    if !matches!(trees.get(j), Some(n) if n.is_punct('<')) {
        return j;
    }
    let mut depth = 0i32;
    while j < trees.len() {
        if trees[j].is_punct('<') {
            depth += 1;
        } else if trees[j].is_punct('>') {
            let arrow = j > 0 && trees[j - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

/// Splits an enum body into variants at top-level commas; the variant
/// name is the first non-attribute ident of each chunk.
fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // One chunk: up to the next top-level comma.
        let start = i;
        while i < body.len() && !body[i].is_punct(',') {
            i += 1;
        }
        let chunk = &body[start..i];
        i += 1; // past the comma
        let mut k = 0;
        while k < chunk.len() {
            if chunk[k].is_punct('#') {
                // skip the attribute group
                k += 1;
                if matches!(
                    chunk.get(k).map(|n| &n.tok),
                    Some(Tok::Group(Delim::Bracket, _))
                ) {
                    k += 1;
                }
                continue;
            }
            if let Some(name) = chunk[k].ident() {
                variants.push(Variant {
                    name: name.to_string(),
                    span: chunk[k].span,
                });
            }
            break;
        }
    }
    variants
}

fn contains_ident(trees: &[TokenTree], name: &str) -> bool {
    trees.iter().any(|t| match &t.tok {
        Tok::Ident(s) => s == name,
        Tok::Group(_, inner) => contains_ident(inner, name),
        _ => false,
    })
}

/// How a call site invokes its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::c(..)` or `c(..)`.
    Path,
    /// `recv.method(..)`.
    Method,
}

/// One extracted call expression.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Position of the called name (last path segment / method name).
    pub span: Span,
    /// Path segments; a single element for bare calls and method calls.
    pub segments: Vec<String>,
    /// Path call vs method call.
    pub kind: CallKind,
}

/// Keywords that look call-shaped when followed by a paren group
/// (`if (..)`, `while (..)`, `return (..)`, ...).
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "break",
    "continue", "fn", "let", "mut", "ref", "where", "impl", "dyn", "await", "unsafe", "use", "pub",
    "crate", "super", "box", "yield",
];

/// Extracts every path call and method call from `trees`, recursing into
/// nested groups. Macro invocations (`name!(..)`) and attribute bodies
/// (`#[..]`) are excluded.
pub fn call_sites(trees: &[TokenTree]) -> Vec<CallSite> {
    let mut out = Vec::new();
    collect_calls(trees, &mut out);
    out
}

fn collect_calls(trees: &[TokenTree], out: &mut Vec<CallSite>) {
    let mut i = 0;
    while i < trees.len() {
        let t = &trees[i];
        // Attribute bodies are not expression context.
        if t.is_punct('#') {
            let mut j = i + 1;
            if matches!(trees.get(j), Some(n) if n.is_punct('!')) {
                j += 1;
            }
            if matches!(
                trees.get(j).map(|n| &n.tok),
                Some(Tok::Group(Delim::Bracket, _))
            ) {
                i = j + 1;
                continue;
            }
        }
        // Method call: `.name[::<..>](..)`.
        if t.is_punct('.') {
            if let Some(name_tok) = trees.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    let mut j = i + 2;
                    j = skip_turbofish(trees, j);
                    if matches!(trees.get(j), Some(n) if n.group(Delim::Paren).is_some()) {
                        out.push(CallSite {
                            span: name_tok.span,
                            segments: vec![name.to_string()],
                            kind: CallKind::Method,
                        });
                    }
                }
            }
            i += 1;
            continue;
        }
        // Path call: `a::b::c[::<..>](..)`, not preceded by `.` (that is
        // the method case) and not a macro (`name!(..)`) or `fn` decl.
        if let Some(first) = t.ident() {
            let after_dot = i > 0 && trees[i - 1].is_punct('.');
            let after_fn = i > 0 && trees[i - 1].is_ident("fn");
            if !after_dot && !after_fn && !CALL_KEYWORDS.contains(&first) {
                let mut segments = vec![first.to_string()];
                let mut j = i + 1;
                loop {
                    if matches!(trees.get(j), Some(n) if n.is_punct(':'))
                        && matches!(trees.get(j + 1), Some(n) if n.is_punct(':'))
                    {
                        if let Some(seg) = trees.get(j + 2).and_then(|n| n.ident()) {
                            segments.push(seg.to_string());
                            j += 3;
                            continue;
                        }
                        // `::<..>` turbofish — the path may continue
                        // after it (`Vec::<u8>::new`).
                        if matches!(trees.get(j + 2), Some(n) if n.is_punct('<')) {
                            j = skip_angle_run(trees, j + 2);
                            continue;
                        }
                    }
                    break;
                }
                let last_span = if segments.len() == 1 {
                    t.span
                } else {
                    // span of the final segment (j - 1 is its index when
                    // no turbofish followed; recompute defensively)
                    trees
                        .get(j.saturating_sub(1))
                        .map(|n| n.span)
                        .unwrap_or(t.span)
                };
                let is_macro = matches!(trees.get(j), Some(n) if n.is_punct('!'));
                if !is_macro && matches!(trees.get(j), Some(n) if n.group(Delim::Paren).is_some()) {
                    out.push(CallSite {
                        span: last_span,
                        segments,
                        kind: CallKind::Path,
                    });
                }
                // Resume after the path (the paren group itself is still
                // recursed into below via the normal walk).
                i = j.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    // Recurse into groups (arguments, bodies, brackets).
    for t in trees {
        if let Tok::Group(_, inner) = &t.tok {
            collect_calls(inner, out);
        }
    }
}

/// Skips a `::<..>` turbofish starting at `j`, returning the index after
/// the closing `>`.
fn skip_turbofish(trees: &[TokenTree], j: usize) -> usize {
    if matches!(trees.get(j), Some(n) if n.is_punct(':'))
        && matches!(trees.get(j + 1), Some(n) if n.is_punct(':'))
        && matches!(trees.get(j + 2), Some(n) if n.is_punct('<'))
    {
        return skip_angle_run(trees, j + 2);
    }
    j
}

/// Skips a balanced `<..>` run starting at the `<` at index `j`.
fn skip_angle_run(trees: &[TokenTree], mut j: usize) -> usize {
    let mut depth = 0i32;
    while j < trees.len() {
        if trees[j].is_punct('<') {
            depth += 1;
        } else if trees[j].is_punct('>') {
            let arrow = j > 0 && trees[j - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

/// One `pattern => body` arm of a `match` body.
#[derive(Clone, Debug)]
pub struct MatchArm<'a> {
    /// The pattern tokens (including any `if` guard).
    pub pattern: &'a [TokenTree],
    /// The arm body: a single brace group or the expression tokens up to
    /// the separating comma.
    pub body: &'a [TokenTree],
}

/// Splits a `match` body into arms at `=>` boundaries.
pub fn match_arms(body: &[TokenTree]) -> Vec<MatchArm<'_>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let start = i;
        let mut arrow = None;
        while i < body.len() {
            if body[i].is_punct('=') && matches!(body.get(i + 1), Some(n) if n.is_punct('>')) {
                arrow = Some(i);
                break;
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        i = arrow + 2;
        let body_start = i;
        if matches!(body.get(i), Some(n) if n.group(Delim::Brace).is_some()) {
            i += 1;
        } else {
            while i < body.len() && !body[i].is_punct(',') {
                i += 1;
            }
        }
        arms.push(MatchArm {
            pattern: &body[start..arrow],
            body: &body[body_start..i],
        });
        if matches!(body.get(i), Some(n) if n.is_punct(',')) {
            i += 1;
        }
    }
    arms
}

/// How a [`FieldAccess`] uses the accessed field, judged purely from
/// the surrounding tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    /// The field is read (including method receivers — whether the
    /// named [`FieldAccess::method`] mutates is the caller's policy).
    Read,
    /// Plain assignment: `base.field = ..` (or through a trailing
    /// index / sub-field chain).
    Write,
    /// Compound assignment (`+=`, `|=`, ...) or a `&mut` borrow of the
    /// field — the old value is observable and a new one is stored.
    ReadWrite,
}

/// One `base.field[...][.more]` postfix access extracted from a token
/// stream: the receiver identifier, the chain of field names, how the
/// access uses the place, and the first method invoked on it (if the
/// chain ends in a call).
#[derive(Clone, Debug)]
pub struct FieldAccess {
    /// Position of the first field name.
    pub span: Span,
    /// The receiver identifier (`self`, a local, a parameter).
    pub base: String,
    /// Consecutive field names in the chain (`self.st.dir` → `["st",
    /// "dir"]`). Never empty.
    pub fields: Vec<String>,
    /// Syntactic usage mode.
    pub mode: AccessMode,
    /// The method terminating the chain, when the access is a method
    /// call on the place (`self.seen.insert(k)` → `Some("insert")`).
    pub method: Option<String>,
}

/// Extracts every field access (`ident.field...`) from `trees`,
/// recursing into nested groups. Method calls directly on an identifier
/// (`sys.read(..)` — no field in between) are *not* field accesses;
/// [`call_sites`] reports those.
pub fn field_accesses(trees: &[TokenTree]) -> Vec<FieldAccess> {
    let mut out = Vec::new();
    collect_field_accesses(trees, &mut out);
    out
}

fn collect_field_accesses(trees: &[TokenTree], out: &mut Vec<FieldAccess>) {
    let mut i = 0;
    while i < trees.len() {
        if let Tok::Group(_, inner) = &trees[i].tok {
            collect_field_accesses(inner, out);
            i += 1;
            continue;
        }
        // A receiver is an identifier not itself preceded by `.` or `::`
        // (those are field/path positions) and followed by `.ident` where
        // the ident is not immediately called (that is a plain method
        // call on the receiver, not a field access).
        let Some(base) = trees[i].ident() else {
            i += 1;
            continue;
        };
        let preceded = i > 0
            && (trees[i - 1].is_punct('.')
                || trees[i - 1].is_punct(':')
                || trees[i - 1].is_ident("fn"));
        if preceded || CALL_KEYWORDS.contains(&base) {
            i += 1;
            continue;
        }
        let mut j = i;
        let mut fields: Vec<String> = Vec::new();
        let mut span = trees[i].span;
        let mut method = None;
        // Walk the postfix chain: `.field`, `.method(..)`, `[index]`, `?`.
        loop {
            if matches!(trees.get(j + 1), Some(n) if n.is_punct('.')) {
                let Some(name_tok) = trees.get(j + 2) else {
                    break;
                };
                // `.await` / `.0` tuple fields end the chain for our
                // purposes; only named members continue it.
                let Some(name) = name_tok.ident() else {
                    break;
                };
                let after = skip_turbofish(trees, j + 3);
                if matches!(trees.get(after), Some(n) if n.group(Delim::Paren).is_some()) {
                    if !fields.is_empty() {
                        method = Some(name.to_string());
                    }
                    break;
                }
                if fields.is_empty() {
                    span = name_tok.span;
                }
                fields.push(name.to_string());
                j += 2;
                continue;
            }
            if !fields.is_empty()
                && (matches!(trees.get(j + 1), Some(n) if n.group(Delim::Bracket).is_some())
                    || matches!(trees.get(j + 1), Some(n) if n.is_punct('?')))
            {
                j += 1;
                continue;
            }
            break;
        }
        if fields.is_empty() {
            i += 1;
            continue;
        }
        // Everything the chain consumed has been looked at; classify by
        // what follows (and by a preceding `&mut` borrow).
        let end = if method.is_some() { j + 2 } else { j + 1 };
        let mode = if i >= 2 && trees[i - 1].is_ident("mut") && trees[i - 2].is_punct('&') {
            AccessMode::ReadWrite
        } else if method.is_none() {
            classify_assignment(trees, end)
        } else {
            AccessMode::Read
        };
        out.push(FieldAccess {
            span,
            base: base.to_string(),
            fields,
            mode,
            method,
        });
        // Resume after the last field name so chained receivers inside
        // argument groups are still visited (groups recurse above).
        i = j + 1;
    }
}

/// Classifies the tokens following a place expression: `= ..` is a
/// write, `op= ..` is a read-modify-write, anything else is a read.
fn classify_assignment(trees: &[TokenTree], at: usize) -> AccessMode {
    let (Some(a), b) = (trees.get(at), trees.get(at + 1)) else {
        return AccessMode::Read;
    };
    let b_eq = matches!(b, Some(n) if n.is_punct('='));
    if a.is_punct('=') {
        // `==` is comparison, `=>` ends a match arm pattern.
        if b_eq || matches!(b, Some(n) if n.is_punct('>')) {
            return AccessMode::Read;
        }
        return AccessMode::Write;
    }
    if b_eq {
        if let Tok::Punct(op) = &a.tok {
            if "+-*/%&|^".contains(*op) {
                return AccessMode::ReadWrite;
            }
            // `<<=` / `>>=` arrive as `<` `<` `=` — the shift case is
            // caught by the first `<`/`>` here only when doubled.
            if (*op == '<' || *op == '>') && trees.get(at.wrapping_sub(1)).is_some() {
                return AccessMode::Read;
            }
        }
    }
    // Shift-assign: `<< =` with the operator split across two puncts.
    if let (Tok::Punct(x), Some(nx)) = (&a.tok, b) {
        if (*x == '<' || *x == '>')
            && nx.is_punct(*x)
            && matches!(trees.get(at + 2), Some(n) if n.is_punct('='))
        {
            return AccessMode::ReadWrite;
        }
    }
    AccessMode::Read
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_file;

    fn items_of(src: &str) -> Vec<Item> {
        parse_items(&parse_file(src).expect("lexes"))
    }

    #[test]
    fn parses_free_fn_and_method() {
        let items = items_of(
            "pub fn free(x: u32) -> u32 { x }\n\
             impl Foo { fn method(&mut self, y: u32) { self.z = y; } }",
        );
        assert_eq!(items.len(), 2);
        let ItemKind::Fn(f) = &items[0].kind else {
            panic!("fn expected")
        };
        assert_eq!(f.name, "free");
        assert!(!f.has_self);
        assert!(f.body.is_some());
        let ItemKind::Impl(b) = &items[1].kind else {
            panic!("impl expected")
        };
        assert_eq!(b.self_ty, "Foo");
        assert!(b.trait_name.is_none());
        let ItemKind::Fn(m) = &b.items[0].kind else {
            panic!("method expected")
        };
        assert_eq!(m.name, "method");
        assert!(m.has_self);
    }

    #[test]
    fn trait_impls_and_generics() {
        let items = items_of(
            "impl<'a, T: Fn(u32) -> bool> fmt::Display for Wrapper<'a, T> {\n\
                 fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n\
             }",
        );
        let ItemKind::Impl(b) = &items[0].kind else {
            panic!("impl expected")
        };
        assert_eq!(b.self_ty, "Wrapper");
        assert_eq!(b.trait_name.as_deref(), Some("Display"));
        assert_eq!(b.items.len(), 1);
    }

    #[test]
    fn generic_fn_signature_finds_args() {
        let items = items_of("fn pick<F: Fn(u32) -> bool>(f: F, xs: &[u32]) -> u32 { 0 }");
        let ItemKind::Fn(f) = &items[0].kind else {
            panic!("fn expected")
        };
        assert_eq!(f.name, "pick");
        assert!(!f.has_self);
        assert!(f.body.is_some());
    }

    #[test]
    fn enums_and_variant_spans() {
        let items = items_of(
            "pub enum Wire {\n    #[doc = \"x\"]\n    Join { who: u32 },\n    Leave(u8),\n    Ping,\n}",
        );
        let ItemKind::Enum(e) = &items[0].kind else {
            panic!("enum expected")
        };
        assert_eq!(e.name, "Wire");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Join", "Leave", "Ping"]);
        assert_eq!(e.variants[0].span.line, 3);
    }

    #[test]
    fn test_gating_is_inherited() {
        let items = items_of(
            "#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n\
             fn live() {}",
        );
        let ItemKind::Mod(m) = &items[0].kind else {
            panic!("mod expected")
        };
        assert!(items[0].test_only);
        assert!(m.items.iter().all(|it| it.test_only));
        assert!(!items[1].test_only);
    }

    #[test]
    fn call_sites_paths_methods_macros() {
        let trees = parse_file(
            "fn f() { let a = helper(1); let b = sim::clock::now_ns(); \
             q.next_frame(); v.push(1); println!(\"no\"); if x { y.z; } \
             Vec::<u8>::new(); }",
        )
        .expect("lexes");
        let calls = call_sites(&trees);
        let names: Vec<String> = calls.iter().map(|c| c.segments.join("::")).collect();
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"sim::clock::now_ns".to_string()));
        assert!(names.contains(&"next_frame".to_string()));
        assert!(names.contains(&"push".to_string()));
        assert!(names.contains(&"Vec::new".to_string()));
        assert!(!names.iter().any(|n| n.contains("println")));
        assert!(!names.iter().any(|n| n == "f"));
        let method = calls
            .iter()
            .find(|c| c.segments == ["next_frame"])
            .expect("method call");
        assert_eq!(method.kind, CallKind::Method);
    }

    #[test]
    fn match_arms_split() {
        let trees = parse_file(
            "fn f(x: u8) -> u8 { match x { 0 => zero(), 1 | 2 => { both() } _ => other(), } }",
        )
        .expect("lexes");
        // dig out the match body
        fn find_match(trees: &[TokenTree]) -> Option<&[TokenTree]> {
            for (i, t) in trees.iter().enumerate() {
                if t.is_ident("match") {
                    for n in &trees[i + 1..] {
                        if let Some(g) = n.group(Delim::Brace) {
                            return Some(g);
                        }
                    }
                }
                if let Tok::Group(_, inner) = &t.tok {
                    if let Some(g) = find_match(inner) {
                        return Some(g);
                    }
                }
            }
            None
        }
        let body = find_match(&trees).expect("match body");
        let arms = match_arms(body);
        assert_eq!(arms.len(), 3);
        assert!(arms[0].pattern[0].tok == Tok::Lit("0".to_string()));
        // `_` lexes as an identifier, not punctuation.
        assert!(arms[2].pattern[0].is_ident("_"));
    }

    fn accesses_of(src: &str) -> Vec<FieldAccess> {
        field_accesses(&parse_file(src).expect("lexes"))
    }

    #[test]
    fn field_access_modes() {
        let acc = accesses_of(
            "fn f(&mut self) {\n\
                 self.count += 1;\n\
                 self.flag = true;\n\
                 if self.flag == other.flag { }\n\
                 let x = self.cfg.interval;\n\
                 take(&mut self.queue);\n\
             }",
        );
        assert_eq!(acc.len(), 6);
        assert_eq!(acc[0].fields, vec!["count"]);
        assert_eq!(acc[0].mode, AccessMode::ReadWrite);
        assert_eq!(acc[1].fields, vec!["flag"]);
        assert_eq!(acc[1].mode, AccessMode::Write);
        assert_eq!(acc[2].mode, AccessMode::Read);
        assert_eq!(acc[3].base, "other");
        assert_eq!(acc[3].mode, AccessMode::Read);
        assert_eq!(acc[4].fields, vec!["cfg", "interval"]);
        assert_eq!(acc[4].mode, AccessMode::Read);
        assert_eq!(acc[5].base, "self");
        assert_eq!(acc[5].fields, vec!["queue"]);
        assert_eq!(acc[5].mode, AccessMode::ReadWrite);
    }

    #[test]
    fn field_access_methods_and_chains() {
        let acc = accesses_of(
            "fn f(&mut self) {\n\
                 self.seen.insert(key);\n\
                 self.st.dir.slots[i] = v;\n\
                 sys.read(conn, usize::MAX);\n\
                 stream.stage_eof = true;\n\
             }",
        );
        assert_eq!(acc.len(), 3, "plain method calls are not field accesses");
        assert_eq!(acc[0].fields, vec!["seen"]);
        assert_eq!(acc[0].method.as_deref(), Some("insert"));
        assert_eq!(acc[0].mode, AccessMode::Read);
        assert_eq!(acc[1].fields, vec!["st", "dir", "slots"]);
        assert_eq!(acc[1].mode, AccessMode::Write);
        assert_eq!(acc[2].base, "stream");
        assert_eq!(acc[2].fields, vec!["stage_eof"]);
        assert_eq!(acc[2].mode, AccessMode::Write);
    }

    #[test]
    fn field_access_recurses_into_groups_and_arms() {
        let acc = accesses_of(
            "fn f(&mut self) {\n\
                 match ev {\n\
                     E::A => { self.a = 1; }\n\
                     E::B => helper(self.b),\n\
                 }\n\
             }",
        );
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].fields, vec!["a"]);
        assert_eq!(acc[0].mode, AccessMode::Write);
        assert_eq!(acc[1].fields, vec!["b"]);
        assert_eq!(acc[1].mode, AccessMode::Read);
    }
}
