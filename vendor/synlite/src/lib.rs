//! A minimal, offline stand-in for the tokenizer layer of `syn` /
//! `proc-macro2`, in the same vendored-subset spirit as `vendor/bytes` and
//! `vendor/rand`: just enough surface for `crates/lint` to do a structural
//! walk over Rust source.
//!
//! [`parse_file`] lexes a source file into a vector of spanned
//! [`TokenTree`]s, with bracketed regions (`()`, `[]`, `{}`) nested into
//! [`Group`]s exactly as `proc_macro2::TokenStream` would. Comments are
//! skipped; string/char/numeric literals are opaque [`Lit`] tokens (their
//! text is preserved but never re-interpreted), so lint rules can match on
//! identifier/punct shape without a full parser.
//!
//! The lexer is deliberately forgiving: it is a *lint* front-end, not a
//! compiler. Anything it cannot classify becomes a `Punct`, and the only
//! hard errors are unbalanced delimiters and unterminated literals —
//! conditions under which span-based findings would be meaningless anyway.

pub mod ast;
pub mod cfg;
pub mod expr;

/// A line/column position (both 1-based) in the lexed source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters, not bytes).
    pub col: u32,
}

/// The delimiter of a [`Group`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

/// One leaf or nested group in the token stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`foo`, `match`, `r#type`).
    Ident(String),
    /// A lifetime (`'a`, `'static`), without the quote.
    Lifetime(String),
    /// A single punctuation character (`.`, `:`, `=`, `!`, ...).
    Punct(char),
    /// A literal: string, raw string, byte string, char, byte, or number.
    /// The original text is preserved verbatim.
    Lit(String),
    /// A delimited group containing a nested token stream.
    Group(Delim, Vec<TokenTree>),
}

/// A [`Tok`] with the [`Span`] where it started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenTree {
    /// Position of the token's first character.
    pub span: Span,
    /// The token itself.
    pub tok: Tok,
}

impl TokenTree {
    /// The identifier string, if this token is an [`Tok::Ident`].
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(p) if *p == c)
    }

    /// The nested stream, if this token is a [`Tok::Group`] with delimiter
    /// `delim`.
    pub fn group(&self, delim: Delim) -> Option<&[TokenTree]> {
        match &self.tok {
            Tok::Group(d, inner) if *d == delim => Some(inner),
            _ => None,
        }
    }
}

/// A lexing failure (unbalanced delimiter or unterminated literal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Where the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes `src` into a stream of spanned token trees.
pub fn parse_file(src: &str) -> Result<Vec<TokenTree>, LexError> {
    let mut lexer = Lexer::new(src);
    let trees = lexer.lex_stream(None)?;
    Ok(trees)
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            _src: src,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, span: Span, message: impl Into<String>) -> LexError {
        LexError {
            span,
            message: message.into(),
        }
    }

    /// Lexes until EOF (when `closing` is `None`) or until the matching
    /// close delimiter is consumed.
    fn lex_stream(&mut self, closing: Option<char>) -> Result<Vec<TokenTree>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                return match closing {
                    None => Ok(out),
                    Some(close) => {
                        Err(self.err(span, format!("unclosed delimiter, expected `{close}`")))
                    }
                };
            };
            match c {
                '(' | '[' | '{' => {
                    self.bump();
                    let (delim, close) = match c {
                        '(' => (Delim::Paren, ')'),
                        '[' => (Delim::Bracket, ']'),
                        _ => (Delim::Brace, '}'),
                    };
                    let inner = self.lex_stream(Some(close))?;
                    out.push(TokenTree {
                        span,
                        tok: Tok::Group(delim, inner),
                    });
                }
                ')' | ']' | '}' => {
                    if closing == Some(c) {
                        self.bump();
                        return Ok(out);
                    }
                    return Err(self.err(span, format!("unbalanced `{c}`")));
                }
                '"' => {
                    let text = self.lex_string(span)?;
                    out.push(TokenTree {
                        span,
                        tok: Tok::Lit(text),
                    });
                }
                '\'' => {
                    out.push(self.lex_quote(span)?);
                }
                c if c.is_ascii_digit() => {
                    let text = self.lex_number();
                    out.push(TokenTree {
                        span,
                        tok: Tok::Lit(text),
                    });
                }
                c if c == '_' || c.is_alphabetic() => {
                    out.push(self.lex_ident_or_prefixed(span)?);
                }
                _ => {
                    self.bump();
                    out.push(TokenTree {
                        span,
                        tok: Tok::Punct(c),
                    });
                }
            }
        }
    }

    /// Skips whitespace, line comments and (nested) block comments.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    let span = self.span();
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.err(span, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes a `"..."` string body; the opening quote has not been bumped.
    fn lex_string(&mut self, span: Span) -> Result<String, LexError> {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                Some('"') => {
                    text.push('"');
                    return Ok(text);
                }
                Some(c) => text.push(c),
                None => return Err(self.err(span, "unterminated string literal")),
            }
        }
    }

    /// Lexes a raw string `r"..."` / `r#"..."#` (any number of `#`); the
    /// caller has already consumed the `r`/`br` prefix, and `self.peek()`
    /// is at the first `#` or `"`.
    fn lex_raw_string(&mut self, span: Span, prefix: &str) -> Result<String, LexError> {
        let mut text = String::from(prefix);
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if self.peek() != Some('"') {
            return Err(self.err(span, "malformed raw string"));
        }
        text.push('"');
        self.bump();
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    text.push('"');
                    for _ in 0..seen {
                        text.push('#');
                    }
                    if seen == hashes {
                        return Ok(text);
                    }
                }
                Some(c) => text.push(c),
                None => return Err(self.err(span, "unterminated raw string")),
            }
        }
    }

    /// Lexes a number literal (integers, floats, `0x..`, `1_000`,
    /// exponents). Range punctuation (`0..n`) is left untouched.
    fn lex_number(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek_at(1).map(|n| n.is_ascii_digit()).unwrap_or(false)
                && !text.contains('.')
            {
                // `1.5` but not `0..n` (next char after '.' is a digit
                // check keeps ranges intact) and not `1.5.3`.
                text.push('.');
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    /// Lexes `'a` lifetimes vs `'x'` char literals.
    fn lex_quote(&mut self, span: Span) -> Result<TokenTree, LexError> {
        self.bump(); // the opening quote
                     // A lifetime is `'` followed by ident-start and NOT closed by a
                     // matching `'` right after one char (`'a'` is a char literal;
                     // `'a` is a lifetime; `'\n'` is a char literal).
        let first = self.peek();
        let second = self.peek_at(1);
        let is_lifetime = match (first, second) {
            (Some(c), Some('\'')) if c != '\\' => false, // 'x'
            (Some(c), _) if c == '_' || c.is_alphabetic() => true,
            _ => false,
        };
        if is_lifetime {
            let mut name = String::new();
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(TokenTree {
                span,
                tok: Tok::Lifetime(name),
            });
        }
        // Char literal: consume up to the closing quote.
        let mut text = String::from("'");
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    return Ok(TokenTree {
                        span,
                        tok: Tok::Lit(text),
                    });
                }
                Some(c) => text.push(c),
                None => return Err(self.err(span, "unterminated char literal")),
            }
        }
    }

    /// Lexes an identifier, handling the string-prefix forms `r"`, `r#"`,
    /// `b"`, `b'`, `br"`, `br#"` and raw identifiers `r#ident`.
    fn lex_ident_or_prefixed(&mut self, span: Span) -> Result<TokenTree, LexError> {
        // String prefixes must be decided before consuming the ident run.
        let first = self.peek();
        let second = self.peek_at(1);
        let third = self.peek_at(2);
        match (first, second, third) {
            (Some('r'), Some('"'), _) => {
                self.bump();
                let text = self.lex_raw_string(span, "r")?;
                return Ok(TokenTree {
                    span,
                    tok: Tok::Lit(text),
                });
            }
            (Some('r'), Some('#'), Some(t)) if t == '"' || t == '#' => {
                self.bump();
                let text = self.lex_raw_string(span, "r")?;
                return Ok(TokenTree {
                    span,
                    tok: Tok::Lit(text),
                });
            }
            (Some('r'), Some('#'), Some(t)) if t == '_' || t.is_alphabetic() => {
                // Raw identifier `r#match`: strip the prefix, keep the name.
                self.bump();
                self.bump();
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                return Ok(TokenTree {
                    span,
                    tok: Tok::Ident(name),
                });
            }
            (Some('b'), Some('"'), _) => {
                self.bump();
                let mut text = self.lex_string(span)?;
                text.insert(0, 'b');
                return Ok(TokenTree {
                    span,
                    tok: Tok::Lit(text),
                });
            }
            (Some('b'), Some('\''), _) => {
                self.bump();
                self.bump();
                let mut text = String::from("b'");
                loop {
                    match self.bump() {
                        Some('\\') => {
                            text.push('\\');
                            if let Some(esc) = self.bump() {
                                text.push(esc);
                            }
                        }
                        Some('\'') => {
                            text.push('\'');
                            return Ok(TokenTree {
                                span,
                                tok: Tok::Lit(text),
                            });
                        }
                        Some(c) => text.push(c),
                        None => return Err(self.err(span, "unterminated byte literal")),
                    }
                }
            }
            (Some('b'), Some('r'), Some(t)) if t == '"' || t == '#' => {
                self.bump();
                self.bump();
                let text = self.lex_raw_string(span, "br")?;
                return Ok(TokenTree {
                    span,
                    tok: Tok::Lit(text),
                });
            }
            _ => {}
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(TokenTree {
            span,
            tok: Tok::Ident(name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(trees: &[TokenTree]) -> Vec<String> {
        let mut out = Vec::new();
        for t in trees {
            match &t.tok {
                Tok::Ident(s) => out.push(s.clone()),
                Tok::Group(_, inner) => out.extend(idents(inner)),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn lexes_idents_and_groups() {
        let trees = parse_file("fn main() { let x = foo.bar(); }").unwrap();
        assert_eq!(idents(&trees), vec!["fn", "main", "let", "x", "foo", "bar"]);
        // fn main () { ... }
        assert!(trees[2].group(Delim::Paren).is_some());
        assert!(trees[3].group(Delim::Brace).is_some());
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ */
            let s = "HashMap { iter }";
            let r = r#"unwrap()"#;
        "##;
        let trees = parse_file(src).unwrap();
        let names = idents(&trees);
        assert!(!names.contains(&"HashMap".to_string()));
        assert!(!names.contains(&"iter".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let trees = parse_file("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").unwrap();
        let mut lifetimes = 0;
        let mut chars = 0;
        fn walk(trees: &[TokenTree], lifetimes: &mut u32, chars: &mut u32) {
            for t in trees {
                match &t.tok {
                    Tok::Lifetime(_) => *lifetimes += 1,
                    Tok::Lit(s) if s.starts_with('\'') => *chars += 1,
                    Tok::Group(_, inner) => walk(inner, lifetimes, chars),
                    _ => {}
                }
            }
        }
        walk(&trees, &mut lifetimes, &mut chars);
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn spans_are_line_accurate() {
        let trees = parse_file("let a = 1;\nlet b = 2;").unwrap();
        let b = trees
            .iter()
            .find(|t| t.is_ident("b"))
            .expect("ident b present");
        assert_eq!(b.span.line, 2);
        assert_eq!(b.span.col, 5);
    }

    #[test]
    fn numbers_keep_ranges_intact() {
        let trees = parse_file("for i in 0..10 { a[i] = 1.5; }").unwrap();
        // `0..10` must lex as Lit(0) Punct(.) Punct(.) Lit(10).
        let dots = trees.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn unbalanced_delimiter_is_an_error() {
        assert!(parse_file("fn f( {").is_err());
        assert!(parse_file("fn f) ").is_err());
    }
}
