//! Distributions: `Standard`, `Bernoulli`, and the uniform-integer
//! samplers — each reproducing `rand` 0.8's algorithm bit-for-bit.

use crate::Rng;

/// A type that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "default" distribution: full-range integers, `[0, 1)` floats with
/// the 53-bit (f64) / 24-bit (f32) mappings rand 0.8 uses.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

#[cfg(target_pointer_width = "64")]
impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

#[cfg(target_pointer_width = "32")]
impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u32() as usize
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 52 fraction bits + 1 implicit bit = 53 bits of precision.
        let value = rng.next_u64() >> (64 - 53);
        (1.0 / ((1u64 << 53) as f64)) * value as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> (32 - 24);
        (1.0 / ((1u32 << 24) as f32)) * value as f32
    }
}

/// Error returned by [`Bernoulli::new`] for `p` outside `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BernoulliError {
    /// `p < 0` or `p > 1`.
    InvalidProbability,
}

impl std::fmt::Display for BernoulliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p is outside [0, 1] in Bernoulli distribution")
    }
}

impl std::error::Error for BernoulliError {}

/// The Bernoulli distribution, via rand 0.8's 64-bit fixed-point scheme:
/// `p` maps to `p_int = (p * 2^64) as u64` and a draw succeeds when a
/// uniform `u64` is strictly below it. `p == 1.0` short-circuits to `true`
/// without consuming randomness.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
// 2^64 as f64; (p * SCALE) as u64 is the fixed-point threshold.
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Constructs from a success probability.
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError::InvalidProbability);
        }
        Ok(Bernoulli {
            p_int: (p * SCALE) as u64,
        })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        let v: u64 = rng.gen();
        v < self.p_int
    }
}

/// Uniform-range sampling (mirror of `rand::distributions::uniform`).
pub mod uniform {
    use super::Standard;
    use crate::distributions::Distribution;
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable with [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleUniform: Sized {
        /// Samples from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range types accepted by [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_single_inclusive(low, high, rng)
        }
        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }

    /// Widening multiply: `(hi, lo)` halves of the double-width product.
    trait WideningMultiply: Sized {
        fn wmul(self, other: Self) -> (Self, Self);
    }

    impl WideningMultiply for u32 {
        #[inline]
        fn wmul(self, other: u32) -> (u32, u32) {
            let t = self as u64 * other as u64;
            ((t >> 32) as u32, t as u32)
        }
    }

    impl WideningMultiply for u64 {
        #[inline]
        fn wmul(self, other: u64) -> (u64, u64) {
            let t = self as u128 * other as u128;
            ((t >> 64) as u64, t as u64)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $uty:ty) => {
            impl SampleUniform for $ty {
                // rand 0.8's UniformInt::sample_single: widening-multiply
                // rejection with the bitmask zone trick (the `$uty` types
                // here are all >= 32 bits, so the shift form applies).
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "UniformSampler::sample_single: low >= high");
                    let range = high.wrapping_sub(low) as $uty;
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = draw::<$uty, _>(rng);
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(
                        low <= high,
                        "UniformSampler::sample_single_inclusive: low > high"
                    );
                    let range = (high.wrapping_sub(low) as $uty).wrapping_add(1);
                    if range == 0 {
                        // The full integer range: every bit pattern is valid.
                        return draw::<$uty, _>(rng) as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = draw::<$uty, _>(rng);
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    fn draw<T, R: RngCore + ?Sized>(rng: &mut R) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(rng)
    }

    uniform_int_impl! { u32, u32 }
    uniform_int_impl! { u64, u64 }
    uniform_int_impl! { i32, u32 }
    uniform_int_impl! { i64, u64 }
    uniform_int_impl! { usize, usize }

    impl WideningMultiply for usize {
        #[inline]
        #[cfg(target_pointer_width = "64")]
        fn wmul(self, other: usize) -> (usize, usize) {
            let (hi, lo) = (self as u64).wmul(other as u64);
            (hi as usize, lo as usize)
        }
        #[inline]
        #[cfg(target_pointer_width = "32")]
        fn wmul(self, other: usize) -> (usize, usize) {
            let (hi, lo) = (self as u32).wmul(other as u32);
            (hi as usize, lo as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{RngCore, SeedableRng};

    #[test]
    fn standard_f64_matches_u64_mapping() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let x: f64 = Standard.sample(&mut a);
            let v = b.next_u64() >> 11;
            assert_eq!(x, v as f64 * (1.0 / (1u64 << 53) as f64));
        }
    }

    #[test]
    fn bernoulli_threshold_matches_u64_draw() {
        let p = 0.37;
        let d = Bernoulli::new(p).unwrap();
        let threshold = (p * SCALE) as u64;
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let got = d.sample(&mut a);
            assert_eq!(got, b.next_u64() < threshold);
        }
    }

    #[test]
    fn uniform_inclusive_full_range_is_raw_draw() {
        let mut a = StdRng::seed_from_u64(2);
        let mut b = StdRng::seed_from_u64(2);
        use crate::Rng;
        let x = a.gen_range(0u64..=u64::MAX);
        assert_eq!(x, b.next_u64());
    }

    #[test]
    fn uniform_signed_ranges_work() {
        use crate::Rng;
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&w));
        }
    }

    #[test]
    fn uniform_u64_small_range_rejection_agrees_with_reference() {
        // Independent check of the widening-multiply construction: for
        // range 10, hi = floor(v * 10 / 2^64) must match direct u128 math.
        use crate::Rng;
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        let range = 10u64;
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        for _ in 0..1000 {
            let got = a.gen_range(100u64..110);
            // Replay the rejection loop on the mirror stream.
            let expect = loop {
                let v = b.next_u64();
                let t = v as u128 * range as u128;
                if (t as u64) <= zone {
                    break 100 + (t >> 64) as u64;
                }
            };
            assert_eq!(got, expect);
        }
    }
}
