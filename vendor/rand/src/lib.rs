//! Offline, in-repo subset of the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of `rand` 0.8 it uses. **Bit-compatibility is a hard requirement**:
//! every committed experiment result (Table 1, Figs. 3–5, the calibrated
//! assertion ranges in the integration tests) was produced with the real
//! `rand` 0.8 / `rand_chacha` `StdRng`, so this reimplementation reproduces
//! the exact algorithms:
//!
//! * [`rngs::StdRng`] — ChaCha with 12 rounds behind `rand_core`'s
//!   `BlockRng` buffering (4 blocks / 64 words per refill, the same
//!   `next_u64` word-boundary cases and `fill_bytes` word consumption);
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion from
//!   `rand_core` 0.6;
//! * `Standard` floats — the 53-bit `(u64 >> 11) * 2^-53` mapping;
//! * [`Rng::gen_bool`] — `Bernoulli`'s 64-bit fixed-point comparison;
//! * [`Rng::gen_range`] — `UniformInt`'s widening-multiply rejection
//!   sampling (`sample_single` / `sample_single_inclusive`).
//!
//! A known-answer test pins the `StdRng` stream to the value-stability
//! vector published in `rand` 0.8's own test suite, and the experiment
//! CSVs regenerated under this crate are diffed against the committed ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The arithmetic below deliberately keeps upstream rand 0.8's exact code
// shapes (bit-compatibility beats lint-idiomatic rewrites here).
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::manual_div_ceil)]

use std::fmt;

pub mod distributions;
mod stdrng;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Bernoulli, Distribution, Standard};

/// Error type matching `rand::Error`'s role in trait signatures.
///
/// The deterministic generators here never fail, so this is only ever
/// constructed by downstream code that needs a value of the type.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core trait every generator implements (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`fill_bytes`](RngCore::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator constructible from a seed (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream `rand_core`
    /// 0.6 uses, then delegates to [`from_seed`](SeedableRng::from_seed).
    /// Bit-identical to `rand_core`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the LCG state *before* producing output (PCG-XSH-RR).
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value via the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        match Bernoulli::new(p) {
            Ok(d) => d.sample(self),
            Err(_) => panic!("p={} is outside range [0.0, 1.0]", p),
        }
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    pub use crate::stdrng::StdRng;
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_certainty_consumes_nothing() {
        // p == 1.0 takes the ALWAYS_TRUE shortcut without drawing, exactly
        // like rand 0.8's Bernoulli — stream position must be unaffected.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert!(a.gen_bool(1.0));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_bool_zero_draws_once_and_is_false() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert!(!a.gen_bool(0.0));
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(3u64..7);
            assert!((3..7).contains(&w));
            let z = rng.gen_range(0usize..5);
            assert!(z < 5);
        }
    }

    #[test]
    fn unit_f64_has_53_bit_precision_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            // The mapping is k * 2^-53 for integer k < 2^53.
            let k = x * (1u64 << 53) as f64;
            assert_eq!(k, k.trunc());
        }
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn gen_bool_rejects_out_of_range() {
        let mut rng = StdRng::seed_from_u64(1);
        rng.gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u64..5);
    }
}
