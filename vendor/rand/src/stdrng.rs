//! `StdRng`: ChaCha (12 rounds) behind `BlockRng`-style buffering,
//! bit-identical to `rand` 0.8's `StdRng` (= `rand_chacha::ChaCha12Rng`).
//!
//! Layout facts this reproduces exactly:
//!
//! * state words: 4 constants, 8 key words (seed, little-endian), a 64-bit
//!   block counter in words 12–13, zero nonce in words 14–15;
//! * 12 rounds (6 double rounds); output = initial state + worked state;
//! * the refill buffer holds **4 consecutive blocks** (64 `u32` words) and
//!   the counter advances by 4 per refill;
//! * `next_u64` consumes two adjacent words (lo, hi) with `BlockRng`'s
//!   three boundary cases; `fill_bytes` consumes whole words, discarding
//!   the tail of a partially-used word.

use crate::{Error, RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BUF_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha12 block core: key + 64-bit block counter.
#[derive(Clone)]
struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

impl ChaCha12Core {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Core { key, counter: 0 }
    }

    /// Produces 4 consecutive blocks into `out` and advances the counter
    /// by 4, matching `rand_chacha`'s wide refill.
    fn generate(&mut self, out: &mut [u32; BUF_WORDS]) {
        for block in 0..4u64 {
            let counter = self.counter.wrapping_add(block);
            let mut initial = [0u32; 16];
            initial[..4].copy_from_slice(&CHACHA_CONSTANTS);
            initial[4..12].copy_from_slice(&self.key);
            initial[12] = counter as u32;
            initial[13] = (counter >> 32) as u32;
            // words 14-15: zero nonce

            let mut working = initial;
            for _ in 0..6 {
                // column round
                quarter_round(&mut working, 0, 4, 8, 12);
                quarter_round(&mut working, 1, 5, 9, 13);
                quarter_round(&mut working, 2, 6, 10, 14);
                quarter_round(&mut working, 3, 7, 11, 15);
                // diagonal round
                quarter_round(&mut working, 0, 5, 10, 15);
                quarter_round(&mut working, 1, 6, 11, 12);
                quarter_round(&mut working, 2, 7, 8, 13);
                quarter_round(&mut working, 3, 4, 9, 14);
            }

            let base = block as usize * 16;
            for i in 0..16 {
                out[base + i] = working[i].wrapping_add(initial[i]);
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }
}

/// The standard deterministic generator (ChaCha12), bit-compatible with
/// `rand` 0.8's `StdRng`.
#[derive(Clone)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; BUF_WORDS],
    index: usize,
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StdRng {{ .. }}")
    }
}

impl StdRng {
    #[inline]
    fn generate_and_set(&mut self, index: usize) {
        debug_assert!(index < BUF_WORDS);
        self.core.generate(&mut self.results);
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUF_WORDS],
            // Start exhausted so the first draw triggers a refill.
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let read_u64 = |results: &[u32; BUF_WORDS], index: usize| {
            (u64::from(results[index + 1]) << 32) | u64::from(results[index])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            // One word left: take it as the low half, refill for the high.
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut read_len = 0;
        while read_len < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let (consumed_u32, filled_u8) =
                fill_via_u32_chunks(&self.results[self.index..], &mut dest[read_len..]);
            self.index += consumed_u32;
            read_len += filled_u8;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Copies little-endian words into `dest`; a partially-copied word counts
/// as fully consumed (exactly `rand_core::impls::fill_via_u32_chunks`).
fn fill_via_u32_chunks(src: &[u32], dest: &mut [u8]) -> (usize, usize) {
    let chunk_size_u8 = (src.len() * 4).min(dest.len());
    let chunk_size_u32 = (chunk_size_u8 + 3) / 4;
    for (i, chunk) in dest[..chunk_size_u8].chunks_mut(4).enumerate() {
        chunk.copy_from_slice(&src[i].to_le_bytes()[..chunk.len()]);
    }
    (chunk_size_u32, chunk_size_u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The value-stability vector from rand 0.8's own `test_stdrng_construction`.
    /// If this ever fails, the generator is NOT bit-compatible with the
    /// rand 0.8 streams the committed experiment results were drawn from.
    #[test]
    fn stdrng_value_stability() {
        #[rustfmt::skip]
        let seed = [1,0,0,0, 23,0,0,0, 200,1,0,0, 210,30,0,0,
                    0,0,0,0, 0,0,0,0, 0,0,0,0, 0,0,0,0];
        let mut rng = StdRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 10719222850664546238);
    }

    #[test]
    fn next_u64_boundary_cases_are_consistent_with_u32_stream() {
        // Walk one generator to the last-word boundary and check the
        // straddling u64 equals lo|hi of the word stream from a clone.
        let mut words = StdRng::seed_from_u64(11);
        let stream: Vec<u32> = (0..130).map(|_| words.next_u32()).collect();

        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..63 {
            rng.next_u32();
        }
        // index = 63 = BUF_WORDS - 1: lo is word 63, hi is word 64 (next refill).
        let straddle = rng.next_u64();
        assert_eq!(
            straddle,
            (u64::from(stream[64]) << 32) | u64::from(stream[63])
        );
        // After the straddle, index = 1 in the refilled buffer.
        assert_eq!(rng.next_u32(), stream[65]);
    }

    #[test]
    fn fill_bytes_consumes_whole_words() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 5];
        a.fill_bytes(&mut buf);
        // 5 bytes consume 2 words (the 2nd only partially, but fully spent).
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(buf[4], w1[0]);
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn fill_bytes_across_refill() {
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        let mut big = vec![0u8; 300];
        a.fill_bytes(&mut big);
        for chunk in big.chunks(4) {
            let w = b.next_u32().to_le_bytes();
            assert_eq!(chunk, &w[..chunk.len()]);
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut cloned = rng.clone();
        for _ in 0..200 {
            assert_eq!(rng.next_u64(), cloned.next_u64());
        }
    }
}
