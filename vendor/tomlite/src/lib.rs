//! A minimal, offline TOML-subset parser in the same vendored-subset
//! spirit as `vendor/bytes` and `vendor/rand`: just enough surface for the
//! chaos scenario files under `scenarios/` without pulling the real `toml`
//! crate into a fully offline build.
//!
//! Supported grammar (a strict subset of TOML 1.0):
//!
//! - top-level and nested tables: `[a]`, `[a.b]`
//! - arrays of tables: `[[a]]`, `[[a.b]]`
//! - `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`) or quoted keys
//! - values: basic strings with escapes, integers (`i64`, `_` separators),
//!   floats, booleans, and homogeneous-or-not `[v, v, ...]` arrays
//!   (trailing comma allowed, may span multiple lines)
//! - `#` comments (full-line and trailing)
//!
//! Deliberately *not* supported (a typed [`TomlError`] is returned):
//! datetimes, inline tables, dotted keys in key position, multi-line or
//! literal strings, and duplicate key definitions.
//!
//! Determinism contract: documents parse into [`BTreeMap`]-backed
//! [`Table`]s, so iteration order is the sorted key order — independent of
//! insertion order and safe to fold into digests (DESIGN §9 R1). Parsing
//! never panics; every malformed input maps to a [`TomlError`] carrying
//! the 1-based source line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed table: sorted key → value map.
pub type Table = BTreeMap<String, Value>;

/// One parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A nested table (from `[a.b]` headers or `[[a]]` elements).
    Table(Table),
}

impl Value {
    /// Stable lower-case name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly for small values).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The nested table, if this is a table.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// A parse error with the 1-based source line it was detected on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number of the offending input line.
    pub line: u32,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err(line: u32, msg: impl Into<String>) -> TomlError {
    TomlError {
        line,
        msg: msg.into(),
    }
}

/// A parse result that additionally records where each `[[array]]` table
/// element was declared, so consumers (like detlint's allowlist and
/// protocol-spec loaders) can anchor diagnostics at the entry that caused
/// them. [`Table`] values deliberately carry no positions — this sidecar
/// keeps the value model simple while preserving error line numbers.
#[derive(Clone, Debug, Default)]
pub struct Tracked {
    /// The parsed document.
    pub table: Table,
    /// 1-based source line of every `[[path]]` header, keyed by the dotted
    /// header path (`"allow"`, `"a.b"`), in document order per key.
    pub array_lines: BTreeMap<String, Vec<u32>>,
}

/// Parses a TOML-subset document into its root [`Table`].
///
/// # Errors
///
/// Returns a [`TomlError`] naming the first offending line for any input
/// outside the supported subset (see the module docs), including duplicate
/// key or table definitions.
pub fn parse(src: &str) -> Result<Table, TomlError> {
    Ok(parse_tracked(src)?.table)
}

/// Like [`parse`], but also records the source line of every `[[table]]`
/// array-element header (see [`Tracked`]).
///
/// # Errors
///
/// Same failure modes as [`parse`].
pub fn parse_tracked(src: &str) -> Result<Tracked, TomlError> {
    let mut root = Table::new();
    let mut array_lines: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    // Path of the table currently receiving `key = value` lines; empty for
    // the root. The final component of an array-of-tables path addresses
    // the *last* element of that array.
    let mut current: Vec<String> = Vec::new();
    let mut lines = src.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let lineno = line_no(idx);
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[table]] header"))?;
            let path = parse_header_path(inner, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            array_lines.entry(path.join(".")).or_default().push(lineno);
            current = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [table] header"))?;
            let path = parse_header_path(inner, lineno)?;
            define_table(&mut root, &path, lineno)?;
            current = path;
        } else {
            let (key, value_src) = split_key_value(line, lineno)?;
            let mut value_src = value_src.to_string();
            // Arrays may span lines: keep appending physical lines until
            // the brackets balance (strings are comment/bracket-opaque).
            let mut guard: u32 = 0;
            while !brackets_balanced(&value_src, lineno)? {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| err(lineno, "unterminated array"))?;
                value_src.push(' ');
                value_src.push_str(strip_comment(next).trim());
                guard = guard.saturating_add(1);
                if guard > 10_000 {
                    return Err(err(lineno, "array spans too many lines"));
                }
            }
            let value = parse_value(value_src.trim(), lineno)?;
            let table = navigate_mut(&mut root, &current, lineno)?;
            if table.contains_key(&key) {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
            table.insert(key, value);
        }
    }
    Ok(Tracked {
        table: root,
        array_lines,
    })
}

fn line_no(idx: usize) -> u32 {
    u32::try_from(idx.saturating_add(1)).unwrap_or(u32::MAX)
}

/// Strips a trailing `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `true` once every `[` outside a string has a matching `]`.
fn brackets_balanced(src: &str, lineno: u32) -> Result<bool, TomlError> {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in src.chars() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth < 0 {
                    return Err(err(lineno, "unbalanced `]` in value"));
                }
            }
            _ => {}
        }
    }
    if in_str && depth == 0 {
        return Err(err(lineno, "unterminated string"));
    }
    Ok(depth == 0)
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

fn parse_header_path(inner: &str, lineno: u32) -> Result<Vec<String>, TomlError> {
    let inner = inner.trim();
    if inner.is_empty() {
        return Err(err(lineno, "empty table header"));
    }
    let mut path = Vec::new();
    for part in inner.split('.') {
        let part = part.trim();
        if part.is_empty() || !part.chars().all(is_bare_key_char) {
            return Err(err(lineno, format!("bad table header component `{part}`")));
        }
        path.push(part.to_string());
    }
    Ok(path)
}

fn split_key_value(line: &str, lineno: u32) -> Result<(String, &str), TomlError> {
    let eq = line
        .find('=')
        .ok_or_else(|| err(lineno, "expected `key = value`"))?;
    let key_src = line[..eq].trim();
    let value_src = line[eq + 1..].trim();
    if value_src.is_empty() {
        return Err(err(lineno, "missing value after `=`"));
    }
    let key = if let Some(rest) = key_src.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated quoted key"))?;
        unescape(inner, lineno)?
    } else if !key_src.is_empty() && key_src.chars().all(is_bare_key_char) {
        key_src.to_string()
    } else {
        return Err(err(
            lineno,
            format!("bad key `{key_src}` (dotted keys are not supported)"),
        ));
    };
    Ok((key, value_src))
}

fn unescape(src: &str, lineno: u32) -> Result<String, TomlError> {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => {
                return Err(err(lineno, format!("unsupported escape `\\{other}`")));
            }
            None => return Err(err(lineno, "dangling `\\` at end of string")),
        }
    }
    Ok(out)
}

fn parse_value(src: &str, lineno: u32) -> Result<Value, TomlError> {
    if let Some(rest) = src.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .filter(|_| src.len() >= 2)
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        // Reject embedded unescaped quotes (`"a" junk "b"` must not parse).
        if !well_formed_string_body(inner) {
            return Err(err(lineno, "malformed string value"));
        }
        return Ok(Value::Str(unescape(inner, lineno)?));
    }
    if src == "true" {
        return Ok(Value::Bool(true));
    }
    if src == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = src.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner, lineno)? {
            items.push(parse_value(part.trim(), lineno)?);
        }
        return Ok(Value::Array(items));
    }
    let numeric = src.replace('_', "");
    if looks_like_int(&numeric) {
        return numeric
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(lineno, format!("integer out of range: `{src}`")));
    }
    if looks_like_float(&numeric) {
        return numeric
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(lineno, format!("bad float: `{src}`")));
    }
    Err(err(lineno, format!("unsupported value: `{src}`")))
}

/// `true` when every `"` in a string body is escaped.
fn well_formed_string_body(body: &str) -> bool {
    let mut escaped = false;
    for c in body.chars() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return false,
            _ => {}
        }
    }
    !escaped
}

/// Splits array contents on top-level commas (strings and nested arrays
/// are opaque). Returns the non-empty item slices.
fn split_array_items(inner: &str, lineno: u32) -> Result<Vec<&str>, TomlError> {
    let mut items = Vec::new();
    let mut depth: u32 = 0;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err(lineno, "unbalanced `]` in array"))?;
            }
            ',' if !in_str && depth == 0 => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    Ok(items
        .into_iter()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect())
}

fn looks_like_int(src: &str) -> bool {
    let body = src.strip_prefix(['+', '-']).unwrap_or(src);
    !body.is_empty() && body.chars().all(|c| c.is_ascii_digit())
}

fn looks_like_float(src: &str) -> bool {
    let body = src.strip_prefix(['+', '-']).unwrap_or(src);
    !body.is_empty()
        && body
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        && body.chars().any(|c| c.is_ascii_digit())
}

/// Walks `path` from `root`, descending through tables and the last
/// element of arrays-of-tables, returning the addressed table.
fn navigate_mut<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: u32,
) -> Result<&'a mut Table, TomlError> {
    let mut cur = root;
    for comp in path {
        let slot = cur
            .entry(comp.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        cur = match slot {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => {
                    return Err(err(lineno, format!("`{comp}` is not an array of tables")));
                }
            },
            other => {
                return Err(err(
                    lineno,
                    format!("`{comp}` already defined as {}", other.type_name()),
                ));
            }
        };
    }
    Ok(cur)
}

/// Defines `[a.b]`: intermediate components may exist, the leaf must not
/// already be defined as a non-table.
fn define_table(root: &mut Table, path: &[String], lineno: u32) -> Result<(), TomlError> {
    let (leaf, parents) = path
        .split_last()
        .ok_or_else(|| err(lineno, "empty table header"))?;
    let parent = navigate_mut(root, parents, lineno)?;
    match parent.get(leaf) {
        None => {
            parent.insert(leaf.clone(), Value::Table(Table::new()));
            Ok(())
        }
        // Re-opening a table created implicitly by a deeper header is
        // allowed by TOML; re-opening an explicit value is not. We accept
        // the re-open only for tables (scenario files never rely on it
        // being rejected).
        Some(Value::Table(_)) => Ok(()),
        Some(other) => Err(err(
            lineno,
            format!("`{leaf}` already defined as {}", other.type_name()),
        )),
    }
}

/// Appends a fresh element to the `[[a.b]]` array, creating it on first
/// use.
fn push_array_table(root: &mut Table, path: &[String], lineno: u32) -> Result<(), TomlError> {
    let (leaf, parents) = path
        .split_last()
        .ok_or_else(|| err(lineno, "empty table header"))?;
    let parent = navigate_mut(root, parents, lineno)?;
    match parent
        .entry(leaf.clone())
        .or_insert_with(|| Value::Array(Vec::new()))
    {
        Value::Array(items) => {
            items.push(Value::Table(Table::new()));
            Ok(())
        }
        other => Err(err(
            lineno,
            format!("`{leaf}` already defined as {}", other.type_name()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_comments() {
        let t = parse(
            "# header\nname = \"mead\" # trailing\ncount = 42\nratio = 0.75\nok = true\nneg = -7\nbig = 1_000_000\n",
        )
        .unwrap();
        assert_eq!(t["name"], Value::Str("mead".into()));
        assert_eq!(t["count"], Value::Int(42));
        assert_eq!(t["ratio"], Value::Float(0.75));
        assert_eq!(t["ok"], Value::Bool(true));
        assert_eq!(t["neg"], Value::Int(-7));
        assert_eq!(t["big"], Value::Int(1_000_000));
    }

    #[test]
    fn nested_tables_and_arrays() {
        let t = parse("[a.b]\nx = 1\n[a.c]\ny = [1, 2, 3,]\nz = [\"p\", \"q\"]\n").unwrap();
        let a = t["a"].as_table().unwrap();
        assert_eq!(a["b"].as_table().unwrap()["x"], Value::Int(1));
        let y = a["c"].as_table().unwrap()["y"].as_array().unwrap();
        assert_eq!(y, &[Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn arrays_of_tables() {
        let t = parse("[[mix]]\nname = \"a\"\n[[mix]]\nname = \"b\"\nnested = [4]\n").unwrap();
        let mix = t["mix"].as_array().unwrap();
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[1].as_table().unwrap()["name"], Value::Str("b".into()));
    }

    #[test]
    fn multiline_arrays() {
        let t = parse("xs = [\n  1, # one\n  2,\n  3\n]\n").unwrap();
        assert_eq!(
            t["xs"].as_array().unwrap(),
            &[Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn string_escapes_and_hash_in_string() {
        let t = parse("s = \"a#b \\\"q\\\" \\n\\t\\\\\"\n").unwrap();
        assert_eq!(t["s"], Value::Str("a#b \"q\" \n\t\\".into()));
    }

    #[test]
    fn quoted_keys() {
        let t = parse("\"dotted.key\" = 1\n").unwrap();
        assert_eq!(t["dotted.key"], Value::Int(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (src, line, frag) in [
            ("x = 1\nx = 2\n", 2, "duplicate key"),
            ("[t]\n[t.x\n", 2, "unterminated"),
            ("x =\n", 1, "missing value"),
            ("x = nope\n", 1, "unsupported value"),
            ("x = \"open\n", 1, "unterminated string"),
            ("x = [1, 2\n", 1, "unterminated array"),
            ("a.b = 1\n", 1, "dotted keys"),
            ("x = \"a\" junk \"b\"\n", 1, "malformed string"),
            ("x = 99999999999999999999\n", 1, "out of range"),
        ] {
            let e = parse(src).unwrap_err();
            assert_eq!(e.line, line, "src: {src:?} -> {e}");
            assert!(e.msg.contains(frag), "src: {src:?} -> {e}");
        }
    }

    #[test]
    fn redefinition_conflicts_rejected() {
        assert!(parse("[a]\nx = 1\n[a.x]\n").is_err());
        assert!(parse("[[a]]\n[a]\n").is_err());
        assert!(parse("a = 1\n[[a]]\n").is_err());
    }

    #[test]
    fn tracked_records_array_header_lines() {
        let t =
            parse_tracked("# c\n[[mix]]\nname = \"a\"\n\n[[mix]]\nname = \"b\"\n[m]\n[[m.x]]\n")
                .unwrap();
        assert_eq!(t.array_lines["mix"], vec![2, 5]);
        assert_eq!(t.array_lines["m.x"], vec![8]);
        assert_eq!(t.table["mix"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn deterministic_iteration_order() {
        let t = parse("z = 1\na = 2\nm = 3\n").unwrap();
        let keys: Vec<_> = t.keys().cloned().collect();
        assert_eq!(keys, ["a", "m", "z"]);
    }
}
