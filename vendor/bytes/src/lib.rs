//! Offline, in-repo subset of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build container has no network access and no crates cache, so the
//! workspace vendors the small slice of the `bytes` API it actually uses:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable, reference-counted byte
//!   slice with O(1) `clone`, `slice` and `split_to` (the property the
//!   simnet zero-copy receive path relies on);
//! * [`BytesMut`] — a growable buffer with an amortised-O(1) `split_to`
//!   front cursor (used by the GIOP/GCS stream splitters);
//! * the [`Buf`] / [`BufMut`] traits with the integer accessors the wire
//!   codecs call.
//!
//! Semantics match the real crate for every operation exercised here; the
//! implementation favours clarity over the real crate's vtable tricks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes.
///
/// `clone`, [`slice`](Bytes::slice) and [`split_to`](Bytes::split_to) are
/// O(1): they share the underlying allocation and adjust offsets.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a `Bytes` from a static slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Copies `data` into a new allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` without copying.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// O(1): both halves share the allocation.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes after `at`; `self` keeps the front.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Shortens the view to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Clears the view.
    pub fn clear(&mut self) {
        self.end = self.start;
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}
impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}
impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from(b.into_vec())
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}
impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}
impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}
impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer with an amortised-O(1) front cursor, so stream
/// splitters can repeatedly `split_to` / `advance` without quadratic
/// memmoves.
#[derive(Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
    /// Logical start of the live region within `vec`.
    off: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
            off: 0,
        }
    }

    /// Live length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len() - self.off
    }

    /// `true` when no live bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Removes all bytes.
    pub fn clear(&mut self) {
        self.vec.clear();
        self.off = 0;
    }

    /// Splits off and returns the first `at` live bytes.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.vec[self.off..self.off + at].to_vec();
        self.off += at;
        self.compact_if_worthwhile();
        BytesMut { vec: head, off: 0 }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.off > 0 {
            self.vec.drain(..self.off);
        }
        Bytes::from(self.vec)
    }

    /// The live bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.vec[self.off..]
    }

    /// Drops the front cursor's dead prefix once it dominates the buffer.
    fn compact_if_worthwhile(&mut self) {
        if self.off > 4096 && self.off * 2 >= self.vec.len() {
            self.vec.drain(..self.off);
            self.off = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let off = self.off;
        &mut self.vec[off..]
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}
impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}
impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for BytesMut {}
impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}
impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<T: IntoIterator<Item = &'a u8>>(&mut self, iter: T) {
        self.vec.extend(iter.into_iter().copied());
    }
}
impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec, off: 0 }
    }
}
impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            vec: s.to_vec(),
            off: 0,
        }
    }
}

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor past `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > remaining`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice overrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.off += cnt;
        self.compact_if_worthwhile();
    }
}

/// Write-side integer/slice appenders.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_split_and_slice_share_data() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[4, 5]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn bytes_equality_against_plain_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc"[..]);
        assert_eq!(b, vec![b'a', b'b', b'c']);
    }

    #[test]
    fn bytesmut_put_split_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32_le(0x07060504);
        assert_eq!(m.len(), 7);
        let head = m.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&m.freeze()[..], &[4, 5, 6, 7]);
    }

    #[test]
    fn buf_readers_on_slices() {
        let data = [0x01, 0x02, 0x03, 0x04, 0xAA];
        let mut s = &data[..];
        assert_eq!(s.get_u32(), 0x01020304);
        assert_eq!(s.get_u8(), 0xAA);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn bytesmut_advance_then_extend() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[9, 8, 7, 6]);
        m.advance(2);
        assert_eq!(&m[..], &[7, 6]);
        m.extend_from_slice(&[5]);
        assert_eq!(&m[..], &[7, 6, 5]);
        let f = m.split_to(1);
        assert_eq!(&f[..], &[7]);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
