//! Quickstart: stand up a miniature CORBA world on the simulator — a
//! Naming Service, one time-of-day server, and a client — and perform a
//! few invocations through the client ORB.
//!
//! Run with `cargo run --example quickstart`.

use std::cell::RefCell;
use std::rc::Rc;

use mead_repro::giop::{Ior, ObjectKey};
use mead_repro::orb::{
    decode_resolve_reply, decode_time_reply, encode_bind, encode_name, host_of, naming_ior,
    ClientOrb, ClientOrbConfig, NamingConfig, NamingService, OrbUpshot, ServerOrb, ServerOrbConfig,
    TimeOfDayServant, TIME_TYPE_ID,
};
use mead_repro::simnet::{
    Event, NodeId, Port, Process, SimConfig, SimDuration, SimTime, Simulation, SysApi,
};

/// A plain CORBA server: listens, registers its servant, binds its IOR.
struct TimeServer {
    orb: ServerOrb,
    naming_node: NodeId,
    client_orb: ClientOrb,
}

impl Process for TimeServer {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.orb.start(sys);
        let key = ObjectKey::persistent("TimePOA", "TimeOfDay");
        let ior = Ior::singleton(TIME_TYPE_ID, &host_of(sys.my_node()), 2810, key);
        let body = encode_bind("demo/time", &ior);
        self.client_orb
            .invoke(sys, &naming_ior(self.naming_node), "bind", &body)
            .expect("naming reference is well-formed");
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        if self.client_orb.handle_event(sys, &ev).is_some() {
            return;
        }
        let _ = self.orb.handle_event(sys, &ev);
    }
}

/// A client that resolves `demo/time` and asks for the time five times.
struct DemoClient {
    orb: ClientOrb,
    naming_node: NodeId,
    target: Option<Ior>,
    resolve_rid: Option<u32>,
    sent_at: Option<SimTime>,
    remaining: u32,
    results: Rc<RefCell<Vec<(f64, u64)>>>,
}

impl DemoClient {
    fn fire(&mut self, sys: &mut dyn SysApi) {
        let target = self.target.clone().expect("resolved");
        self.sent_at = Some(sys.now());
        self.orb
            .invoke(sys, &target, "time_of_day", &[])
            .expect("target reference is well-formed");
    }
}

impl Process for DemoClient {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        let rid = self
            .orb
            .invoke(
                sys,
                &naming_ior(self.naming_node),
                "resolve",
                &encode_name("demo/time"),
            )
            .expect("naming reference is well-formed");
        self.resolve_rid = Some(rid);
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        if let Event::TimerFired { .. } = ev {
            self.fire(sys);
            return;
        }
        let Some(upshots) = self.orb.handle_event(sys, &ev) else {
            return;
        };
        for upshot in upshots {
            match upshot {
                OrbUpshot::Reply {
                    request_id,
                    payload,
                    ..
                } => {
                    if Some(request_id) == self.resolve_rid {
                        self.target =
                            Some(decode_resolve_reply(&payload).expect("resolve reply decodes"));
                        self.fire(sys);
                    } else {
                        let server_time = decode_time_reply(&payload).expect("time reply decodes");
                        let rtt = (sys.now() - self.sent_at.expect("sent")).as_millis_f64();
                        self.results.borrow_mut().push((rtt, server_time));
                        self.remaining -= 1;
                        if self.remaining > 0 {
                            sys.set_timer(SimDuration::from_millis(1), 1);
                        }
                    }
                }
                OrbUpshot::Exception { ex, .. } => panic!("unexpected exception: {ex}"),
                _ => {}
            }
        }
    }
}

fn main() {
    let mut sim = Simulation::new(SimConfig::default());
    let infra = sim.add_node("node0");
    let server_node = sim.add_node("node1");
    let client_node = sim.add_node("node2");

    sim.spawn(
        infra,
        "naming",
        Box::new(NamingService::new(NamingConfig::default())),
    );
    let mut orb = ServerOrb::new(Port(2810), ServerOrbConfig::default());
    orb.register(
        ObjectKey::persistent("TimePOA", "TimeOfDay"),
        Box::new(TimeOfDayServant::default()),
    );
    sim.spawn(
        server_node,
        "time-server",
        Box::new(TimeServer {
            orb,
            naming_node: infra,
            client_orb: ClientOrb::new(ClientOrbConfig::default()),
        }),
    );
    // Let the server bind before the client resolves.
    sim.run_until(SimTime::from_millis(200));

    let results = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        client_node,
        "client",
        Box::new(DemoClient {
            orb: ClientOrb::new(ClientOrbConfig::default()),
            naming_node: infra,
            target: None,
            resolve_rid: None,
            sent_at: None,
            remaining: 5,
            results: results.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(2));

    println!("five time_of_day invocations over simulated CORBA/GIOP:");
    for (i, (rtt, server_time)) in results.borrow().iter().enumerate() {
        println!("  #{i}: rtt = {rtt:.3} ms, server clock = {server_time} ns");
    }
    println!(
        "(the first call is slower: it pays naming resolution plus ORB \
         connection establishment, the paper's 'initial transient spike')"
    );
}
