//! When should proactive recovery fire? The paper's section 5.2.4 answer:
//! not too early (wasted migrations, group-communication chatter), not too
//! late (no time left to hand clients off). This example sweeps the
//! rejuvenation threshold for the MEAD scheme and prints the trade-off.
//!
//! Run with `cargo run --release --example threshold_tuning`.

use mead_repro::experiments::{run_scenario, ScenarioConfig, Summary};
use mead_repro::groupcomm::MESH_TAG;
use mead_repro::mead::RecoveryScheme;
use mead_repro::simnet::SimTime;

fn main() {
    println!("MEAD-message scheme, 3,000 invocations per threshold:\n");
    println!(
        "{:>9} | {:>8} | {:>14} | {:>13} | {:>9}",
        "threshold", "restarts", "gcs bandwidth", "client fails", "p99 (ms)"
    );
    for pct in [20u32, 40, 60, 80, 95] {
        let out = run_scenario(&ScenarioConfig {
            invocations: 3000,
            threshold: Some(pct as f64 / 100.0),
            ..ScenarioConfig::paper(RecoveryScheme::MeadFailover)
        });
        let bw = out
            .metrics
            .bandwidth(MESH_TAG, SimTime::from_millis(1000), out.finished_at);
        let rtts = out.report.rtts_ms();
        let p99 = Summary::of(&rtts).map(|s| s.p99).unwrap_or(f64::NAN);
        println!(
            "{:>8}% | {:>8} | {:>10.0} B/s | {:>13} | {:>9.2}",
            pct,
            out.server_failures(),
            bw,
            out.report.client_failures(),
            p99,
        );
    }
    println!(
        "\nlow thresholds restart servers constantly and burn group-communication \
         bandwidth; very high thresholds risk crashing before clients are moved. \
         The sweet spot is 'just enough time to redirect clients' (section 5.2.4)."
    );
}
