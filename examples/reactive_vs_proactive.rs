//! Reactive vs. proactive recovery, side by side: the paper's headline
//! comparison. Runs the reactive no-cache baseline and all three proactive
//! schemes over the same fault load and prints a compact scoreboard.
//!
//! Run with `cargo run --release --example reactive_vs_proactive [invocations]`.

use mead_repro::experiments::{
    failover_episodes_ms, run_scenario, steady_state_rtt_ms, ScenarioConfig,
};
use mead_repro::mead::RecoveryScheme;

fn main() {
    let invocations: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    println!("comparing recovery strategies over {invocations} invocations each...\n");

    let mut baseline_failover = None;
    println!(
        "{:<24} {:>10} {:>12} {:>14} {:>10}",
        "strategy", "RTT (ms)", "failures", "failover (ms)", "vs. base"
    );
    for scheme in RecoveryScheme::ALL {
        let out = run_scenario(&ScenarioConfig {
            invocations,
            ..ScenarioConfig::paper(scheme)
        });
        let steady = steady_state_rtt_ms(&out);
        let eps = failover_episodes_ms(&out, scheme);
        let failover = eps.iter().sum::<f64>() / eps.len().max(1) as f64;
        let base = *baseline_failover.get_or_insert(failover);
        println!(
            "{:<24} {:>10.3} {:>11}x {:>14.2} {:>+9.1}%",
            scheme.name(),
            steady,
            out.report.client_failures(),
            failover,
            (failover - base) / base * 100.0,
        );
    }
    println!(
        "\nthe MEAD-message scheme cuts fail-over by roughly three quarters \
         (paper: -73.9%) while masking every failure from the client."
    );
}
