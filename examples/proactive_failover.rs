//! Proactive fail-over in action: a full MEAD deployment — three
//! warm-passively replicated servers under a memory-leak fault, the
//! Recovery Manager, group communication, and a client whose connections
//! are transparently migrated away from failing replicas.
//!
//! The client application never sees a single exception, even though the
//! primary replica is rejuvenated every few hundred invocations.
//!
//! Run with `cargo run --release --example proactive_failover`.

use mead_repro::experiments::{failover_episodes_ms, run_scenario, ScenarioConfig, Summary};
use mead_repro::mead::RecoveryScheme;

fn main() {
    let cfg = ScenarioConfig {
        invocations: 3000,
        ..ScenarioConfig::paper(RecoveryScheme::MeadFailover)
    };
    println!("running 3,000 invocations against leaky replicas (MEAD fail-over messages)...");
    let out = run_scenario(&cfg);

    let rtts = out.report.rtts_ms();
    let s = Summary::of(&rtts).expect("invocations ran");
    let episodes = failover_episodes_ms(&out, RecoveryScheme::MeadFailover);
    let mean_failover = episodes.iter().sum::<f64>() / episodes.len().max(1) as f64;

    println!("\ninvocations completed : {}", rtts.len());
    println!("median RTT            : {:.3} ms", s.p50);
    println!("max RTT               : {:.3} ms", s.max);
    println!("server-side failures  : {}", out.server_failures());
    println!(
        "  of which graceful rejuvenations: {}",
        out.metrics.counter("mead.graceful_rejuvenations")
    );
    println!(
        "  of which hard crashes          : {}",
        out.metrics.counter("mead.crash_exhaustion")
    );
    println!(
        "client-visible failures: {} COMM_FAILURE, {} TRANSIENT",
        out.report.comm_failures, out.report.transients
    );
    println!(
        "connection redirects   : {} (dup2-style, invisible to the ORB)",
        out.metrics.counter("mead.client.redirects_completed")
    );
    println!(
        "fail-over episodes     : {} (mean {:.2} ms)",
        episodes.len(),
        mean_failover
    );
    println!(
        "replicas launched      : {} (initial 3 + proactive replacements)",
        out.metrics.counter("rm.launches")
    );

    assert_eq!(
        out.report.client_failures(),
        0,
        "proactive migration must mask every failure from the application"
    );
    println!("\nno exception ever reached the client application.");
}
