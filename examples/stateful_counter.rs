//! Warm-passive replication with *real* state: a replicated counter whose
//! value is checkpointed to the backups over group communication, so a
//! proactively migrated client continues against (almost) the same state.
//!
//! The paper's test application (time-of-day) is stateless; this example
//! exercises the state-transfer half of warm-passive replication that the
//! paper's infrastructure provides but its evaluation never stresses.
//! It also demonstrates warm-passive's fundamental trade-off: increments
//! applied after the last checkpoint are lost at fail-over — bounded by
//! the checkpoint interval.
//!
//! Run with `cargo run --release --example stateful_counter`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mead_repro::giop::{Ior, ObjectKey};
use mead_repro::groupcomm::{GcsConfig, GcsDaemon, GCS_PORT};
use mead_repro::mead::{
    MeadConfig, RecoveryManager, RecoveryScheme, ReplicaApp, ReplicaFactory, ServerInterceptor,
    StateHooks,
};
use mead_repro::orb::{
    decode_counter_reply, decode_resolve_reply, encode_increment, encode_name, naming_ior,
    ClientOrb, ClientOrbConfig, NamingConfig, NamingService, OrbUpshot, SharedCounterServant,
    COUNTER_TYPE_ID,
};
use mead_repro::simnet::{
    Addr, Event, NodeId, Process, SimConfig, SimDuration, SimTime, Simulation, SysApi,
};

fn counter_key() -> ObjectKey {
    ObjectKey::persistent("CounterPOA", "Counter")
}

/// Client: increments the replicated counter once per millisecond and
/// records every reply value; falls back to naming resolution on failure.
struct IncrementClient {
    orb: ClientOrb,
    naming_node: NodeId,
    target: Option<Ior>,
    naming_rid: Option<u32>,
    current_rid: Option<u32>,
    sent: u32,
    total: u32,
    slot_rr: u32,
    values: Rc<RefCell<Vec<u64>>>,
    done: Rc<Cell<bool>>,
}

impl IncrementClient {
    fn resolve(&mut self, sys: &mut dyn SysApi) {
        let name = RecoveryManager::slot_binding(mead::Slot(self.slot_rr));
        self.naming_rid = self
            .orb
            .invoke(
                sys,
                &naming_ior(self.naming_node),
                "resolve",
                &encode_name(&name),
            )
            .ok();
    }
    fn fire(&mut self, sys: &mut dyn SysApi) {
        if self.sent >= self.total {
            self.done.set(true);
            return;
        }
        let Some(target) = self.target.clone() else {
            return;
        };
        match self
            .orb
            .invoke(sys, &target, "increment", &encode_increment(1))
        {
            Ok(rid) => self.current_rid = Some(rid),
            Err(_) => {
                self.slot_rr = (self.slot_rr + 1) % 3;
                self.resolve(sys);
            }
        }
    }
}

impl Process for IncrementClient {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.resolve(sys);
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        if let Event::TimerFired { .. } = ev {
            self.fire(sys);
            return;
        }
        let Some(upshots) = self.orb.handle_event(sys, &ev) else {
            return;
        };
        for upshot in upshots {
            match upshot {
                OrbUpshot::Reply {
                    request_id,
                    payload,
                    ..
                } => {
                    if Some(request_id) == self.naming_rid {
                        self.naming_rid = None;
                        if let Ok(ior) = decode_resolve_reply(&payload) {
                            self.target = Some(ior);
                            self.fire(sys);
                        } else {
                            sys.set_timer(SimDuration::from_millis(25), 1);
                        }
                    } else if Some(request_id) == self.current_rid {
                        self.current_rid = None;
                        let value = decode_counter_reply(&payload).expect("counter reply");
                        self.values.borrow_mut().push(value);
                        self.sent += 1;
                        if self.sent >= self.total {
                            self.done.set(true);
                        } else {
                            sys.set_timer(SimDuration::from_millis(1), 1);
                        }
                    }
                }
                OrbUpshot::Exception { request_id, .. } => {
                    if Some(request_id) == self.naming_rid {
                        self.naming_rid = None;
                        sys.set_timer(SimDuration::from_millis(25), 1);
                    } else if Some(request_id) == self.current_rid {
                        self.current_rid = None;
                        self.slot_rr = (self.slot_rr + 1) % 3;
                        self.resolve(sys);
                    }
                }
                _ => {}
            }
        }
    }
}

fn main() {
    let total: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);
    let mut sim = Simulation::new(SimConfig::default());
    let infra = sim.add_node("node0");
    let servers: Vec<NodeId> = (1..=3).map(|i| sim.add_node(&format!("node{i}"))).collect();
    let client_node = sim.add_node("node4");

    let seq = Addr::new(infra, GCS_PORT);
    for node in std::iter::once(infra)
        .chain(servers.iter().copied())
        .chain([client_node])
    {
        sim.spawn(
            node,
            "gcs",
            Box::new(GcsDaemon::new(seq, GcsConfig::default())),
        );
    }
    sim.spawn(
        infra,
        "naming",
        Box::new(NamingService::new(NamingConfig::default())),
    );

    // Replica factory: counter servant over a shared cell, with the
    // interceptor's warm-passive state hooks capturing/restoring it.
    // Checkpoint every 50 ms: with a rejuvenation every ~400 ms, each
    // hand-off then loses at most ~50 ms of increments.
    let mut mead_cfg = MeadConfig::builder(RecoveryScheme::MeadFailover).build();
    mead_cfg.checkpoint_interval = SimDuration::from_millis(50);
    let factory_cfg = mead_cfg.clone();
    let factory: ReplicaFactory = Rc::new(move |spec| {
        let value = Rc::new(Cell::new(0u64));
        let app = ReplicaApp::time_server(spec.slot, spec.port, infra).with_servant(
            counter_key(),
            COUNTER_TYPE_ID,
            Box::new(SharedCounterServant::new(value.clone())),
        );
        let capture_cell = value.clone();
        let restore_cell = value;
        let hooks = StateHooks {
            capture: Box::new(move || capture_cell.get().to_be_bytes().to_vec()),
            restore: Box::new(move |bytes| {
                if let Ok(arr) = <[u8; 8]>::try_from(bytes) {
                    restore_cell.set(u64::from_be_bytes(arr));
                }
            }),
        };
        Box::new(
            ServerInterceptor::new(factory_cfg.clone(), spec.slot, Box::new(app))
                .with_state_hooks(hooks),
        )
    });
    sim.spawn(
        infra,
        "recovery-manager",
        Box::new(RecoveryManager::new(mead_cfg, 3, servers, factory)),
    );
    sim.run_until(SimTime::from_millis(500));

    let values = Rc::new(RefCell::new(Vec::new()));
    let done = Rc::new(Cell::new(false));
    sim.spawn(
        client_node,
        "client",
        Box::new(mead_repro::mead::ClientInterceptor::new(
            MeadConfig::builder(RecoveryScheme::MeadFailover).build(),
            Box::new(IncrementClient {
                orb: ClientOrb::new(ClientOrbConfig::default()),
                naming_node: infra,
                target: None,
                naming_rid: None,
                current_rid: None,
                sent: 0,
                total,
                slot_rr: 0,
                values: values.clone(),
                done: done.clone(),
            }),
        )),
    );
    while !done.get() && sim.now() < SimTime::from_secs(120) {
        let t = sim.now() + SimDuration::from_millis(500);
        sim.run_until(t);
    }

    let values = values.borrow();
    let final_value = values.last().copied().unwrap_or(0);
    let sent = values.len() as u64;
    let rejuvenations = sim.with_metrics(|m| m.counter("mead.graceful_rejuvenations"));
    let restores = sim.with_metrics(|m| m.counter("mead.state_restored"));
    // Count the visible state regressions (value dropping between
    // consecutive replies = a fail-over onto a slightly stale backup).
    let regressions = values.windows(2).filter(|w| w[1] <= w[0]).count();

    println!("increments acknowledged : {sent}");
    println!("final counter value     : {final_value}");
    println!(
        "state carried over      : {:.1}%",
        final_value as f64 * 100.0 / sent as f64
    );
    println!("rejuvenations           : {rejuvenations}");
    println!("checkpoint restores     : {restores}");
    println!("visible state regressions at fail-over: {regressions}");
    println!(
        "\nwarm-passive semantics: increments since the last checkpoint are \
         lost at each hand-off (bounded by the 50 ms checkpoint interval), \
         so the final value trails the {sent} acknowledged increments."
    );
    assert!(
        final_value > sent * 2 / 3,
        "state must substantially survive fail-overs: {final_value}/{sent}"
    );
    assert!(
        final_value <= sent,
        "the counter can never exceed the increments sent"
    );
}
