//! Multiple concurrent clients (the paper evaluates one): per-connection
//! migration must redirect every client of a failing replica, and the
//! schemes' guarantees must hold for each of them.

use mead_repro::experiments::{run_scenario, ScenarioConfig};
use mead_repro::mead::RecoveryScheme;

#[test]
fn mead_masks_failures_for_all_three_clients() {
    let out = run_scenario(&ScenarioConfig {
        clients: 3,
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 900)
    });
    assert_eq!(out.all_reports.len(), 3);
    for (i, report) in out.all_reports.iter().enumerate() {
        assert!(report.completed, "client {i} must finish");
        assert_eq!(
            report.comm_failures + report.transients,
            0,
            "client {i} must see no exceptions"
        );
    }
    // With three clients on the primary, a migration redirects all three.
    assert!(out.metrics.counter("mead.client.redirects_completed") >= 3);
}

#[test]
fn location_forward_serves_all_clients_through_forwards() {
    let out = run_scenario(&ScenarioConfig {
        clients: 2,
        ..ScenarioConfig::quick(RecoveryScheme::LocationForward, 900)
    });
    for (i, report) in out.all_reports.iter().enumerate() {
        assert!(report.completed, "client {i} must finish");
        assert_eq!(report.comm_failures + report.transients, 0, "client {i}");
    }
    assert!(out.metrics.counter("mead.forwards_sent") >= 2);
}

#[test]
fn reactive_clients_each_observe_their_own_failures() {
    let out = run_scenario(&ScenarioConfig {
        clients: 2,
        ..ScenarioConfig::quick(RecoveryScheme::ReactiveNoCache, 900)
    });
    for report in &out.all_reports {
        assert!(report.completed);
    }
    // Both clients talk to the same primary (slot 0 first), so each crash
    // surfaces at both: total failures ≈ 2x the crash count.
    let crashes = out.metrics.counter("mead.crash_exhaustion");
    let total: u32 = out.all_reports.iter().map(|r| r.comm_failures).sum();
    assert!(
        total as u64 >= crashes,
        "at least one failure per crash somewhere: {total} vs {crashes}"
    );
}
