//! End-to-end integration tests: the full MEAD stack (simulator, GIOP,
//! group communication, ORB, interceptors, Recovery Manager, workload)
//! must exhibit the paper's qualitative results on short runs.

use mead_repro::experiments::{
    failover_episodes_ms, run_scenario, steady_state_rtt_ms, ScenarioConfig,
};
use mead_repro::mead::RecoveryScheme;

fn quick(scheme: RecoveryScheme, invocations: u32) -> ScenarioConfig {
    ScenarioConfig::quick(scheme, invocations)
}

#[test]
fn every_scheme_completes_the_workload_under_faults() {
    for scheme in RecoveryScheme::ALL {
        let out = run_scenario(&quick(scheme, 800));
        assert!(
            out.report.completed,
            "{} did not complete: {} records",
            scheme.name(),
            out.report.records.len()
        );
        assert_eq!(out.report.records.len(), 800, "{}", scheme.name());
        assert!(
            out.server_failures() > 0,
            "{} saw no injected failures",
            scheme.name()
        );
    }
}

#[test]
fn proactive_migration_masks_all_failures_from_the_client() {
    for scheme in [
        RecoveryScheme::LocationForward,
        RecoveryScheme::MeadFailover,
    ] {
        let out = run_scenario(&quick(scheme, 1200));
        assert_eq!(
            out.report.client_failures(),
            0,
            "{}: section 5.2.1 — thresholds below 100% mean the client \
             catches no exceptions at all",
            scheme.name()
        );
        assert!(
            out.metrics.counter("mead.graceful_rejuvenations") > 0,
            "{}: failures must be graceful rejuvenations",
            scheme.name()
        );
        // A replica may still exhaust *after* the workload stops: with no
        // client writes there is no event-driven threshold check (the
        // paper's deliberate design, section 3.1). During the measured
        // window, though, every failure must be a graceful rejuvenation.
        let last_invocation_end = out.report.records.last().expect("records exist").end;
        for crash in out.metrics.byte_records("mead.crash_at") {
            assert!(
                crash.at > last_invocation_end,
                "{}: replica exhausted at {} while the workload was active",
                scheme.name(),
                crash.at
            );
        }
    }
}

#[test]
fn reactive_no_cache_has_one_comm_failure_per_server_crash() {
    let out = run_scenario(&quick(RecoveryScheme::ReactiveNoCache, 1500));
    let crashes = out.metrics.counter("mead.crash_exhaustion");
    assert!(crashes >= 3, "expected several crashes, got {crashes}");
    assert_eq!(
        u64::from(out.report.comm_failures),
        crashes,
        "section 5.2.1: exact 1:1 correspondence between server crashes \
         and client COMM_FAILUREs"
    );
    assert_eq!(out.report.transients, 0, "no TRANSIENTs without a cache");
}

#[test]
fn reactive_schemes_never_migrate_proactively() {
    for scheme in [
        RecoveryScheme::ReactiveNoCache,
        RecoveryScheme::ReactiveCache,
    ] {
        let out = run_scenario(&quick(scheme, 800));
        assert_eq!(
            out.metrics.counter("mead.migrations"),
            0,
            "{}",
            scheme.name()
        );
        assert_eq!(
            out.metrics.counter("mead.graceful_rejuvenations"),
            0,
            "{}",
            scheme.name()
        );
    }
}

#[test]
fn steady_state_overhead_ordering_matches_table1() {
    // LOCATION_FORWARD >> NEEDS_ADDRESSING > MEAD > reactive ≈ baseline.
    let steady = |scheme| steady_state_rtt_ms(&run_scenario(&quick(scheme, 700)));
    let base = steady(RecoveryScheme::ReactiveNoCache);
    let cache = steady(RecoveryScheme::ReactiveCache);
    let na = steady(RecoveryScheme::NeedsAddressing);
    let lf = steady(RecoveryScheme::LocationForward);
    let mead = steady(RecoveryScheme::MeadFailover);
    assert!((cache - base).abs() / base < 0.02, "cache overhead ~0%");
    assert!(
        lf / base > 1.6,
        "LF must pay heavy parsing overhead: {lf} vs {base}"
    );
    assert!(
        na > base && na / base < 1.2,
        "NA overhead moderate: {na} vs {base}"
    );
    assert!(
        mead > base * 0.99 && mead / base < 1.1,
        "MEAD overhead small: {mead} vs {base}"
    );
    assert!(lf > na && na > mead, "overhead ordering LF > NA > MEAD");
}

#[test]
fn mead_failover_is_several_times_faster_than_reactive() {
    let base_out = run_scenario(&quick(RecoveryScheme::ReactiveNoCache, 1200));
    let mead_out = run_scenario(&quick(RecoveryScheme::MeadFailover, 1200));
    let base_eps = failover_episodes_ms(&base_out, RecoveryScheme::ReactiveNoCache);
    let mead_eps = failover_episodes_ms(&mead_out, RecoveryScheme::MeadFailover);
    assert!(!base_eps.is_empty() && !mead_eps.is_empty());
    let base = base_eps.iter().sum::<f64>() / base_eps.len() as f64;
    let mead = mead_eps.iter().sum::<f64>() / mead_eps.len() as f64;
    let reduction = (base - mead) / base;
    assert!(
        (0.60..0.85).contains(&reduction),
        "paper: 73.9% reduction; measured {:.1}% ({} -> {})",
        reduction * 100.0,
        base,
        mead
    );
}

#[test]
fn replication_degree_is_maintained_across_failures() {
    let out = run_scenario(&quick(RecoveryScheme::MeadFailover, 1500));
    let launches = out.metrics.counter("rm.launches");
    let failures = out.server_failures();
    // Initial 3 + one replacement per failure, within slack for in-flight
    // launches at the end of the run.
    assert!(
        launches >= 3 + failures - 1 && launches <= 3 + failures + 2,
        "launches {launches} vs failures {failures}"
    );
}

#[test]
fn fault_free_run_is_clean_and_fast() {
    let cfg = ScenarioConfig {
        fault_free: true,
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 600)
    };
    let out = run_scenario(&cfg);
    assert!(out.report.completed);
    assert_eq!(out.server_failures(), 0);
    assert_eq!(out.report.client_failures(), 0);
    let steady = steady_state_rtt_ms(&out);
    assert!(
        (0.70..0.85).contains(&steady),
        "fault-free steady RTT out of calibration: {steady} ms"
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed| {
        let out = run_scenario(&ScenarioConfig {
            seed,
            ..ScenarioConfig::quick(RecoveryScheme::LocationForward, 500)
        });
        (
            out.report.rtts_ms(),
            out.server_failures(),
            out.metrics.counter("mead.forwards_sent"),
        )
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a.0, b.0, "same seed, same RTT series");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_ne!(a.0, c.0, "different seed perturbs the run");
}

#[test]
fn needs_addressing_masks_most_but_not_all_failures() {
    // Run a little longer so the race statistics are meaningful.
    let out = run_scenario(&quick(RecoveryScheme::NeedsAddressing, 2500));
    let failures = out.report.client_failures() as f64;
    let server = out.server_failures() as f64;
    assert!(server >= 5.0);
    let ratio = failures / server;
    assert!(
        ratio < 0.8,
        "NA should mask the majority of failures (paper: 75%), ratio {ratio}"
    );
    // The masking machinery must actually have run.
    assert!(
        out.metrics.counter("mead.client.eof_suppressed") > 0,
        "EOFs must be suppressed"
    );
}

#[test]
fn os_noise_produces_the_papers_jitter_profile() {
    let cfg = ScenarioConfig {
        fault_free: true,
        os_noise: true,
        ..ScenarioConfig::paper(RecoveryScheme::ReactiveNoCache)
    };
    let cfg = ScenarioConfig {
        invocations: 3000,
        ..cfg
    };
    let out = run_scenario(&cfg);
    let rtts: Vec<f64> = out.report.rtts_ms().into_iter().skip(1).collect();
    let s = mead_repro::experiments::Summary::of(&rtts).expect("samples");
    let (_, frac) = s.three_sigma_outliers(&rtts);
    assert!(
        (0.005..0.03).contains(&frac),
        "paper: 1-2.5% outliers; measured {:.2}%",
        frac * 100.0
    );
    assert!(
        s.max < 2.6,
        "paper: fault-free max spike 2.3 ms; measured {}",
        s.max
    );
}
