//! Node-crash faults (part of the paper's fault model, section 3, though
//! its evaluation only ever kills processes): crashing a whole server node
//! takes down its replica *and* its group-communication daemon. The
//! sequencer must synthesize node-level leaves, the Recovery Manager must
//! re-place the replica on a surviving node, and the client must keep
//! going.

use mead_repro::experiments::{run_scenario, ScenarioConfig};
use mead_repro::mead::RecoveryScheme;
use mead_repro::simnet::SimTime;

#[test]
fn node_crash_is_survived_by_mead_scheme() {
    let out = run_scenario(&ScenarioConfig {
        crash_server_node_at: Some((1, SimTime::from_millis(1500))),
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 2000)
    });
    assert!(
        out.report.completed,
        "workload must finish despite the node crash"
    );
    // The sequencer must have synthesized leaves for the dead node's
    // members (at least the GCS daemon's hosted replica).
    assert!(
        out.metrics.counter("gcs.node_crash_leave") > 0,
        "node-level membership must fire"
    );
    // The Recovery Manager must have re-placed the slot on another node.
    assert!(
        out.metrics.counter("rm.fallback_placements") > 0,
        "replacement must land on a surviving node"
    );
    // Whether the client observes the crash depends on which replica it
    // was talking to; what matters is that service continues and at most
    // a couple of failures surface (the node crash is abrupt — no
    // proactive warning is possible for it).
    assert!(
        out.report.client_failures() <= 2,
        "at most the one abrupt failure may surface, got {}",
        out.report.client_failures()
    );
}

#[test]
fn node_crash_under_reactive_scheme_costs_one_comm_failure() {
    let out = run_scenario(&ScenarioConfig {
        crash_server_node_at: Some((0, SimTime::from_millis(1500))),
        ..ScenarioConfig::quick(RecoveryScheme::ReactiveNoCache, 2000)
    });
    assert!(out.report.completed);
    assert!(
        out.report.comm_failures >= 1,
        "the abrupt node crash must surface"
    );
    // Replication degree restored on surviving nodes.
    assert!(out.metrics.counter("rm.launches") >= 4);
}

#[test]
fn crashing_two_nodes_still_leaves_service() {
    let mut cfg = ScenarioConfig {
        crash_server_node_at: Some((2, SimTime::from_millis(1200))),
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1500)
    };
    cfg.seed = 5;
    let out = run_scenario(&cfg);
    assert!(
        out.report.completed,
        "one dead node of three must not stop service"
    );
}
