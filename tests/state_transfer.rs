//! Warm-passive state transfer (extension, DESIGN.md §8): the replicated
//! counter's value must substantially survive proactive fail-overs via
//! checkpoints, with bounded loss per hand-off.

use mead_repro::experiments::{run_counter_scenario, CounterConfig};
use mead_repro::simnet::SimDuration;

#[test]
fn counter_state_survives_failovers_with_bounded_loss() {
    let out = run_counter_scenario(&CounterConfig::default());
    assert!(out.completed, "all increments must be acknowledged");
    let sent = out.values.len() as u64;
    let rejuvenations = out.metrics.counter("mead.graceful_rejuvenations");
    assert!(
        rejuvenations >= 3,
        "the leak must force several rejuvenations"
    );
    assert!(
        out.metrics.counter("mead.state_restored") > 0,
        "backups must apply checkpoints"
    );
    // Every fail-over shows up as exactly one visible regression...
    assert!(
        out.regressions() as u64 <= rejuvenations + 1,
        "regressions {} vs rejuvenations {}",
        out.regressions(),
        rejuvenations
    );
    // ...and the loss per fail-over is bounded by the checkpoint interval:
    // 50 ms at ~1.75 ms per increment is < 30 lost increments per hand-off.
    let final_value = out.final_value();
    let max_loss = rejuvenations * 45 + 60;
    assert!(
        final_value + max_loss >= sent,
        "loss exceeds the checkpoint bound: final {final_value}, sent {sent}"
    );
    assert!(
        final_value <= sent,
        "counter can never exceed the acknowledged increments"
    );
}

#[test]
fn fault_free_counter_loses_nothing() {
    let out = run_counter_scenario(&CounterConfig {
        increments: 800,
        fault_free: true,
        ..CounterConfig::default()
    });
    assert!(out.completed);
    assert_eq!(
        out.final_value(),
        out.values.len() as u64,
        "no failures, no loss"
    );
    assert_eq!(out.regressions(), 0);
}

#[test]
fn coarser_checkpoints_lose_more() {
    let fine = run_counter_scenario(&CounterConfig {
        checkpoint_interval: SimDuration::from_millis(25),
        ..CounterConfig::default()
    });
    let coarse = run_counter_scenario(&CounterConfig {
        checkpoint_interval: SimDuration::from_millis(400),
        ..CounterConfig::default()
    });
    assert!(fine.completed && coarse.completed);
    assert!(
        fine.final_value() > coarse.final_value(),
        "finer checkpoints must preserve more state: {} vs {}",
        fine.final_value(),
        coarse.final_value()
    );
}
