//! Adaptive thresholds (the paper's future work): the rate-estimating
//! predictor must handle fault speeds the preset thresholds cannot.

use mead_repro::experiments::{run_adaptive_comparison, run_scenario, ScenarioConfig};
use mead_repro::mead::{MeadConfig, RecoveryScheme};

fn fast_leak_preset(cfg: &mut MeadConfig) {
    if let Some(leak) = cfg.leak.as_mut() {
        leak.chunk_unit_bytes = 19 * 6;
    }
}

fn fast_leak_adaptive(cfg: &mut MeadConfig) {
    fast_leak_preset(cfg);
    cfg.adaptive = Some(faults::AdaptiveConfig::default());
}

#[test]
fn preset_thresholds_fail_on_fast_leaks_adaptive_does_not() {
    let preset = run_scenario(&ScenarioConfig {
        tweak: Some(fast_leak_preset),
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1500)
    });
    let adaptive = run_scenario(&ScenarioConfig {
        tweak: Some(fast_leak_adaptive),
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1500)
    });
    // At 6x leak speed the 90% preset trigger leaves only ~12ms before
    // exhaustion — not enough to hand clients off.
    assert!(
        preset.metrics.counter("mead.crash_exhaustion") > 5,
        "preset must crash often on a fast leak, got {}",
        preset.metrics.counter("mead.crash_exhaustion")
    );
    assert!(preset.report.client_failures() > 0);
    // The adaptive trigger fires early enough in fraction terms.
    assert!(
        adaptive.metrics.counter("mead.crash_exhaustion") <= 1,
        "adaptive must avoid exhaustion, got {}",
        adaptive.metrics.counter("mead.crash_exhaustion")
    );
    assert_eq!(adaptive.report.client_failures(), 0);
}

#[test]
fn adaptive_matches_preset_on_the_calibrated_leak() {
    // Two worker threads: exercises the parallel runner path while
    // asserting the same calibrated results as a sequential run.
    let cells = run_adaptive_comparison(800, 9, 2);
    let at = |speed: f64, strategy: &str| {
        cells
            .iter()
            .map(|(row, _)| row)
            .find(|r| r.speed == speed && r.strategy == strategy)
            .expect("row exists")
            .clone()
    };
    // At the paper's leak rate both strategies behave equivalently.
    let preset = at(1.0, "preset");
    let adaptive = at(1.0, "adaptive");
    assert!(preset.completed && adaptive.completed);
    assert_eq!(preset.client_failures, 0);
    assert_eq!(adaptive.client_failures, 0);
    // And on the slow leak, adaptive does not restart more often than
    // preset (it waits longer in fraction terms).
    let slow_preset = at(0.5, "preset");
    let slow_adaptive = at(0.5, "adaptive");
    assert!(slow_adaptive.restarts <= slow_preset.restarts + 1);
}
