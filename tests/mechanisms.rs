//! Mechanism-level integration tests: the individual moving parts of the
//! MEAD framework, observed through the full stack.

use mead_repro::experiments::{run_scenario, steady_state_rtt_ms, ScenarioConfig};
use mead_repro::mead::{
    replica_member_name, slot_of_member, MemberName, RecoveryScheme, ReplicaDirectory, Slot,
};

#[test]
fn location_forward_uses_giop_forwards_not_exceptions() {
    let out = run_scenario(&ScenarioConfig::quick(
        RecoveryScheme::LocationForward,
        1200,
    ));
    assert!(
        out.metrics.counter("mead.forwards_sent") > 0,
        "forwards must be sent"
    );
    assert!(
        out.metrics.counter("orb.forwarded") > 0,
        "the ORB must follow them"
    );
    // The forward machinery parses GIOP: the IOR table must have been fed
    // from intercepted naming registrations.
    assert!(out.metrics.counter("mead.ior_captured") > 0);
    // And no MEAD piggyback frames are used by this scheme.
    assert_eq!(out.metrics.counter("mead.piggybacks_sent"), 0);
}

#[test]
fn mead_scheme_uses_piggybacks_not_forwards() {
    let out = run_scenario(&ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1200));
    assert!(out.metrics.counter("mead.piggybacks_sent") > 0);
    assert_eq!(out.metrics.counter("mead.forwards_sent"), 0);
    assert_eq!(out.metrics.counter("orb.forwarded"), 0);
    // The client interceptor must have completed dup2-style redirects.
    assert_eq!(
        out.metrics.counter("mead.client.redirects_started"),
        out.metrics.counter("mead.client.redirects_completed"),
        "every started redirect must complete"
    );
    // The client ORB never opens extra connections for fail-over: only
    // naming + the first replica connection. (The global counter also
    // includes one naming connection per launched replica instance.)
    let client_opens =
        out.metrics.counter("orb.connections_opened") - out.metrics.counter("rm.launches");
    assert_eq!(
        client_opens, 2,
        "interceptor-level redirects must bypass the ORB's connection machinery"
    );
    assert_eq!(
        out.report.naming_lookups, 1,
        "one initial resolve, no re-resolution"
    );
}

#[test]
fn needs_addressing_fabricates_replies_for_in_flight_requests() {
    let out = run_scenario(&ScenarioConfig::quick(
        RecoveryScheme::NeedsAddressing,
        2500,
    ));
    let suppressed = out.metrics.counter("mead.client.eof_suppressed");
    assert!(suppressed > 0);
    // Some of the suppressed EOFs had a request in flight; those must
    // produce a fabricated NEEDS_ADDRESSING_MODE reply and an ORB resend.
    let fabricated = out.metrics.counter("mead.client.fabricated_needs_addr");
    let resends = out.metrics.counter("orb.needs_addressing_resend");
    assert_eq!(
        fabricated, resends,
        "each fabricated reply triggers one resend"
    );
    // Timeouts (lost races) surface as COMM_FAILURE at the application —
    // except possibly a timeout landing at the very end of the run, which
    // the completed workload never discovers.
    let timeouts = out.metrics.counter("mead.client.query_timeout");
    assert!(
        timeouts > 0,
        "the race must produce some timeouts over 2500 invocations"
    );
    assert!(
        u64::from(out.report.comm_failures) + 1 >= timeouts,
        "timeouts must surface as COMM_FAILURE ({} failures, {timeouts} timeouts)",
        out.report.comm_failures
    );
}

#[test]
fn proactive_notifications_prelaunch_replacements() {
    let out = run_scenario(&ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1200));
    let notices = out.metrics.counter("rm.proactive_notices");
    let rejuvenations = out.metrics.counter("mead.graceful_rejuvenations");
    assert!(
        notices >= rejuvenations,
        "every rejuvenation is preceded by a launch request \
         (notices {notices} vs rejuvenations {rejuvenations})"
    );
}

#[test]
fn stale_references_surface_as_transients_with_cache() {
    // Longer run so cache refreshes race replica restarts.
    let out = run_scenario(&ScenarioConfig::quick(RecoveryScheme::ReactiveCache, 3500));
    assert!(out.report.comm_failures > 0);
    assert!(
        out.report.transients > 0,
        "stale cache entries must produce TRANSIENT exceptions (section 5.2.1)"
    );
    assert!(
        out.report.transients < out.report.comm_failures,
        "TRANSIENTs are the minority case"
    );
}

#[test]
fn key_hash_ablation_still_works_but_costs_more() {
    let with_hash = run_scenario(&ScenarioConfig {
        seed: 11,
        ..ScenarioConfig::quick(RecoveryScheme::LocationForward, 900)
    });
    let without_hash = run_scenario(&ScenarioConfig {
        seed: 11,
        tweak: Some(|cfg| cfg.use_key_hash = false),
        ..ScenarioConfig::quick(RecoveryScheme::LocationForward, 900)
    });
    // Functionally equivalent (the lookup result is identical)...
    assert_eq!(with_hash.report.client_failures(), 0);
    assert_eq!(without_hash.report.client_failures(), 0);
    assert!(without_hash.metrics.counter("mead.forwards_sent") > 0);
    // ...but the byte-wise comparison charges more CPU per forward, so the
    // fail-over episodes get (slightly) slower on the ablated run.
    let fast =
        mead_repro::experiments::failover_episodes_ms(&with_hash, RecoveryScheme::LocationForward);
    let slow = mead_repro::experiments::failover_episodes_ms(
        &without_hash,
        RecoveryScheme::LocationForward,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&slow) >= mean(&fast),
        "byte-wise lookups must not be faster: {} vs {}",
        mean(&slow),
        mean(&fast)
    );
}

#[test]
fn directory_semantics() {
    let mut dir = ReplicaDirectory::new();
    dir.on_view(vec![
        "mgr/recovery".into(),
        replica_member_name(Slot(0), 1).as_str().to_string(),
        replica_member_name(Slot(1), 2).as_str().to_string(),
        replica_member_name(Slot(2), 3).as_str().to_string(),
    ]);
    // The manager is never a fail-over target.
    assert_eq!(
        dir.next_after(&replica_member_name(Slot(2), 3)),
        Some(&MemberName::from("replica/0/1"))
    );
    assert_eq!(
        slot_of_member(replica_member_name(Slot(7), 9).as_str()),
        Some(Slot(7))
    );
    // Advert retention across the advert/join race: an address recorded
    // before the member appears in a view must survive the next view.
    dir.record_addr("replica/0/99", "node1", 20009);
    dir.on_view(vec![
        replica_member_name(Slot(0), 1).as_str().to_string(),
        "replica/0/99".into(),
    ]);
    assert_eq!(
        dir.addr_of(&MemberName::from("replica/0/99")),
        Some(("node1", 20009))
    );
}

#[test]
fn polling_ablation_still_rejuvenates() {
    // With poll_thresholds the checks move to the leak timer; migrations
    // must still happen (at timer granularity) and still mask failures.
    let out = run_scenario(&ScenarioConfig {
        tweak: Some(|cfg| cfg.poll_thresholds = true),
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1000)
    });
    assert!(out.metrics.counter("mead.migrations") > 0);
    assert_eq!(out.report.client_failures(), 0);
}

#[test]
fn overhead_is_stable_across_seeds() {
    let mut values = Vec::new();
    for seed in [1u64, 2, 3] {
        let out = run_scenario(&ScenarioConfig {
            seed,
            ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 600)
        });
        values.push(steady_state_rtt_ms(&out));
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(0.0, f64::max);
    assert!(
        (max - min) / min < 0.05,
        "steady-state RTT should be seed-stable: {values:?}"
    );
}
