//! Message-loss faults (the last class in the paper's fault model,
//! section 3): lost segments manifest as retransmission delays on the
//! reliable streams. The recovery schemes must keep working — slower, but
//! without spurious failures.

use mead_repro::experiments::{run_scenario, steady_state_rtt_ms, ScenarioConfig, Summary};
use mead_repro::mead::RecoveryScheme;

#[test]
fn mead_scheme_tolerates_one_percent_loss() {
    let out = run_scenario(&ScenarioConfig {
        message_loss: 0.01,
        ..ScenarioConfig::quick(RecoveryScheme::MeadFailover, 1000)
    });
    assert!(out.report.completed, "loss must not wedge the workload");
    assert_eq!(
        out.report.client_failures(),
        0,
        "retransmission delays are not failures"
    );
    // The retransmit delays show up as a heavier tail, not a shifted median.
    let rtts = out.report.rtts_ms();
    let s = Summary::of(&rtts).expect("samples");
    assert!(s.p99 > s.p50 * 2.0, "loss should fatten the tail: {s:?}");
}

#[test]
fn loss_raises_tail_latency_not_steady_state() {
    let clean = run_scenario(&ScenarioConfig {
        fault_free: true,
        ..ScenarioConfig::quick(RecoveryScheme::ReactiveNoCache, 800)
    });
    let lossy = run_scenario(&ScenarioConfig {
        fault_free: true,
        message_loss: 0.02,
        ..ScenarioConfig::quick(RecoveryScheme::ReactiveNoCache, 800)
    });
    assert!(lossy.report.completed);
    let clean_median = steady_state_rtt_ms(&clean);
    let lossy_median = steady_state_rtt_ms(&lossy);
    assert!(
        (lossy_median - clean_median).abs() / clean_median < 0.10,
        "median barely moves: {clean_median} vs {lossy_median}"
    );
    let lossy_rtts = lossy.report.rtts_ms();
    let s = Summary::of(&lossy_rtts).expect("samples");
    assert!(
        s.max >= 20.0,
        "some invocation must have eaten a retransmission delay, max {}",
        s.max
    );
}
