//! # mead-repro — Proactive Recovery in Distributed CORBA Applications
//!
//! A from-scratch Rust reproduction of Pertet & Narasimhan's DSN 2004
//! paper: the MEAD proactive-recovery framework, together with every
//! substrate it depends on (a deterministic network/OS simulator, the GIOP
//! wire protocol, a minimal ORB and Naming Service, totally-ordered group
//! communication, and fault injection), plus the full evaluation harness
//! that regenerates the paper's Table 1 and Figures 3-5.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`simnet`] — discrete-event network/OS substrate,
//! * [`giop`] — CDR/GIOP/IOR wire protocol,
//! * [`groupcomm`] — Spread-like group communication,
//! * [`orb`] — client/server ORB and Naming Service,
//! * [`faults`] — Weibull memory leaks, thresholds, crash schedules,
//! * [`mead`] — the paper's contribution: interceptors, PFTM, Recovery
//!   Manager, and the five recovery schemes,
//! * [`experiments`] — scenario builder and per-table/figure drivers.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for paper-vs-measured
//! results. The runnable binaries live in the `experiments` crate
//! (`cargo run --release -p experiments --bin table1`), and the examples
//! in `examples/`.

#![forbid(unsafe_code)]

pub use experiments;
pub use faults;
pub use giop;
pub use groupcomm;
pub use mead;
pub use orb;
pub use simnet;
