//! `detlint` — checks the workspace against the determinism contract
//! (DESIGN §9). See `lint::cli_main` for the flags.
//!
//! The lint library is itself inside the determinism contract (R1 bans
//! ambient clocks in `crates/lint/src`), so the monotonic clock that
//! `--timings` needs lives here, in the binary, and is injected.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Wall-clock is fine here: the timings are diagnostics about the lint
    // run itself and never feed simulated behaviour or a digest.
    #[allow(clippy::disallowed_methods)]
    let start = Instant::now();
    let now_nanos = move || u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    std::process::exit(lint::cli_main_with_clock(&args, &now_nanos));
}
