//! `detlint` — checks the workspace against the determinism contract
//! (DESIGN §9). See `lint::cli_main` for the flags.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(lint::cli_main(&args));
}
