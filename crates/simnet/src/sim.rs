//! The discrete-event simulation kernel.
//!
//! [`Simulation`] owns the clock, the event queue, all nodes, processes,
//! connections and timers, and drives [`Process`] state machines. It is
//! single-threaded and fully deterministic: two runs with the same
//! [`SimConfig`] (including the seed) produce identical event sequences.
//! This mirrors the paper's deliberate avoidance of multithreading in the
//! interceptor, which "sometimes led to nondeterministic behavior at the
//! client" (section 3.1).
//!
//! # Transport semantics
//!
//! Connections are reliable, ordered byte streams modelled on TCP:
//!
//! * `connect` performs a two-trip handshake ([`Event::Accepted`] at the
//!   listener after one one-way latency, [`Event::ConnEstablished`] at the
//!   initiator after two);
//! * connecting to a port with no live listener yields
//!   [`Event::ConnRefused`] (how stale IORs manifest as `TRANSIENT`
//!   exceptions);
//! * a local `close` — or process death — delivers EOF
//!   ([`Event::PeerClosed`]) to the peer after in-flight data (how crashed
//!   replicas manifest as `COMM_FAILURE` exceptions);
//! * per-connection FIFO order is preserved even under latency jitter.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::rc::Rc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::SysError;
use crate::ids::{Addr, ConnId, ListenerId, NodeId, Port, ProcessId, TimerId};
use crate::latency::{LatencyModel, LossModel, NoiseModel};
use crate::metrics::Metrics;
use crate::process::{Event, ExitReason, Process, ProcessFactory, ReadOutcome, SysApi};
use crate::recv_queue::RecvQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Configuration for a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// One-way link latency model.
    pub latency: LatencyModel,
    /// OS-hiccup noise model (section 5.2.5 spikes).
    pub noise: NoiseModel,
    /// Message-loss model (fault model: message-loss faults).
    pub loss: LossModel,
    /// Delay between `spawn` and the new process's `on_start` — models
    /// fork/exec plus ORB initialisation of a relaunched replica.
    pub launch_latency: SimDuration,
    /// When `true`, [`SysApi::trace`] lines are retained and retrievable
    /// via [`Simulation::trace_lines`].
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            latency: LatencyModel::default(),
            noise: NoiseModel::default(),
            loss: LossModel::none(),
            launch_latency: SimDuration::from_millis(30),
            trace: false,
        }
    }
}

/// Why [`Simulation::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The clock reached the requested deadline.
    DeadlineReached,
    /// The event queue drained before the deadline.
    Idle,
    /// The configured event budget was exhausted (runaway guard).
    EventLimit,
}

#[derive(Debug)]
enum Action {
    StartProcess(ProcessId),
    ConnectAttempt { client_ep: ConnId, addr: Addr },
    ConnectResult { client_ep: ConnId, ok: bool },
    DeliverData { ep: ConnId, data: Bytes },
    DeliverEof { ep: ConnId },
    TimerFire { timer: TimerId },
    Notify { pid: ProcessId, event: Event },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed so BinaryHeap pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EpState {
    Connecting,
    Established,
    ClosedLocal,
}

struct Endpoint {
    owner: ProcessId,
    peer: Option<ConnId>,
    state: EpState,
    recv: RecvQueue,
    peer_eof: bool,
    /// Latest scheduled arrival at this endpoint, for FIFO enforcement.
    last_arrival: SimTime,
    tag: Option<&'static str>,
    remote_node: NodeId,
}

struct TimerState {
    pid: ProcessId,
    token: u64,
    cancelled: bool,
}

struct NodeState {
    #[allow(dead_code)]
    name: String,
    alive: bool,
}

struct ProcSlot {
    node: NodeId,
    label: String,
    proc: Option<Box<dyn Process>>,
    rng: SimRng,
    busy_until: SimTime,
    alive: bool,
    started: bool,
    conns: BTreeSet<ConnId>,
    listeners: BTreeSet<ListenerId>,
    exit_requested: Option<ExitReason>,
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use simnet::{SimConfig, Simulation, SimTime};
///
/// let mut sim = Simulation::new(SimConfig::default());
/// let node = sim.add_node("host-a");
/// assert_eq!(sim.now(), SimTime::ZERO);
/// assert!(sim.node_alive(node));
/// ```
pub struct Simulation {
    cfg: SimConfig,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    nodes: Vec<NodeState>,
    // Kernel state is kept in `BTreeMap`s, not `HashMap`s: several paths
    // iterate these maps (crash_node, live_processes, terminate), and hash
    // iteration order is seeded per OS process — a determinism leak the
    // detlint R1 rule now guards against.
    procs: BTreeMap<ProcessId, ProcSlot>,
    listeners_by_addr: BTreeMap<Addr, ListenerId>,
    listener_owner: BTreeMap<ListenerId, (ProcessId, Addr)>,
    endpoints: BTreeMap<ConnId, Endpoint>,
    timers: BTreeMap<TimerId, TimerState>,
    next_pid: u64,
    next_conn: u64,
    next_listener: u64,
    next_timer: u64,
    net_rng: SimRng,
    metrics: Rc<RefCell<Metrics>>,
    recorder: Rc<RefCell<obs::Recorder>>,
    /// Mirror of the recorder's level so the per-dispatch hot path can
    /// skip the `RefCell` borrow entirely at the default level.
    obs_kernel: bool,
    trace: Vec<(SimTime, ProcessId, String)>,
    events_processed: u64,
    wall_in_run: Duration,
    /// Severed node pairs (normalised lower-index first). Network actions
    /// crossing a severed link park in `parked` until the link heals.
    partitions: BTreeSet<(u32, u32)>,
    /// Actions stashed at their would-be arrival because the link was
    /// down; re-released (in original sequence order) on heal.
    parked: Vec<Scheduled>,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let net_rng = SimRng::for_kernel(cfg.seed, 1);
        Simulation {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            procs: BTreeMap::new(),
            listeners_by_addr: BTreeMap::new(),
            listener_owner: BTreeMap::new(),
            endpoints: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_pid: 0,
            next_conn: 0,
            next_listener: 0,
            next_timer: 0,
            net_rng,
            metrics: Rc::new(RefCell::new(Metrics::new())),
            recorder: Rc::new(RefCell::new(obs::Recorder::new())),
            obs_kernel: false,
            trace: Vec::new(),
            events_processed: 0,
            wall_in_run: Duration::ZERO,
            partitions: BTreeSet::new(),
            parked: Vec::new(),
        }
    }

    /// Adds a node (host) and returns its id.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState {
            name: name.to_string(),
            alive: true,
        });
        id
    }

    /// Whether `node` exists and has not crashed.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes
            .get(node.0 as usize)
            .map(|n| n.alive)
            .unwrap_or(false)
    }

    /// Crashes `node`: every hosted process dies (peers observe EOF) and
    /// future connects and spawns targeting it fail until
    /// [`restart_node`](Self::restart_node).
    pub fn crash_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.0 as usize) {
            n.alive = false;
        }
        let victims: Vec<ProcessId> = self
            .procs
            .iter()
            .filter(|(_, s)| s.node == node && s.alive)
            .map(|(pid, _)| *pid)
            .collect();
        for pid in victims {
            self.terminate(pid, ExitReason::Crash("node crash".into()));
        }
    }

    /// Brings a crashed node back (empty: processes must be respawned).
    pub fn restart_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.0 as usize) {
            n.alive = true;
        }
    }

    fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Severs the link between `a` and `b` (link-partition fault). Segments
    /// that would arrive while the link is down — data, EOFs, connection
    /// handshakes — are parked, not dropped, and resume in order on
    /// [`heal`](Self::heal): the TCP retransmission view of a partition.
    /// Same-node traffic (loopback) cannot be partitioned.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        if a != b {
            self.partitions.insert(Self::link_key(a, b));
            self.metrics.borrow_mut().count("sim.partitions", 1);
            let (lo, hi) = Self::link_key(a, b);
            self.emit_kernel(NodeId(lo), obs::EventKind::Partition { a: lo, b: hi });
        }
    }

    /// Restores the link between `a` and `b`; parked traffic is released
    /// at the current simulated time in its original send order.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        if self.partitions.remove(&Self::link_key(a, b)) {
            let (lo, hi) = Self::link_key(a, b);
            self.emit_kernel(NodeId(lo), obs::EventKind::Heal { a: lo, b: hi });
            self.release_parked();
        }
    }

    /// Restores every severed link.
    pub fn heal_all(&mut self) {
        if !self.partitions.is_empty() {
            let cut = std::mem::take(&mut self.partitions);
            for (lo, hi) in cut {
                self.emit_kernel(NodeId(lo), obs::EventKind::Heal { a: lo, b: hi });
            }
            self.release_parked();
        }
    }

    /// Whether the link between `a` and `b` is currently severed.
    pub fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::link_key(a, b))
    }

    /// Replaces the message-loss model mid-run (loss-burst faults).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.cfg.loss = loss;
    }

    /// The node pair a network action crosses, if any (`None` for local
    /// actions and for endpoints that no longer exist).
    fn action_link(&self, action: &Action) -> Option<(NodeId, NodeId)> {
        let ep_link = |ep_id: &ConnId| {
            let ep = self.endpoints.get(ep_id)?;
            let owner_node = self.procs.get(&ep.owner)?.node;
            Some((owner_node, ep.remote_node))
        };
        match action {
            Action::ConnectAttempt { client_ep, addr } => {
                let ep = self.endpoints.get(client_ep)?;
                let owner_node = self.procs.get(&ep.owner)?.node;
                Some((owner_node, addr.node))
            }
            Action::ConnectResult { client_ep, .. } => ep_link(client_ep),
            Action::DeliverData { ep, .. } | Action::DeliverEof { ep } => ep_link(ep),
            _ => None,
        }
    }

    /// Re-queues parked actions whose links have healed, preserving their
    /// original sequence order (per-connection FIFO survives a partition).
    fn release_parked(&mut self) {
        let parked = std::mem::take(&mut self.parked);
        let mut freed = Vec::new();
        for sched in parked {
            let blocked = self
                .action_link(&sched.action)
                .map(|(a, b)| self.link_severed(a, b))
                .unwrap_or(false);
            if blocked {
                self.parked.push(sched);
            } else {
                freed.push(sched);
            }
        }
        freed.sort_by_key(|s| s.seq);
        for mut sched in freed {
            sched.at = sched.at.max(self.now);
            self.queue.push(sched);
        }
    }

    /// Spawns `proc` on `node`, starting after the configured launch
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or is crashed (a setup error).
    pub fn spawn(&mut self, node: NodeId, label: &str, proc: Box<dyn Process>) -> ProcessId {
        assert!(self.node_alive(node), "spawn on dead or unknown {node}");
        self.spawn_internal(node, label, proc)
    }

    fn spawn_internal(&mut self, node: NodeId, label: &str, proc: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        let rng = SimRng::for_process(self.cfg.seed, pid);
        let start_at = self.now + self.cfg.launch_latency;
        self.procs.insert(
            pid,
            ProcSlot {
                node,
                label: label.to_string(),
                proc: Some(proc),
                rng,
                busy_until: start_at,
                alive: true,
                started: false,
                conns: BTreeSet::new(),
                listeners: BTreeSet::new(),
                exit_requested: None,
            },
        );
        self.push(start_at, Action::StartProcess(pid));
        self.metrics.borrow_mut().count("sim.spawned", 1);
        self.recorder.borrow_mut().emit(
            self.now.as_nanos(),
            node.0,
            pid.0,
            obs::EventKind::Spawn {
                node: node.0,
                label: label.to_string(),
            },
        );
        pid
    }

    /// Kills `pid` immediately with `reason` (fault injection).
    pub fn kill_process(&mut self, pid: ProcessId, reason: &str) {
        self.terminate(pid, ExitReason::Crash(reason.to_string()));
    }

    /// Whether `pid` is still running.
    pub fn process_alive(&self, pid: ProcessId) -> bool {
        self.procs.get(&pid).map(|s| s.alive).unwrap_or(false)
    }

    /// The label `pid` was spawned with (empty if unknown).
    pub fn process_label(&self, pid: ProcessId) -> &str {
        self.procs.get(&pid).map(|s| s.label.as_str()).unwrap_or("")
    }

    /// Node hosting `pid`, if the process exists.
    pub fn process_node(&self, pid: ProcessId) -> Option<NodeId> {
        self.procs.get(&pid).map(|s| s.node)
    }

    /// Ids of all live processes, in spawn order (`BTreeMap` iteration is
    /// already pid-ordered, and pids are assigned in spawn order).
    pub fn live_processes(&self) -> Vec<ProcessId> {
        self.procs
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Wall-clock time spent dispatching events, summed over every
    /// [`run_until`](Self::run_until) call. Purely observational: it never
    /// feeds back into simulated time, so determinism is unaffected.
    pub fn wall_elapsed(&self) -> Duration {
        self.wall_in_run
    }

    /// Mean dispatch rate (events per wall-clock second) over the time
    /// spent inside [`run_until`](Self::run_until). 0.0 before any run.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_in_run.as_secs_f64();
        if secs > 0.0 {
            self.events_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// Shared handle to the metrics store (clone to keep after the run).
    pub fn metrics_handle(&self) -> Rc<RefCell<Metrics>> {
        Rc::clone(&self.metrics)
    }

    /// Shared handle to the observability recorder (clone to keep the
    /// trace after the run).
    pub fn recorder_handle(&self) -> Rc<RefCell<obs::Recorder>> {
        Rc::clone(&self.recorder)
    }

    /// Immutable snapshot accessor for the observability recorder.
    pub fn with_recorder<T>(&self, f: impl FnOnce(&obs::Recorder) -> T) -> T {
        f(&self.recorder.borrow())
    }

    /// Sets the trace verbosity, resetting the recorder. At
    /// [`obs::TraceLevel::Kernel`] every dispatched action is recorded;
    /// the default [`obs::TraceLevel::Recovery`] keeps only lifecycle and
    /// recovery-phase events. Call before the run starts: any events
    /// already recorded are discarded.
    pub fn set_trace_level(&mut self, level: obs::TraceLevel) {
        self.obs_kernel = level == obs::TraceLevel::Kernel;
        *self.recorder.borrow_mut() = obs::Recorder::with_level(level);
    }

    /// Emits a kernel-originated event (pid 0) into the trace.
    fn emit_kernel(&self, node: NodeId, kind: obs::EventKind) {
        self.recorder
            .borrow_mut()
            .emit(self.now.as_nanos(), node.0, 0, kind);
    }

    /// Immutable snapshot accessor for the metrics store.
    pub fn with_metrics<T>(&self, f: impl FnOnce(&Metrics) -> T) -> T {
        f(&self.metrics.borrow())
    }

    /// Retained trace lines (empty unless `cfg.trace` was set).
    pub fn trace_lines(&self) -> impl Iterator<Item = String> + '_ {
        self.trace
            .iter()
            .map(|(t, pid, msg)| format!("[{t}] {pid}: {msg}"))
    }

    /// Runs until the clock reaches `deadline`, the queue drains, or
    /// `event_limit` events have been dispatched.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_until_limited(deadline, u64::MAX)
    }

    /// [`run_until`](Self::run_until) with an explicit event budget, as a
    /// guard against runaway periodic behaviour in tests.
    // Wall-clock accounting only (events/sec reporting); the reading never
    // feeds back into simulated time. Suppressed in lint-allow.toml (R2)
    // and for clippy's disallowed-methods mirror of the same rule.
    #[allow(clippy::disallowed_methods)]
    pub fn run_until_limited(&mut self, deadline: SimTime, event_limit: u64) -> RunOutcome {
        let started = Instant::now();
        let outcome = self.dispatch_until(deadline, event_limit);
        self.wall_in_run += started.elapsed();
        outcome
    }

    fn dispatch_until(&mut self, deadline: SimTime, event_limit: u64) -> RunOutcome {
        let mut dispatched = 0u64;
        loop {
            if dispatched >= event_limit {
                return RunOutcome::EventLimit;
            }
            let Some(sched) = self.queue.pop() else {
                self.now = deadline.max(self.now);
                return RunOutcome::Idle;
            };
            if sched.at > deadline {
                // Not due yet: put it back (same (at, seq), so ordering is
                // unchanged) and stop at the deadline.
                self.queue.push(sched);
                self.now = deadline;
                return RunOutcome::DeadlineReached;
            }
            debug_assert!(sched.at >= self.now, "time went backwards");
            self.now = sched.at;
            self.events_processed += 1;
            dispatched += 1;
            // A severed link parks the action instead of delivering it;
            // heal() re-releases parked actions in send order.
            let severed = self
                .action_link(&sched.action)
                .map(|(a, b)| self.link_severed(a, b))
                .unwrap_or(false);
            if severed {
                self.parked.push(sched);
                continue;
            }
            if self.obs_kernel {
                let node = self
                    .action_link(&sched.action)
                    .map(|(a, _)| a)
                    .unwrap_or(NodeId(0));
                self.emit_kernel(
                    node,
                    obs::EventKind::Dispatch {
                        action: Self::action_name(&sched.action),
                    },
                );
            }
            self.handle(sched.action);
        }
    }

    /// Static name of an action variant, for `Dispatch` trace events.
    fn action_name(action: &Action) -> &'static str {
        match action {
            Action::StartProcess(_) => "start_process",
            Action::ConnectAttempt { .. } => "connect_attempt",
            Action::ConnectResult { .. } => "connect_result",
            Action::DeliverData { .. } => "deliver_data",
            Action::DeliverEof { .. } => "deliver_eof",
            Action::TimerFire { .. } => "timer_fire",
            Action::Notify { .. } => "notify",
        }
    }

    fn push(&mut self, at: SimTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, action });
    }

    fn handle(&mut self, action: Action) {
        match action {
            Action::StartProcess(pid) => self.dispatch(pid, None),
            Action::ConnectAttempt { client_ep, addr } => {
                self.handle_connect_attempt(client_ep, addr)
            }
            Action::ConnectResult { client_ep, ok } => self.handle_connect_result(client_ep, ok),
            Action::DeliverData { ep, data } => self.handle_deliver_data(ep, data),
            Action::DeliverEof { ep } => self.handle_deliver_eof(ep),
            Action::TimerFire { timer } => self.handle_timer_fire(timer),
            Action::Notify { pid, event } => self.notify(pid, event),
        }
    }

    fn handle_connect_attempt(&mut self, client_ep: ConnId, addr: Addr) {
        // The SYN has arrived at the target node. Check for a live listener.
        let accepting = if self.node_alive(addr.node) {
            self.listeners_by_addr.get(&addr).and_then(|lsn| {
                self.listener_owner
                    .get(lsn)
                    .filter(|(pid, _)| self.procs.get(pid).map(|s| s.alive).unwrap_or(false))
                    .map(|(pid, _)| (*lsn, *pid))
            })
        } else {
            None
        };
        // The initiating endpoint may have been closed or its owner killed
        // while the SYN was in flight.
        let client_alive = self
            .endpoints
            .get(&client_ep)
            .map(|ep| {
                ep.state == EpState::Connecting
                    && self.procs.get(&ep.owner).map(|s| s.alive).unwrap_or(false)
            })
            .unwrap_or(false);
        let client_node = self.endpoints.get(&client_ep).map(|ep| {
            self.procs
                .get(&ep.owner)
                .map(|s| s.node)
                .unwrap_or(NodeId(0))
        });
        // `client_alive` implies the endpoint exists, so `client_node` is
        // `Some` in the live arms; matching on it keeps that connection
        // panic-free instead of relying on an `expect`.
        match (accepting, client_alive, client_node) {
            (Some((lsn, server_pid)), true, Some(client_node)) => {
                let Some(server_node) = self.process_node(server_pid) else {
                    return; // listener owner vanished; nothing to accept
                };
                let server_ep = ConnId(self.next_conn);
                self.next_conn += 1;
                self.endpoints.insert(
                    server_ep,
                    Endpoint {
                        owner: server_pid,
                        peer: Some(client_ep),
                        state: EpState::Established,
                        recv: RecvQueue::new(),
                        peer_eof: false,
                        last_arrival: self.now,
                        tag: None,
                        remote_node: client_node,
                    },
                );
                if let Some(ep) = self.endpoints.get_mut(&client_ep) {
                    ep.peer = Some(server_ep);
                }
                if let Some(slot) = self.procs.get_mut(&server_pid) {
                    slot.conns.insert(server_ep);
                }
                self.enqueue_notify(
                    server_pid,
                    Event::Accepted {
                        listener: lsn,
                        conn: server_ep,
                        peer_node: client_node,
                    },
                );
                self.emit_kernel(
                    client_node,
                    obs::EventKind::ConnectOutcome {
                        to_node: addr.node.0,
                        port: addr.port.0,
                        ok: true,
                    },
                );
                // SYN-ACK travels back to the initiator.
                let back = self.sample_latency(server_node, client_node, 0);
                let at = self.now + back;
                self.push(
                    at,
                    Action::ConnectResult {
                        client_ep,
                        ok: true,
                    },
                );
            }
            (None, true, Some(client_node)) => {
                self.emit_kernel(
                    client_node,
                    obs::EventKind::ConnectOutcome {
                        to_node: addr.node.0,
                        port: addr.port.0,
                        ok: false,
                    },
                );
                let back = self.sample_latency(addr.node, client_node, 0);
                let at = self.now + back;
                self.push(
                    at,
                    Action::ConnectResult {
                        client_ep,
                        ok: false,
                    },
                );
            }
            _ => {
                // Initiator vanished (or its endpoint is already gone): if
                // a server endpoint would have been created we simply never
                // create it; nothing to do.
            }
        }
    }

    fn handle_connect_result(&mut self, client_ep: ConnId, ok: bool) {
        let Some(ep) = self.endpoints.get_mut(&client_ep) else {
            return;
        };
        if ep.state != EpState::Connecting {
            return; // closed while connecting
        }
        let owner = ep.owner;
        if ok {
            ep.state = EpState::Established;
            self.enqueue_notify(owner, Event::ConnEstablished { conn: client_ep });
        } else {
            ep.state = EpState::ClosedLocal;
            if let Some(slot) = self.procs.get_mut(&owner) {
                slot.conns.remove(&client_ep);
            }
            self.enqueue_notify(owner, Event::ConnRefused { conn: client_ep });
        }
    }

    fn handle_deliver_data(&mut self, ep_id: ConnId, data: Bytes) {
        let Some(ep) = self.endpoints.get_mut(&ep_id) else {
            return;
        };
        if ep.state == EpState::ClosedLocal {
            return; // receiver closed; bytes fall on the floor
        }
        let owner = ep.owner;
        if !self.procs.get(&owner).map(|s| s.alive).unwrap_or(false) {
            return;
        }
        ep.recv.push(data);
        self.enqueue_notify(owner, Event::DataReadable { conn: ep_id });
    }

    fn handle_deliver_eof(&mut self, ep_id: ConnId) {
        let Some(ep) = self.endpoints.get_mut(&ep_id) else {
            return;
        };
        if ep.state == EpState::ClosedLocal || ep.peer_eof {
            return;
        }
        ep.peer_eof = true;
        let owner = ep.owner;
        if self.procs.get(&owner).map(|s| s.alive).unwrap_or(false) {
            self.enqueue_notify(owner, Event::PeerClosed { conn: ep_id });
        }
    }

    fn handle_timer_fire(&mut self, timer: TimerId) {
        let Some(ts) = self.timers.remove(&timer) else {
            return;
        };
        if ts.cancelled {
            return;
        }
        if self.procs.get(&ts.pid).map(|s| s.alive).unwrap_or(false) {
            self.enqueue_notify(
                ts.pid,
                Event::TimerFired {
                    timer,
                    token: ts.token,
                },
            );
        }
    }

    /// Delivers `event` to `pid` now if it is idle, or at its `busy_until`
    /// otherwise (modelling a single-threaded process working through its
    /// backlog).
    fn enqueue_notify(&mut self, pid: ProcessId, event: Event) {
        let Some(slot) = self.procs.get(&pid) else {
            return;
        };
        if !slot.alive {
            return;
        }
        if slot.busy_until > self.now {
            let at = slot.busy_until;
            self.push(at, Action::Notify { pid, event });
        } else {
            self.dispatch(pid, Some(event));
        }
    }

    fn notify(&mut self, pid: ProcessId, event: Event) {
        // Re-check busyness: the process may have become busy again since
        // this notification was queued.
        let Some(slot) = self.procs.get(&pid) else {
            return;
        };
        if !slot.alive {
            return;
        }
        if slot.busy_until > self.now {
            let at = slot.busy_until;
            self.push(at, Action::Notify { pid, event });
        } else {
            self.dispatch(pid, Some(event));
        }
    }

    /// Runs one handler: `on_start` when `event` is `None`, else `on_event`.
    fn dispatch(&mut self, pid: ProcessId, event: Option<Event>) {
        let Some(slot) = self.procs.get_mut(&pid) else {
            return;
        };
        if !slot.alive {
            return;
        }
        let Some(mut proc) = slot.proc.take() else {
            return; // re-entrant dispatch cannot happen; defensive
        };
        match &event {
            None => slot.started = true,
            Some(_) if !slot.started => {
                // Event raced ahead of on_start (should not happen since
                // busy_until covers launch, but be safe): requeue.
                let at = slot.busy_until;
                slot.proc = Some(proc);
                if let Some(ev) = event {
                    self.push(at, Action::Notify { pid, event: ev });
                }
                return;
            }
            _ => {}
        }
        {
            let mut ctx = Ctx { sim: self, pid };
            match event {
                None => proc.on_start(&mut ctx),
                Some(ev) => proc.on_event(&mut ctx, ev),
            }
        }
        // Slots are never removed from `procs` (only marked dead), so the
        // slot is still there after the handler ran; stay panic-free anyway.
        let exit = match self.procs.get_mut(&pid) {
            Some(slot) => {
                slot.proc = Some(proc);
                slot.exit_requested.take()
            }
            None => None,
        };
        if let Some(reason) = exit {
            self.terminate(pid, reason);
        }
    }

    fn terminate(&mut self, pid: ProcessId, reason: ExitReason) {
        let Some(slot) = self.procs.get_mut(&pid) else {
            return;
        };
        if !slot.alive {
            return;
        }
        slot.alive = false;
        slot.proc = None;
        // BTreeSet iteration is id-ordered, giving a deterministic EOF
        // order without an explicit sort.
        let conns = std::mem::take(&mut slot.conns);
        let listeners = std::mem::take(&mut slot.listeners);
        let label = slot.label.clone();
        for lsn in listeners {
            if let Some((_, addr)) = self.listener_owner.remove(&lsn) {
                self.listeners_by_addr.remove(&addr);
            }
        }
        for c in conns {
            self.close_endpoint(c);
        }
        let mut m = self.metrics.borrow_mut();
        match &reason {
            ExitReason::Graceful => m.count("sim.exit.graceful", 1),
            ExitReason::Crash(_) => m.count("sim.exit.crash", 1),
        }
        drop(m);
        let node = self.procs.get(&pid).map(|s| s.node).unwrap_or(NodeId(0));
        self.recorder.borrow_mut().emit(
            self.now.as_nanos(),
            node.0,
            pid.0,
            obs::EventKind::Exit {
                crashed: matches!(reason, ExitReason::Crash(_)),
            },
        );
        if self.cfg.trace {
            self.trace
                .push((self.now, pid, format!("{label} terminated: {reason:?}")));
        }
    }

    /// Closes `ep_id` from the owner side: schedules EOF at the peer after
    /// any in-flight data.
    fn close_endpoint(&mut self, ep_id: ConnId) {
        let Some(ep) = self.endpoints.get_mut(&ep_id) else {
            return;
        };
        if ep.state == EpState::ClosedLocal {
            return;
        }
        let was_connecting = ep.state == EpState::Connecting;
        ep.state = EpState::ClosedLocal;
        ep.recv.clear();
        let peer = ep.peer;
        let remote = ep.remote_node;
        if was_connecting {
            return; // handshake will fizzle in handle_connect_*
        }
        if let Some(peer_id) = peer {
            let owner_node = self
                .endpoints
                .get(&peer_id)
                .map(|p| p.remote_node)
                .unwrap_or(remote);
            let lat = self.sample_latency(owner_node, remote, 0);
            let arrival = self.fifo_arrival(peer_id, self.now + lat);
            self.push(arrival, Action::DeliverEof { ep: peer_id });
        }
    }

    /// Enforces per-connection FIFO: a segment may not arrive before one
    /// scheduled earlier.
    fn fifo_arrival(&mut self, ep_id: ConnId, proposed: SimTime) -> SimTime {
        let Some(ep) = self.endpoints.get_mut(&ep_id) else {
            return proposed;
        };
        let arrival = proposed.max(ep.last_arrival);
        ep.last_arrival = arrival;
        arrival
    }

    fn sample_latency(&mut self, src: NodeId, dst: NodeId, len: usize) -> SimDuration {
        let base = self.cfg.latency.sample(&mut self.net_rng, src, dst, len);
        let noise = self.cfg.noise.sample(&mut self.net_rng);
        let loss = self.cfg.loss.sample(&mut self.net_rng);
        base + noise + loss
    }
}

/// The kernel-backed [`SysApi`] implementation handed to processes.
struct Ctx<'a> {
    sim: &'a mut Simulation,
    pid: ProcessId,
}

impl Ctx<'_> {
    fn slot(&self) -> &ProcSlot {
        self.sim.procs.get(&self.pid).expect("own slot exists")
    }
    fn slot_mut(&mut self) -> &mut ProcSlot {
        self.sim.procs.get_mut(&self.pid).expect("own slot exists")
    }
}

impl SysApi for Ctx<'_> {
    fn now(&self) -> SimTime {
        self.sim.now
    }

    fn my_node(&self) -> NodeId {
        self.slot().node
    }

    fn my_pid(&self) -> ProcessId {
        self.pid
    }

    fn listen(&mut self, port: Port) -> Result<ListenerId, SysError> {
        let node = self.slot().node;
        let addr = Addr::new(node, port);
        if self.sim.listeners_by_addr.contains_key(&addr) {
            return Err(SysError::PortInUse(port));
        }
        let lsn = ListenerId(self.sim.next_listener);
        self.sim.next_listener += 1;
        self.sim.listeners_by_addr.insert(addr, lsn);
        self.sim.listener_owner.insert(lsn, (self.pid, addr));
        self.slot_mut().listeners.insert(lsn);
        Ok(lsn)
    }

    fn unlisten(&mut self, listener: ListenerId) {
        if let Some((owner, addr)) = self.sim.listener_owner.get(&listener).copied() {
            if owner == self.pid {
                self.sim.listener_owner.remove(&listener);
                self.sim.listeners_by_addr.remove(&addr);
                self.slot_mut().listeners.remove(&listener);
            }
        }
    }

    fn connect(&mut self, addr: Addr) -> ConnId {
        let node = self.slot().node;
        let ep_id = ConnId(self.sim.next_conn);
        self.sim.next_conn += 1;
        self.sim.endpoints.insert(
            ep_id,
            Endpoint {
                owner: self.pid,
                peer: None,
                state: EpState::Connecting,
                recv: RecvQueue::new(),
                peer_eof: false,
                last_arrival: self.sim.now,
                tag: None,
                remote_node: addr.node,
            },
        );
        self.slot_mut().conns.insert(ep_id);
        self.emit(obs::EventKind::ConnectAttempt {
            to_node: addr.node.0,
            port: addr.port.0,
        });
        let send_at = self.sim.now.max(self.slot().busy_until);
        let lat = self.sim.sample_latency(node, addr.node, 0);
        self.sim.push(
            send_at + lat,
            Action::ConnectAttempt {
                client_ep: ep_id,
                addr,
            },
        );
        ep_id
    }

    fn write(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), SysError> {
        let now = self.sim.now;
        let busy_until = self.slot().busy_until;
        let src_node = self.slot().node;
        let ep = self
            .sim
            .endpoints
            .get(&conn)
            .ok_or(SysError::UnknownConn(conn))?;
        if ep.owner != self.pid {
            return Err(SysError::UnknownConn(conn));
        }
        match ep.state {
            EpState::Connecting => return Err(SysError::NotEstablished(conn)),
            EpState::ClosedLocal => return Err(SysError::ClosedLocally(conn)),
            EpState::Established => {}
        }
        if ep.peer_eof {
            return Err(SysError::PeerClosed(conn));
        }
        let peer_id = ep.peer.ok_or(SysError::NotEstablished(conn))?;
        let dst_node = ep.remote_node;
        let tag = ep.tag;
        let depart = now.max(busy_until);
        if let Some(tag) = tag {
            self.sim
                .metrics
                .borrow_mut()
                .record_bytes(tag, depart, bytes.len() as u64);
        }
        // Is the peer still able to receive? If its process is dead the
        // bytes are silently lost (the EOF races them).
        let lat = self.sim.sample_latency(src_node, dst_node, bytes.len());
        let arrival = self.sim.fifo_arrival(peer_id, depart + lat);
        self.sim.push(
            arrival,
            Action::DeliverData {
                ep: peer_id,
                data: Bytes::copy_from_slice(bytes),
            },
        );
        Ok(())
    }

    fn read(&mut self, conn: ConnId, max: usize) -> Result<ReadOutcome, SysError> {
        let ep = self
            .sim
            .endpoints
            .get_mut(&conn)
            .ok_or(SysError::UnknownConn(conn))?;
        if ep.owner != self.pid {
            return Err(SysError::UnknownConn(conn));
        }
        if ep.state == EpState::ClosedLocal {
            return Err(SysError::ClosedLocally(conn));
        }
        let data = ep.recv.read(max);
        let eof = ep.recv.is_empty() && ep.peer_eof;
        Ok(ReadOutcome { data, eof })
    }

    fn close(&mut self, conn: ConnId) {
        let owns = self
            .sim
            .endpoints
            .get(&conn)
            .map(|ep| ep.owner == self.pid)
            .unwrap_or(false);
        if !owns {
            return;
        }
        self.slot_mut().conns.remove(&conn);
        self.sim.close_endpoint(conn);
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        let timer = TimerId(self.sim.next_timer);
        self.sim.next_timer += 1;
        self.sim.timers.insert(
            timer,
            TimerState {
                pid: self.pid,
                token,
                cancelled: false,
            },
        );
        let at = self.sim.now + after;
        self.sim.push(at, Action::TimerFire { timer });
        timer
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        if let Some(ts) = self.sim.timers.get_mut(&timer) {
            if ts.pid == self.pid {
                ts.cancelled = true;
            }
        }
    }

    fn spawn(
        &mut self,
        node: NodeId,
        name: &str,
        factory: ProcessFactory,
    ) -> Result<ProcessId, SysError> {
        if !self.sim.node_alive(node) {
            return Err(SysError::NoSuchTarget);
        }
        Ok(self.sim.spawn_internal(node, name, factory()))
    }

    fn exit(&mut self, reason: ExitReason) {
        self.slot_mut().exit_requested = Some(reason);
    }

    fn charge_cpu(&mut self, cost: SimDuration) {
        let now = self.sim.now;
        let slot = self.slot_mut();
        slot.busy_until = slot.busy_until.max(now) + cost;
    }

    fn rng(&mut self) -> &mut SimRng {
        &mut self.slot_mut().rng
    }

    fn tag_conn(&mut self, conn: ConnId, tag: &'static str) {
        if let Some(ep) = self.sim.endpoints.get_mut(&conn) {
            if ep.owner == self.pid {
                ep.tag = Some(tag);
            }
        }
    }

    fn count(&mut self, counter: &'static str, delta: u64) {
        self.sim.metrics.borrow_mut().count(counter, delta);
    }

    fn mark(&mut self, series: &'static str) {
        let now = self.sim.now;
        self.sim.metrics.borrow_mut().record_bytes(series, now, 1);
    }

    fn trace(&mut self, message: &str) {
        if self.sim.cfg.trace {
            self.sim
                .trace
                .push((self.sim.now, self.pid, message.to_string()));
        }
    }

    fn emit(&mut self, kind: obs::EventKind) {
        let node = self.slot().node;
        self.sim
            .recorder
            .borrow_mut()
            .emit(self.sim.now.as_nanos(), node.0, self.pid.0, kind);
    }
}
