//! The discrete-event simulation kernel.
//!
//! [`Simulation`] owns the clock, the event queue, all nodes, processes,
//! connections and timers, and drives [`Process`] state machines. It is
//! single-threaded and fully deterministic: two runs with the same
//! [`SimConfig`] (including the seed) produce identical event sequences.
//! This mirrors the paper's deliberate avoidance of multithreading in the
//! interceptor, which "sometimes led to nondeterministic behavior at the
//! client" (section 3.1).
//!
//! # Transport semantics
//!
//! Connections are reliable, ordered byte streams modelled on TCP:
//!
//! * `connect` performs a two-trip handshake ([`Event::Accepted`] at the
//!   listener after one one-way latency, [`Event::ConnEstablished`] at the
//!   initiator after two);
//! * connecting to a port with no live listener yields
//!   [`Event::ConnRefused`] (how stale IORs manifest as `TRANSIENT`
//!   exceptions);
//! * a local `close` — or process death — delivers EOF
//!   ([`Event::PeerClosed`]) to the peer after in-flight data (how crashed
//!   replicas manifest as `COMM_FAILURE` exceptions);
//! * per-connection FIFO order is preserved even under latency jitter.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::mem;
use std::rc::Rc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::SysError;
use crate::ids::{Addr, ConnId, ListenerId, NodeId, Port, ProcessId, TimerId};
use crate::latency::{LatencyModel, LossModel, NoiseModel};
use crate::metrics::Metrics;
use crate::process::{Event, ExitReason, Process, ProcessFactory, ReadOutcome, SysApi};
use crate::recv_queue::RecvQueue;
use crate::rng::SimRng;
use crate::sched::{self, FifoScheduler, Scheduler};
use crate::table::{IdTable, Slab, SlotKey};
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimingWheel;

/// Configuration for a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// One-way link latency model.
    pub latency: LatencyModel,
    /// OS-hiccup noise model (section 5.2.5 spikes).
    pub noise: NoiseModel,
    /// Message-loss model (fault model: message-loss faults).
    pub loss: LossModel,
    /// Delay between `spawn` and the new process's `on_start` — models
    /// fork/exec plus ORB initialisation of a relaunched replica.
    pub launch_latency: SimDuration,
    /// When `true`, [`SysApi::trace`] lines are retained and retrievable
    /// via [`Simulation::trace_lines`].
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            latency: LatencyModel::default(),
            noise: NoiseModel::default(),
            loss: LossModel::none(),
            launch_latency: SimDuration::from_millis(30),
            trace: false,
        }
    }
}

/// Why [`Simulation::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The clock reached the requested deadline.
    DeadlineReached,
    /// The event queue drained before the deadline.
    Idle,
    /// The configured event budget was exhausted (runaway guard).
    EventLimit,
}

#[derive(Debug)]
enum Action {
    StartProcess(ProcessId),
    ConnectAttempt {
        client_ep: ConnId,
        addr: Addr,
    },
    ConnectResult {
        client_ep: ConnId,
        ok: bool,
    },
    DeliverData {
        ep: ConnId,
        data: Bytes,
    },
    DeliverEof {
        ep: ConnId,
    },
    TimerFire {
        timer: TimerId,
    },
    Notify {
        pid: ProcessId,
        event: Event,
    },
    /// A coalesced run of parked notifies for one process: `events[i]`
    /// owns sequence number `first_seq + i`, where `first_seq` is the
    /// wheel key the batch is scheduled under. Built by the bounce
    /// accumulator ([`Simulation::bounce`]) whenever a requeue wave
    /// targets one `(pid, busy_until)` with consecutive sequence numbers,
    /// so a busy destination re-bounces the whole wave in O(1) instead of
    /// O(wave size).
    NotifyBatch {
        pid: ProcessId,
        events: VecDeque<Event>,
    },
}

/// An open bounce accumulator: parked notifies bound for one
/// `(pid, at)` destination whose sequence numbers run consecutively from
/// `first_seq`. Lives outside the wheel until some other push needs a
/// sequence number (breaking the consecutive run) or the clock is about
/// to reach `at` — see [`Simulation::flush_bounce`].
struct PendingBounce {
    pid: ProcessId,
    at: SimTime,
    first_seq: u64,
    events: VecDeque<Event>,
}

/// A queued action with its full scheduling key; the event queue itself
/// (a [`TimingWheel`]) stores the `(at, seq)` pair unpacked, so this
/// struct only survives in the partition parking lot.
struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EpState {
    Connecting,
    Established,
    ClosedLocal,
}

struct Endpoint {
    owner: ProcessId,
    peer: Option<ConnId>,
    state: EpState,
    recv: RecvQueue,
    peer_eof: bool,
    /// Latest scheduled arrival at this endpoint, for FIFO enforcement.
    last_arrival: SimTime,
    tag: Option<&'static str>,
    remote_node: NodeId,
}

struct TimerState {
    pid: ProcessId,
    token: u64,
    cancelled: bool,
}

struct NodeState {
    #[allow(dead_code)]
    name: String,
    alive: bool,
}

/// The part of a process that outlives it: identity queries
/// (`process_node`, `process_label`, `process_alive`) and trace emission
/// must keep answering for dead pids, so this record is never removed.
/// Indexed directly by `ProcessId` (pids are issued densely in spawn
/// order).
struct ProcMeta {
    node: NodeId,
    label: String,
    alive: bool,
    /// Single-threaded-process backlog horizon. Kept here rather than in
    /// [`ProcLive`] so the notify hot path (busy? requeue at this time)
    /// answers from one dense pid-indexed load without touching the slab.
    busy_until: SimTime,
    /// Slab slot holding the live half; stale (generation-checked) once
    /// the process terminates.
    live: SlotKey,
}

/// The part of a process that dies with it, stored in a recycled slab
/// slot: the boxed state machine, its RNG, scheduling state and resource
/// ownership sets.
struct ProcLive {
    proc: Option<Box<dyn Process>>,
    rng: SimRng,
    started: bool,
    conns: BTreeSet<ConnId>,
    listeners: BTreeSet<ListenerId>,
    exit_requested: Option<ExitReason>,
}

/// Storage-layout counters of the kernel tables (DESIGN §11), exposing
/// slab recycling to tests: slot counts stay bounded by peak concurrency
/// while the issued-id counts grow monotonically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Processes ever spawned (dense pid space).
    pub processes_spawned: u64,
    /// Processes currently alive.
    pub live_processes: u64,
    /// Physical slab slots backing live process state.
    pub proc_slots: u64,
    /// Timer ids ever issued.
    pub timers_issued: u64,
    /// Physical slab slots backing pending timers.
    pub timer_slots: u64,
    /// Listener ids ever issued.
    pub listeners_issued: u64,
    /// Physical slab slots backing open listeners.
    pub listener_slots: u64,
    /// Connection endpoints ever created (endpoints are never removed —
    /// closed ones keep answering state queries, as on the old kernel).
    pub endpoints: u64,
    /// Events currently pending in the timing wheel.
    pub pending_events: u64,
}

/// The deterministic discrete-event simulator.
///
/// ```
/// use simnet::{SimConfig, Simulation, SimTime};
///
/// let mut sim = Simulation::new(SimConfig::default());
/// let node = sim.add_node("host-a");
/// assert_eq!(sim.now(), SimTime::ZERO);
/// assert!(sim.node_alive(node));
/// ```
pub struct Simulation {
    cfg: SimConfig,
    now: SimTime,
    seq: u64,
    queue: TimingWheel<Action>,
    nodes: Vec<NodeState>,
    // Kernel tables are keyed by the dense, monotonic ids in `ids.rs` and
    // backed by indexed storage (DESIGN §11): plain vectors where entries
    // are never removed, generation-tagged slabs where they are. All
    // iteration (crash_node, live_processes, terminate) walks dense id
    // order, so determinism does not rest on map iteration order — the
    // detlint R1 rule still guards against seeded-hash containers.
    /// Per-pid identity records, never removed; `ProcessId` indexes
    /// directly.
    procs: Vec<ProcMeta>,
    /// Live process state, recycled on termination.
    proc_slab: Slab<ProcLive>,
    /// Per-node listener directory, sorted by port (few listeners per
    /// node; binary search beats a global ordered map).
    node_listeners: Vec<Vec<(Port, ListenerId)>>,
    /// Listener id → (owner, address); recycled on unlisten/terminate.
    listeners: IdTable<(ProcessId, Addr)>,
    /// Connection endpoints, indexed by `ConnId`; never removed (closed
    /// endpoints keep answering `write`/`close` state queries).
    endpoints: Vec<Endpoint>,
    /// Timer id → state; recycled when the timer fires.
    timers: IdTable<TimerState>,
    net_rng: SimRng,
    metrics: Rc<RefCell<Metrics>>,
    recorder: Rc<RefCell<obs::Recorder>>,
    /// Mirror of the recorder's level so the per-dispatch hot path can
    /// skip the `RefCell` borrow entirely at the default level.
    obs_kernel: bool,
    trace: Vec<(SimTime, ProcessId, String)>,
    events_processed: u64,
    wall_in_run: Duration,
    /// Severed node pairs (normalised lower-index first). Network actions
    /// crossing a severed link park in `parked` until the link heals.
    partitions: BTreeSet<(u32, u32)>,
    /// Actions stashed at their would-be arrival because the link was
    /// down; re-released (in original sequence order) on heal.
    parked: Vec<Scheduled>,
    /// Directed severed links `(from, to)`: traffic travelling from →
    /// to parks, the reverse direction flows normally (asymmetric
    /// partition faults).
    oneway_cuts: BTreeSet<(u32, u32)>,
    /// Per-link extra jitter bound (normalised pair): while present, each
    /// delivery crossing the link draws one extra uniform delay in
    /// `[0, bound]` from the kernel RNG (jittery-link faults). Links
    /// without an entry draw nothing, so configuring jitter on one link
    /// cannot perturb the RNG stream of unrelated scenarios.
    link_jitter: BTreeMap<(u32, u32), SimDuration>,
    /// Open bounce accumulator (see [`Self::bounce`]); `None` when no
    /// coalescible notify run is in flight.
    pending_bounce: Option<PendingBounce>,
    /// Recycled backing storage for drained batches, so scenarios with no
    /// storms never allocate per singleton bounce.
    bounce_spare: VecDeque<Event>,
    /// Logical events folded inside queued [`Action::NotifyBatch`]
    /// entries (batch length − 1 each), so
    /// [`KernelStats::pending_events`] keeps counting individual events.
    batched_extra: u64,
    /// The event-ordering policy (DESIGN §13). [`FifoScheduler`] keeps
    /// the kernel on its historical dispatch loop; anything else routes
    /// same-window ties through [`sched::ChoicePoint`]s.
    scheduler: Box<dyn Scheduler>,
    /// Cached `scheduler.is_fifo()`, checked once per `run_until` rather
    /// than through the vtable on the dispatch hot path.
    sched_fifo: bool,
    /// Choice points surfaced so far (multi-candidate pools only).
    sched_steps: u64,
}

impl Simulation {
    /// Creates an empty simulation under the default
    /// [`FifoScheduler`] — shorthand for
    /// [`with_scheduler`](Self::with_scheduler) with the historical
    /// `(at, seq)` dispatch order.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation::with_scheduler(cfg, Box::new(FifoScheduler))
    }

    /// Creates an empty simulation driven by `scheduler` — the single
    /// construction path (DESIGN §13). The default [`FifoScheduler`]
    /// reproduces the kernel's historical total order bit for bit; any
    /// other scheduler is offered a [`sched::ChoicePoint`] whenever
    /// several queued events are due within its reorder window.
    pub fn with_scheduler(cfg: SimConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let sched_fifo = scheduler.is_fifo();
        let net_rng = SimRng::for_kernel(cfg.seed, 1);
        Simulation {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            queue: TimingWheel::new(),
            nodes: Vec::new(),
            procs: Vec::new(),
            proc_slab: Slab::new(),
            node_listeners: Vec::new(),
            listeners: IdTable::new(),
            endpoints: Vec::new(),
            timers: IdTable::new(),
            net_rng,
            metrics: Rc::new(RefCell::new(Metrics::new())),
            recorder: Rc::new(RefCell::new(obs::Recorder::new())),
            obs_kernel: false,
            trace: Vec::new(),
            events_processed: 0,
            wall_in_run: Duration::ZERO,
            partitions: BTreeSet::new(),
            parked: Vec::new(),
            oneway_cuts: BTreeSet::new(),
            link_jitter: BTreeMap::new(),
            pending_bounce: None,
            bounce_spare: VecDeque::new(),
            batched_extra: 0,
            scheduler,
            sched_fifo,
            sched_steps: 0,
        }
    }

    /// Choice points surfaced to the scheduler so far (always 0 under
    /// the default [`FifoScheduler`]).
    pub fn choice_points(&self) -> u64 {
        self.sched_steps
    }

    /// Adds a node (host) and returns its id.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState {
            name: name.to_string(),
            alive: true,
        });
        self.node_listeners.push(Vec::new());
        id
    }

    /// Identity record for `pid` (kept after death).
    fn meta(&self, pid: ProcessId) -> Option<&ProcMeta> {
        self.procs.get(pid.0 as usize)
    }

    /// Live state for `pid`; `None` once it terminated (the slab slot is
    /// recycled and the stale key fails its generation check anyway).
    fn live_mut(&mut self, pid: ProcessId) -> Option<&mut ProcLive> {
        let meta = self.procs.get(pid.0 as usize)?;
        if !meta.alive {
            return None;
        }
        self.proc_slab.get_mut(meta.live)
    }

    fn endpoint(&self, id: ConnId) -> Option<&Endpoint> {
        self.endpoints.get(id.0 as usize)
    }

    fn endpoint_mut(&mut self, id: ConnId) -> Option<&mut Endpoint> {
        self.endpoints.get_mut(id.0 as usize)
    }

    /// The listener bound to `addr`, if any.
    fn listener_at(&self, addr: Addr) -> Option<ListenerId> {
        let by_port = self.node_listeners.get(addr.node.0 as usize)?;
        let pos = by_port.binary_search_by_key(&addr.port, |&(p, _)| p).ok()?;
        by_port.get(pos).map(|&(_, lsn)| lsn)
    }

    /// Drops the `addr` → listener binding (the id itself stays issued).
    fn unbind_listener_addr(&mut self, addr: Addr) {
        if let Some(by_port) = self.node_listeners.get_mut(addr.node.0 as usize) {
            if let Ok(pos) = by_port.binary_search_by_key(&addr.port, |&(p, _)| p) {
                by_port.remove(pos);
            }
        }
    }

    /// Storage-layout counters for the kernel tables (DESIGN §11).
    pub fn kernel_stats(&self) -> KernelStats {
        KernelStats {
            processes_spawned: self.procs.len() as u64,
            live_processes: self.proc_slab.len() as u64,
            proc_slots: self.proc_slab.slot_count() as u64,
            timers_issued: self.timers.ids_issued(),
            timer_slots: self.timers.slot_count() as u64,
            listeners_issued: self.listeners.ids_issued(),
            listener_slots: self.listeners.slot_count() as u64,
            endpoints: self.endpoints.len() as u64,
            pending_events: self.queue.len() as u64
                + self.batched_extra
                + self
                    .pending_bounce
                    .as_ref()
                    .map(|p| p.events.len() as u64)
                    .unwrap_or(0),
        }
    }

    /// Whether `node` exists and has not crashed.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes
            .get(node.0 as usize)
            .map(|n| n.alive)
            .unwrap_or(false)
    }

    /// Crashes `node`: every hosted process dies (peers observe EOF) and
    /// future connects and spawns targeting it fail until
    /// [`restart_node`](Self::restart_node).
    pub fn crash_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.0 as usize) {
            n.alive = false;
        }
        let victims: Vec<ProcessId> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, m)| m.node == node && m.alive)
            .map(|(pid, _)| ProcessId(pid as u64))
            .collect();
        for pid in victims {
            self.terminate(pid, ExitReason::Crash("node crash".into()));
        }
    }

    /// Brings a crashed node back (empty: processes must be respawned).
    pub fn restart_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(node.0 as usize) {
            n.alive = true;
        }
    }

    fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Severs the link between `a` and `b` (link-partition fault). Segments
    /// that would arrive while the link is down — data, EOFs, connection
    /// handshakes — are parked, not dropped, and resume in order on
    /// [`heal`](Self::heal): the TCP retransmission view of a partition.
    /// Same-node traffic (loopback) cannot be partitioned.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        if a != b {
            self.partitions.insert(Self::link_key(a, b));
            self.metrics.borrow_mut().count("sim.partitions", 1);
            let (lo, hi) = Self::link_key(a, b);
            self.emit_kernel(NodeId(lo), obs::EventKind::Partition { a: lo, b: hi });
        }
    }

    /// Restores the link between `a` and `b`; parked traffic is released
    /// at the current simulated time in its original send order.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        if self.partitions.remove(&Self::link_key(a, b)) {
            let (lo, hi) = Self::link_key(a, b);
            self.emit_kernel(NodeId(lo), obs::EventKind::Heal { a: lo, b: hi });
            self.release_parked();
        }
    }

    /// Restores every severed link, symmetric and directional.
    pub fn heal_all(&mut self) {
        let had_cuts = !self.partitions.is_empty() || !self.oneway_cuts.is_empty();
        let cut = std::mem::take(&mut self.partitions);
        for (lo, hi) in cut {
            self.emit_kernel(NodeId(lo), obs::EventKind::Heal { a: lo, b: hi });
        }
        let oneway = std::mem::take(&mut self.oneway_cuts);
        for (from, to) in oneway {
            self.emit_kernel(NodeId(from), obs::EventKind::HealOneway { from, to });
        }
        if had_cuts {
            self.release_parked();
        }
    }

    /// Severs only the `from` → `to` direction of a link (asymmetric
    /// partition fault): segments travelling that way park until
    /// [`heal_oneway`](Self::heal_oneway), while replies keep flowing the
    /// other way — the classic half-open failure TCP keep-alives exist
    /// for. Loopback traffic cannot be cut.
    pub fn partition_oneway(&mut self, from: NodeId, to: NodeId) {
        if from != to && self.oneway_cuts.insert((from.0, to.0)) {
            self.metrics.borrow_mut().count("sim.partitions_oneway", 1);
            self.emit_kernel(
                from,
                obs::EventKind::PartitionOneway {
                    from: from.0,
                    to: to.0,
                },
            );
        }
    }

    /// Restores the `from` → `to` direction; parked traffic is released
    /// at the current simulated time in its original send order.
    pub fn heal_oneway(&mut self, from: NodeId, to: NodeId) {
        if self.oneway_cuts.remove(&(from.0, to.0)) {
            self.emit_kernel(
                from,
                obs::EventKind::HealOneway {
                    from: from.0,
                    to: to.0,
                },
            );
            self.release_parked();
        }
    }

    /// Whether the link between `a` and `b` is currently severed.
    pub fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::link_key(a, b))
    }

    /// Whether traffic travelling `from` → `to` is currently blocked,
    /// either by a symmetric partition or a directional cut.
    pub fn link_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.partitions.contains(&Self::link_key(from, to))
            || self.oneway_cuts.contains(&(from.0, to.0))
    }

    /// Sets (or, with [`SimDuration::ZERO`], clears) the extra per-message
    /// jitter bound on the `a` ↔ `b` link. While set, every delivery
    /// crossing the link draws one additional uniform delay in
    /// `[0, bound]` from the seeded kernel RNG — a jittery link rather
    /// than a severed one. Per-connection FIFO order is still enforced
    /// downstream by [`fifo_arrival`](Self::fifo_arrival).
    pub fn set_link_jitter(&mut self, a: NodeId, b: NodeId, bound: SimDuration) {
        if a == b {
            return;
        }
        let key = Self::link_key(a, b);
        let changed = if bound.is_zero() {
            self.link_jitter.remove(&key).is_some()
        } else {
            self.link_jitter.insert(key, bound) != Some(bound)
        };
        if changed {
            self.metrics.borrow_mut().count("sim.link_jitter_set", 1);
            self.emit_kernel(
                NodeId(key.0),
                obs::EventKind::LinkJitter {
                    a: key.0,
                    b: key.1,
                    bound_ns: bound.as_nanos(),
                },
            );
        }
    }

    /// Replaces the message-loss model mid-run (loss-burst faults).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.cfg.loss = loss;
    }

    /// The node pair a network action crosses, if any (`None` for local
    /// actions and for endpoints that no longer exist).
    fn action_link(&self, action: &Action) -> Option<(NodeId, NodeId)> {
        let ep_link = |ep_id: &ConnId| {
            let ep = self.endpoint(*ep_id)?;
            let owner_node = self.meta(ep.owner)?.node;
            Some((owner_node, ep.remote_node))
        };
        match action {
            Action::ConnectAttempt { client_ep, addr } => {
                let ep = self.endpoint(*client_ep)?;
                let owner_node = self.meta(ep.owner)?.node;
                Some((owner_node, addr.node))
            }
            Action::ConnectResult { client_ep, .. } => ep_link(client_ep),
            Action::DeliverData { ep, .. } | Action::DeliverEof { ep } => ep_link(ep),
            _ => None,
        }
    }

    /// The direction a network action travels, as `(src, dst)` nodes —
    /// unlike [`action_link`](Self::action_link), which reports the pair
    /// with the *affected endpoint's* node first. A `ConnectAttempt` is a
    /// SYN travelling initiator → listener; a `ConnectResult` is the
    /// SYN-ACK coming back; deliveries travel peer → owner.
    fn action_direction(&self, action: &Action) -> Option<(NodeId, NodeId)> {
        match action {
            Action::ConnectAttempt { .. } => self.action_link(action),
            Action::ConnectResult { .. }
            | Action::DeliverData { .. }
            | Action::DeliverEof { .. } => self
                .action_link(action)
                .map(|(owner, remote)| (remote, owner)),
            _ => None,
        }
    }

    /// Whether a symmetric partition or directional cut blocks `action`.
    fn action_blocked(&self, action: &Action) -> bool {
        self.action_direction(action)
            .map(|(src, dst)| self.link_blocked(src, dst))
            .unwrap_or(false)
    }

    /// Re-queues parked actions whose links have healed, preserving their
    /// original sequence order (per-connection FIFO survives a partition).
    fn release_parked(&mut self) {
        let parked = std::mem::take(&mut self.parked);
        let mut freed = Vec::new();
        for sched in parked {
            if self.action_blocked(&sched.action) {
                self.parked.push(sched);
            } else {
                freed.push(sched);
            }
        }
        freed.sort_by_key(|s| s.seq);
        for sched in freed {
            let at = sched.at.max(self.now);
            self.queue.push(at.as_nanos(), sched.seq, sched.action);
        }
    }

    /// Spawns `proc` on `node`, starting after the configured launch
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or is crashed (a setup error).
    pub fn spawn(&mut self, node: NodeId, label: &str, proc: Box<dyn Process>) -> ProcessId {
        assert!(self.node_alive(node), "spawn on dead or unknown {node}");
        self.spawn_internal(node, label, proc)
    }

    fn spawn_internal(&mut self, node: NodeId, label: &str, proc: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u64);
        let rng = SimRng::for_process(self.cfg.seed, pid);
        let start_at = self.now + self.cfg.launch_latency;
        let live = self.proc_slab.insert(ProcLive {
            proc: Some(proc),
            rng,
            started: false,
            conns: BTreeSet::new(),
            listeners: BTreeSet::new(),
            exit_requested: None,
        });
        self.procs.push(ProcMeta {
            node,
            label: label.to_string(),
            alive: true,
            busy_until: start_at,
            live,
        });
        self.push(start_at, Action::StartProcess(pid));
        self.metrics.borrow_mut().count("sim.spawned", 1);
        self.recorder.borrow_mut().emit(
            self.now.as_nanos(),
            node.0,
            pid.0,
            obs::EventKind::Spawn {
                node: node.0,
                label: label.to_string(),
            },
        );
        pid
    }

    /// Kills `pid` immediately with `reason` (fault injection).
    pub fn kill_process(&mut self, pid: ProcessId, reason: &str) {
        self.terminate(pid, ExitReason::Crash(reason.to_string()));
    }

    /// Whether `pid` is still running.
    pub fn process_alive(&self, pid: ProcessId) -> bool {
        self.meta(pid).map(|m| m.alive).unwrap_or(false)
    }

    /// The label `pid` was spawned with (empty if unknown).
    pub fn process_label(&self, pid: ProcessId) -> &str {
        self.meta(pid).map(|m| m.label.as_str()).unwrap_or("")
    }

    /// Node hosting `pid`, if the process exists.
    pub fn process_node(&self, pid: ProcessId) -> Option<NodeId> {
        self.meta(pid).map(|m| m.node)
    }

    /// Ids of all live processes, in spawn order (the meta table is
    /// indexed by pid, and pids are assigned densely in spawn order —
    /// slab slot recycling underneath never reorders this view).
    pub fn live_processes(&self) -> Vec<ProcessId> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, m)| m.alive)
            .map(|(pid, _)| ProcessId(pid as u64))
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Wall-clock time spent dispatching events, summed over every
    /// [`run_until`](Self::run_until) call. Purely observational: it never
    /// feeds back into simulated time, so determinism is unaffected.
    pub fn wall_elapsed(&self) -> Duration {
        self.wall_in_run
    }

    /// Mean dispatch rate (events per wall-clock second) over the time
    /// spent inside [`run_until`](Self::run_until). 0.0 before any run.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_in_run.as_secs_f64();
        if secs > 0.0 {
            self.events_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// Shared handle to the metrics store (clone to keep after the run).
    pub fn metrics_handle(&self) -> Rc<RefCell<Metrics>> {
        Rc::clone(&self.metrics)
    }

    /// Shared handle to the observability recorder (clone to keep the
    /// trace after the run).
    pub fn recorder_handle(&self) -> Rc<RefCell<obs::Recorder>> {
        Rc::clone(&self.recorder)
    }

    /// Immutable snapshot accessor for the observability recorder.
    pub fn with_recorder<T>(&self, f: impl FnOnce(&obs::Recorder) -> T) -> T {
        f(&self.recorder.borrow())
    }

    /// Sets the trace verbosity, resetting the recorder. At
    /// [`obs::TraceLevel::Kernel`] every dispatched action is recorded;
    /// the default [`obs::TraceLevel::Recovery`] keeps only lifecycle and
    /// recovery-phase events. Call before the run starts: any events
    /// already recorded are discarded.
    pub fn set_trace_level(&mut self, level: obs::TraceLevel) {
        self.obs_kernel = level == obs::TraceLevel::Kernel;
        *self.recorder.borrow_mut() = obs::Recorder::with_level(level);
    }

    /// Emits a kernel-originated event (pid 0) into the trace.
    fn emit_kernel(&self, node: NodeId, kind: obs::EventKind) {
        self.recorder
            .borrow_mut()
            .emit(self.now.as_nanos(), node.0, 0, kind);
    }

    /// Immutable snapshot accessor for the metrics store.
    pub fn with_metrics<T>(&self, f: impl FnOnce(&Metrics) -> T) -> T {
        f(&self.metrics.borrow())
    }

    /// Retained trace lines (empty unless `cfg.trace` was set).
    pub fn trace_lines(&self) -> impl Iterator<Item = String> + '_ {
        self.trace
            .iter()
            .map(|(t, pid, msg)| format!("[{t}] {pid}: {msg}"))
    }

    /// Runs until the clock reaches `deadline`, the queue drains, or
    /// `event_limit` events have been dispatched.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_until_limited(deadline, u64::MAX)
    }

    /// [`run_until`](Self::run_until) with an explicit event budget, as a
    /// guard against runaway periodic behaviour in tests.
    // Wall-clock accounting only (events/sec reporting); the reading never
    // feeds back into simulated time. Suppressed in lint-allow.toml (R2)
    // and for clippy's disallowed-methods mirror of the same rule.
    #[allow(clippy::disallowed_methods)]
    pub fn run_until_limited(&mut self, deadline: SimTime, event_limit: u64) -> RunOutcome {
        let started = Instant::now();
        let outcome = self.dispatch_until(deadline, event_limit);
        self.wall_in_run += started.elapsed();
        outcome
    }

    fn dispatch_until(&mut self, deadline: SimTime, event_limit: u64) -> RunOutcome {
        if self.sched_fifo {
            self.dispatch_until_fifo(deadline, event_limit)
        } else {
            self.dispatch_until_choosing(deadline, event_limit)
        }
    }

    /// The historical dispatch loop, taken under the default
    /// [`FifoScheduler`]: strict `(at, seq)` order, notify-wave
    /// coalescing enabled, no choice points. Every pinned scenario
    /// digest is produced by this path, unchanged.
    fn dispatch_until_fifo(&mut self, deadline: SimTime, event_limit: u64) -> RunOutcome {
        let mut dispatched = 0u64;
        loop {
            if dispatched >= event_limit {
                self.flush_bounce();
                return RunOutcome::EventLimit;
            }
            // While a bounce accumulator is open, every queued entry has
            // a smaller sequence number than the accumulator's (pushes
            // flush it first), so entries up to and including its `at`
            // may pop freely — but nothing beyond `at` may overtake it,
            // so the pop window is capped until it flushes.
            let cap = self
                .pending_bounce
                .as_ref()
                .map(|p| p.at.as_nanos())
                .unwrap_or(u64::MAX);
            let Some((at, seq, action)) = self.queue.pop_due(deadline.as_nanos().min(cap)) else {
                if self.pending_bounce.is_some() {
                    self.flush_bounce();
                    continue;
                }
                if self.queue.is_empty() {
                    self.now = deadline.max(self.now);
                    return RunOutcome::Idle;
                }
                // The earliest event is beyond the deadline; it stays
                // queued (no pop-then-push-back) and the clock stops at
                // the deadline, exactly as the heap kernel did.
                self.now = deadline;
                return RunOutcome::DeadlineReached;
            };
            let at = SimTime::from_nanos(at);
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            if let Action::NotifyBatch { pid, events } = action {
                self.batched_extra -= events.len() as u64 - 1;
                let n = self.notify_batch(pid, events, seq, event_limit - dispatched);
                self.events_processed += n;
                dispatched += n;
                continue;
            }
            let sched = Scheduled { at, seq, action };
            self.events_processed += 1;
            dispatched += 1;
            // A severed link (symmetric or directional) parks the action
            // instead of delivering it; heal() re-releases parked actions
            // in send order.
            if self.action_blocked(&sched.action) {
                self.parked.push(sched);
                continue;
            }
            if self.obs_kernel {
                let node = self
                    .action_link(&sched.action)
                    .map(|(a, _)| a)
                    .unwrap_or(NodeId(0));
                self.emit_kernel(
                    node,
                    obs::EventKind::Dispatch {
                        action: Self::action_name(&sched.action),
                    },
                );
            }
            self.handle(sched.action);
        }
    }

    /// The choice-point dispatch loop, taken under any non-FIFO
    /// [`Scheduler`]: each iteration pools every queued event due within
    /// the scheduler's reorder window of the earliest pending one
    /// (bounded by [`sched::MAX_CANDIDATES`]), surfaces multi-candidate
    /// pools as a [`sched::ChoicePoint`], dispatches the pick and
    /// re-queues the rest under their original `(at, seq)` keys.
    ///
    /// Differences from the FIFO path, both semantics-preserving for
    /// the single-candidate case:
    ///
    /// * notify-wave coalescing is disabled ([`Self::bounce`] pushes
    ///   individually reorderable entries), so `pending_bounce` is
    ///   always `None` here and no pop-window cap applies;
    /// * picking a later candidate advances the clock to its timestamp
    ///   and the deferred earlier candidates dispatch *late* — the clock
    ///   never runs backwards, so a chosen schedule is always a
    ///   physically plausible late-delivery history.
    ///
    /// Every iteration dispatches exactly one event, so the loop shares
    /// the FIFO path's termination argument (queue drain, deadline or
    /// event budget). A deferred candidate also pins the window: pools
    /// are collected from the earliest pending event, so after at most
    /// [`sched::MAX_CANDIDATES`] deferrals the earliest candidate is
    /// index 0 of a pool whose scheduler must pick *something*, and the
    /// clamp guarantees eligibility — no starvation.
    fn dispatch_until_choosing(&mut self, deadline: SimTime, event_limit: u64) -> RunOutcome {
        let slack = self.scheduler.slack();
        let mut dispatched = 0u64;
        loop {
            if dispatched >= event_limit {
                return RunOutcome::EventLimit;
            }
            let Some((at, seq, action)) = self.queue.pop_due(deadline.as_nanos()) else {
                if self.queue.is_empty() {
                    self.now = deadline.max(self.now);
                    return RunOutcome::Idle;
                }
                self.now = deadline;
                return RunOutcome::DeadlineReached;
            };
            let first_at = SimTime::from_nanos(at);
            // Pool everything due within the reorder window. The pool
            // bound caps both this loop and the explorer's branching.
            let cap = at.saturating_add(slack.as_nanos()).min(deadline.as_nanos());
            let mut pool = vec![(first_at, seq, action)];
            while pool.len() < sched::MAX_CANDIDATES {
                let Some((c_at, c_seq, c_action)) = self.queue.pop_due(cap) else {
                    break;
                };
                pool.push((SimTime::from_nanos(c_at), c_seq, c_action));
            }
            let pick = if pool.len() > 1 {
                // Per-connection FIFO eligibility: the pool is in
                // (at, seq) order, so the first candidate seen on each
                // connection is its earliest — only that one may be
                // picked. Candidate 0 is always eligible.
                let mut seen_conns: Vec<ConnId> = Vec::new();
                let candidates: Vec<sched::Candidate> = pool
                    .iter()
                    .map(|(c_at, c_seq, c_action)| {
                        let conn = Self::action_conn(c_action);
                        let eligible = match conn {
                            Some(c) if seen_conns.contains(&c) => false,
                            Some(c) => {
                                seen_conns.push(c);
                                true
                            }
                            None => true,
                        };
                        sched::Candidate {
                            at: *c_at,
                            seq: *c_seq,
                            kind: Self::action_kind(c_action),
                            class: Self::action_class(c_action),
                            target: self.action_target(c_action),
                            conn,
                            touch_conn: Self::action_touch_conn(c_action),
                            eligible,
                        }
                    })
                    .collect();
                let cp = sched::ChoicePoint {
                    step: self.sched_steps,
                    now: first_at,
                    candidates,
                };
                self.sched_steps += 1;
                let want = self.scheduler.choose(&cp);
                // Out-of-range or ineligible picks clamp to the default.
                match cp.candidates.get(want) {
                    Some(c) if c.eligible => want,
                    _ => 0,
                }
            } else {
                0
            };
            let mut chosen = None;
            for (i, (c_at, c_seq, c_action)) in pool.into_iter().enumerate() {
                if i == pick {
                    chosen = Some((c_at, c_seq, c_action));
                } else {
                    // Deferred candidates keep their original keys; they
                    // surface again at the next choice point.
                    self.queue.push(c_at.as_nanos(), c_seq, c_action);
                }
            }
            let Some((at, seq, action)) = chosen else {
                continue; // unreachable: pick < pool.len()
            };
            // Late delivery: a deferred event may dispatch after the
            // clock passed its timestamp; time never runs backwards.
            self.now = self.now.max(at);
            let sched = Scheduled { at, seq, action };
            self.events_processed += 1;
            dispatched += 1;
            if self.action_blocked(&sched.action) {
                self.parked.push(sched);
                continue;
            }
            if self.obs_kernel {
                let node = self
                    .action_link(&sched.action)
                    .map(|(a, _)| a)
                    .unwrap_or(NodeId(0));
                self.emit_kernel(
                    node,
                    obs::EventKind::Dispatch {
                        action: Self::action_name(&sched.action),
                    },
                );
            }
            self.handle(sched.action);
        }
    }

    /// The connection an action rides on, if any — the key of the
    /// per-connection FIFO eligibility check.
    fn action_conn(action: &Action) -> Option<ConnId> {
        match action {
            Action::ConnectAttempt { client_ep, .. } | Action::ConnectResult { client_ep, .. } => {
                Some(*client_ep)
            }
            Action::DeliverData { ep, .. } | Action::DeliverEof { ep } => Some(*ep),
            _ => None,
        }
    }

    /// The scheduler-facing kind of an action (batches report as plain
    /// notifies; they cannot arise under a choosing scheduler).
    fn action_kind(action: &Action) -> sched::CandidateKind {
        match action {
            Action::StartProcess(_) => sched::CandidateKind::StartProcess,
            Action::ConnectAttempt { .. } => sched::CandidateKind::ConnectAttempt,
            Action::ConnectResult { .. } => sched::CandidateKind::ConnectResult,
            Action::DeliverData { .. } => sched::CandidateKind::DeliverData,
            Action::DeliverEof { .. } => sched::CandidateKind::DeliverEof,
            Action::TimerFire { .. } => sched::CandidateKind::TimerFire,
            Action::Notify { .. } | Action::NotifyBatch { .. } => sched::CandidateKind::Notify,
        }
    }

    /// The process an action ultimately targets, when known: two
    /// candidates with the same target conflict (their order is
    /// observable by that process).
    fn action_target(&self, action: &Action) -> Option<ProcessId> {
        match action {
            Action::StartProcess(pid)
            | Action::Notify { pid, .. }
            | Action::NotifyBatch { pid, .. } => Some(*pid),
            Action::TimerFire { timer } => self.timers.get(timer.0).map(|ts| ts.pid),
            Action::ConnectAttempt { client_ep, .. } | Action::ConnectResult { client_ep, .. } => {
                self.endpoint(*client_ep).map(|ep| ep.owner)
            }
            Action::DeliverData { ep, .. } | Action::DeliverEof { ep } => {
                self.endpoint(*ep).map(|e| e.owner)
            }
        }
    }

    /// Static name of an action variant, for `Dispatch` trace events.
    /// The handler class dispatching an action will invoke on its
    /// target process: the process-facing [`Event`] variant name,
    /// `"on_start"` for launches, or the action name for kernel-internal
    /// steps (connect SYNs, coalesced batches) with no single handler.
    /// This is [`sched::Candidate::class`] — the key the explorer's
    /// conflict-relation artifact refines conflicts by.
    fn action_class(action: &Action) -> &'static str {
        match action {
            Action::StartProcess(_) => "on_start",
            Action::ConnectAttempt { .. } => "connect_attempt",
            Action::ConnectResult { ok: true, .. } => "conn_established",
            Action::ConnectResult { ok: false, .. } => "conn_refused",
            Action::DeliverData { .. } => "data_readable",
            Action::DeliverEof { .. } => "peer_closed",
            Action::TimerFire { .. } => "timer_fired",
            Action::Notify { event, .. } => Self::event_class(event),
            Action::NotifyBatch { .. } => "notify_batch",
        }
    }

    /// The connection whose kernel-side state the dispatched handler
    /// will touch ([`sched::Candidate::touch_conn`]): the delivery
    /// endpoint, or the connection a parked notification names.
    fn action_touch_conn(action: &Action) -> Option<ConnId> {
        match action {
            Action::ConnectAttempt { client_ep, .. } | Action::ConnectResult { client_ep, .. } => {
                Some(*client_ep)
            }
            Action::DeliverData { ep, .. } | Action::DeliverEof { ep } => Some(*ep),
            Action::Notify { event, .. } => Self::event_conn(event),
            Action::StartProcess(_) | Action::TimerFire { .. } | Action::NotifyBatch { .. } => None,
        }
    }

    /// The connection a parked [`Event`] names, if any.
    fn event_conn(event: &Event) -> Option<ConnId> {
        match event {
            Event::ConnEstablished { conn }
            | Event::ConnRefused { conn }
            | Event::Accepted { conn, .. }
            | Event::DataReadable { conn }
            | Event::PeerClosed { conn } => Some(*conn),
            Event::TimerFired { .. } => None,
        }
    }

    /// [`action_class`](Self::action_class) for a parked [`Event`].
    fn event_class(event: &Event) -> &'static str {
        match event {
            Event::TimerFired { .. } => "timer_fired",
            Event::ConnEstablished { .. } => "conn_established",
            Event::ConnRefused { .. } => "conn_refused",
            Event::Accepted { .. } => "accepted",
            Event::DataReadable { .. } => "data_readable",
            Event::PeerClosed { .. } => "peer_closed",
        }
    }

    fn action_name(action: &Action) -> &'static str {
        match action {
            Action::StartProcess(_) => "start_process",
            Action::ConnectAttempt { .. } => "connect_attempt",
            Action::ConnectResult { .. } => "connect_result",
            Action::DeliverData { .. } => "deliver_data",
            Action::DeliverEof { .. } => "deliver_eof",
            Action::TimerFire { .. } => "timer_fire",
            Action::Notify { .. } => "notify",
            Action::NotifyBatch { .. } => "notify_batch",
        }
    }

    fn push(&mut self, at: SimTime, action: Action) {
        // Any unrelated push breaks the accumulator's consecutive-seq
        // run, so it must materialise in the wheel first.
        self.flush_bounce();
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.as_nanos(), seq, action);
    }

    /// Parks `event` for a busy `pid`, waking at `at`: consecutive parks
    /// for one `(pid, at)` destination coalesce into a single
    /// [`Action::NotifyBatch`] wheel entry instead of one entry each.
    /// Sequence numbers are allocated here exactly as the individual
    /// pushes would have, so dispatch order is bit-identical — the win is
    /// purely that a wave of `k` parked notifies re-bounces off a busy
    /// process in O(1) rather than O(k) wheel operations.
    fn bounce(&mut self, pid: ProcessId, at: SimTime, event: Event) {
        if !self.sched_fifo {
            // Under a choosing scheduler every parked notify stays an
            // individually reorderable wheel entry: coalescing would
            // fuse events the scheduler must be able to interleave.
            // Sequence allocation is identical either way.
            self.push(at, Action::Notify { pid, event });
            return;
        }
        match &mut self.pending_bounce {
            Some(p) if p.pid == pid && p.at == at => {
                debug_assert_eq!(p.first_seq + p.events.len() as u64, self.seq);
                p.events.push_back(event);
                self.seq += 1;
            }
            _ => {
                self.flush_bounce();
                let mut events = mem::take(&mut self.bounce_spare);
                events.clear();
                events.push_back(event);
                self.pending_bounce = Some(PendingBounce {
                    pid,
                    at,
                    first_seq: self.seq,
                    events,
                });
                self.seq += 1;
            }
        }
    }

    /// [`bounce`](Self::bounce) for a whole popped batch at once: the
    /// elements keep their relative order and receive the same
    /// consecutive sequence numbers the per-entry requeues would have.
    fn bounce_many(&mut self, pid: ProcessId, at: SimTime, mut events: VecDeque<Event>) {
        if !self.sched_fifo {
            for event in events {
                self.push(at, Action::Notify { pid, event });
            }
            return;
        }
        match &mut self.pending_bounce {
            Some(p) if p.pid == pid && p.at == at => {
                debug_assert_eq!(p.first_seq + p.events.len() as u64, self.seq);
                self.seq += events.len() as u64;
                p.events.append(&mut events);
                self.bounce_spare = events;
            }
            _ => {
                self.flush_bounce();
                let first_seq = self.seq;
                self.seq += events.len() as u64;
                self.pending_bounce = Some(PendingBounce {
                    pid,
                    at,
                    first_seq,
                    events,
                });
            }
        }
    }

    /// Materialises the open bounce accumulator as a wheel entry — a
    /// plain [`Action::Notify`] when it holds a single event (so
    /// storm-free scenarios behave exactly as before), a
    /// [`Action::NotifyBatch`] otherwise.
    fn flush_bounce(&mut self) {
        let Some(mut p) = self.pending_bounce.take() else {
            return;
        };
        if p.events.len() == 1 {
            if let Some(event) = p.events.pop_front() {
                self.bounce_spare = p.events;
                self.queue.push(
                    p.at.as_nanos(),
                    p.first_seq,
                    Action::Notify { pid: p.pid, event },
                );
            }
        } else {
            self.batched_extra += p.events.len() as u64 - 1;
            self.queue.push(
                p.at.as_nanos(),
                p.first_seq,
                Action::NotifyBatch {
                    pid: p.pid,
                    events: p.events,
                },
            );
        }
    }

    /// Processes a popped notify batch element by element, exactly as
    /// the pre-coalescing kernel popped the individual entries: each
    /// element counts as one dispatched event and sees the *current*
    /// liveness/busyness of its destination. A busy destination requeues
    /// every remaining element in one move (the O(1) wave bounce); a
    /// dead one drops them one by one. Returns how many elements were
    /// consumed against `budget` (≥ 1 on entry); an unconsumed tail is
    /// re-queued under its own original key so an event-limited run
    /// stops exactly where the individual entries would have.
    fn notify_batch(
        &mut self,
        pid: ProcessId,
        mut events: VecDeque<Event>,
        first_seq: u64,
        budget: u64,
    ) -> u64 {
        let mut consumed = 0u64;
        loop {
            if events.is_empty() {
                events.clear();
                self.bounce_spare = events;
                return consumed;
            }
            if consumed >= budget {
                // Event budget exhausted mid-batch: the tail keeps its
                // original key (`self.now` is the batch's pop time), so
                // it pops first when the run resumes.
                let extra = events.len() as u64 - 1;
                self.batched_extra += extra;
                let action = Self::batch_action(pid, events);
                self.queue
                    .push(self.now.as_nanos(), first_seq + consumed, action);
                return consumed;
            }
            if self.obs_kernel {
                self.emit_kernel(NodeId(0), obs::EventKind::Dispatch { action: "notify" });
            }
            let Some(ev) = events.pop_front() else {
                return consumed;
            };
            consumed += 1;
            match self.procs.get(pid.0 as usize) {
                None => continue,
                Some(meta) if !meta.alive => continue,
                Some(meta) if meta.busy_until > self.now => {
                    // Still busy: this element and every one behind it
                    // requeue at the new horizon, as far as the budget
                    // allows; the rest keep their original key.
                    let busy_until = meta.busy_until;
                    events.push_front(ev);
                    consumed -= 1;
                    let can = (budget - consumed).min(events.len() as u64);
                    let tail = events.split_off(can as usize);
                    consumed += can;
                    if self.obs_kernel {
                        // The old kernel emitted one Dispatch line per
                        // bounce pop; the first element's was emitted
                        // above already.
                        for _ in 1..can {
                            self.emit_kernel(
                                NodeId(0),
                                obs::EventKind::Dispatch { action: "notify" },
                            );
                        }
                    }
                    self.bounce_many(pid, busy_until, events);
                    if !tail.is_empty() {
                        let extra = tail.len() as u64 - 1;
                        self.batched_extra += extra;
                        let action = Self::batch_action(pid, tail);
                        self.queue
                            .push(self.now.as_nanos(), first_seq + consumed, action);
                    }
                    return consumed;
                }
                Some(_) => self.dispatch(pid, Some(ev)),
            }
        }
    }

    /// Wraps a drained run back up as the smallest action that holds it.
    fn batch_action(pid: ProcessId, mut events: VecDeque<Event>) -> Action {
        if events.len() == 1 {
            match events.pop_front() {
                Some(event) => Action::Notify { pid, event },
                None => Action::NotifyBatch { pid, events },
            }
        } else {
            Action::NotifyBatch { pid, events }
        }
    }

    fn handle(&mut self, action: Action) {
        match action {
            Action::StartProcess(pid) => self.dispatch(pid, None),
            Action::ConnectAttempt { client_ep, addr } => {
                self.handle_connect_attempt(client_ep, addr)
            }
            Action::ConnectResult { client_ep, ok } => self.handle_connect_result(client_ep, ok),
            Action::DeliverData { ep, data } => self.handle_deliver_data(ep, data),
            Action::DeliverEof { ep } => self.handle_deliver_eof(ep),
            Action::TimerFire { timer } => self.handle_timer_fire(timer),
            Action::Notify { pid, event } => self.notify(pid, event),
            // Batches are intercepted in `dispatch_until` (they carry
            // their own event accounting); deliver element-wise if one
            // ever reaches here anyway.
            Action::NotifyBatch { pid, events } => {
                for event in events {
                    self.notify(pid, event);
                }
            }
        }
    }

    fn handle_connect_attempt(&mut self, client_ep: ConnId, addr: Addr) {
        // The SYN has arrived at the target node. Check for a live listener.
        let accepting = if self.node_alive(addr.node) {
            self.listener_at(addr).and_then(|lsn| {
                self.listeners
                    .get(lsn.0)
                    .filter(|(pid, _)| self.process_alive(*pid))
                    .map(|(pid, _)| (lsn, *pid))
            })
        } else {
            None
        };
        // The initiating endpoint may have been closed or its owner killed
        // while the SYN was in flight.
        let client_alive = self
            .endpoint(client_ep)
            .map(|ep| ep.state == EpState::Connecting && self.process_alive(ep.owner))
            .unwrap_or(false);
        let client_node = self
            .endpoint(client_ep)
            .map(|ep| self.meta(ep.owner).map(|m| m.node).unwrap_or(NodeId(0)));
        // `client_alive` implies the endpoint exists, so `client_node` is
        // `Some` in the live arms; matching on it keeps that connection
        // panic-free instead of relying on an `expect`.
        match (accepting, client_alive, client_node) {
            (Some((lsn, server_pid)), true, Some(client_node)) => {
                let Some(server_node) = self.process_node(server_pid) else {
                    return; // listener owner vanished; nothing to accept
                };
                let server_ep = ConnId(self.endpoints.len() as u64);
                self.endpoints.push(Endpoint {
                    owner: server_pid,
                    peer: Some(client_ep),
                    state: EpState::Established,
                    recv: RecvQueue::new(),
                    peer_eof: false,
                    last_arrival: self.now,
                    tag: None,
                    remote_node: client_node,
                });
                if let Some(ep) = self.endpoint_mut(client_ep) {
                    ep.peer = Some(server_ep);
                }
                if let Some(live) = self.live_mut(server_pid) {
                    live.conns.insert(server_ep);
                }
                self.notify(
                    server_pid,
                    Event::Accepted {
                        listener: lsn,
                        conn: server_ep,
                        peer_node: client_node,
                    },
                );
                self.emit_kernel(
                    client_node,
                    obs::EventKind::ConnectOutcome {
                        to_node: addr.node.0,
                        port: addr.port.0,
                        ok: true,
                    },
                );
                // SYN-ACK travels back to the initiator.
                let back = self.sample_latency(server_node, client_node, 0);
                let at = self.now + back;
                self.push(
                    at,
                    Action::ConnectResult {
                        client_ep,
                        ok: true,
                    },
                );
            }
            (None, true, Some(client_node)) => {
                self.emit_kernel(
                    client_node,
                    obs::EventKind::ConnectOutcome {
                        to_node: addr.node.0,
                        port: addr.port.0,
                        ok: false,
                    },
                );
                let back = self.sample_latency(addr.node, client_node, 0);
                let at = self.now + back;
                self.push(
                    at,
                    Action::ConnectResult {
                        client_ep,
                        ok: false,
                    },
                );
            }
            _ => {
                // Initiator vanished (or its endpoint is already gone): if
                // a server endpoint would have been created we simply never
                // create it; nothing to do.
            }
        }
    }

    fn handle_connect_result(&mut self, client_ep: ConnId, ok: bool) {
        let Some(ep) = self.endpoint_mut(client_ep) else {
            return;
        };
        if ep.state != EpState::Connecting {
            return; // closed while connecting
        }
        let owner = ep.owner;
        if ok {
            ep.state = EpState::Established;
            self.notify(owner, Event::ConnEstablished { conn: client_ep });
        } else {
            ep.state = EpState::ClosedLocal;
            if let Some(live) = self.live_mut(owner) {
                live.conns.remove(&client_ep);
            }
            self.notify(owner, Event::ConnRefused { conn: client_ep });
        }
    }

    fn handle_deliver_data(&mut self, ep_id: ConnId, data: Bytes) {
        let Some(ep) = self.endpoint_mut(ep_id) else {
            return;
        };
        if ep.state == EpState::ClosedLocal {
            return; // receiver closed; bytes fall on the floor
        }
        let owner = ep.owner;
        if !self.process_alive(owner) {
            return;
        }
        if let Some(ep) = self.endpoint_mut(ep_id) {
            ep.recv.push(data);
        }
        self.notify(owner, Event::DataReadable { conn: ep_id });
    }

    fn handle_deliver_eof(&mut self, ep_id: ConnId) {
        let Some(ep) = self.endpoint_mut(ep_id) else {
            return;
        };
        if ep.state == EpState::ClosedLocal || ep.peer_eof {
            return;
        }
        ep.peer_eof = true;
        let owner = ep.owner;
        if self.process_alive(owner) {
            self.notify(owner, Event::PeerClosed { conn: ep_id });
        }
    }

    fn handle_timer_fire(&mut self, timer: TimerId) {
        let Some(ts) = self.timers.remove(timer.0) else {
            return;
        };
        if ts.cancelled {
            return;
        }
        if self.process_alive(ts.pid) {
            self.notify(
                ts.pid,
                Event::TimerFired {
                    timer,
                    token: ts.token,
                },
            );
        }
    }

    /// Delivers `event` to `pid` now if it is idle, or at its `busy_until`
    /// otherwise (modelling a single-threaded process working through its
    /// backlog).
    /// Delivers `event` to `pid` now, or parks it until the process is
    /// free. Used both for fresh kernel notifications and for parked
    /// notifies popping back out of the wheel (the destination may have
    /// become busy again in the meantime). One dense meta load answers
    /// both the liveness and the busy check — this is the hottest kernel
    /// path under server contention (notify-requeue storms), and busy
    /// parks go through the coalescing [`bounce`](Self::bounce) path.
    fn notify(&mut self, pid: ProcessId, event: Event) {
        let Some(meta) = self.procs.get(pid.0 as usize) else {
            return;
        };
        if !meta.alive {
            return;
        }
        if meta.busy_until > self.now {
            let at = meta.busy_until;
            self.bounce(pid, at, event);
        } else {
            self.dispatch(pid, Some(event));
        }
    }

    /// Runs one handler: `on_start` when `event` is `None`, else `on_event`.
    fn dispatch(&mut self, pid: ProcessId, event: Option<Event>) {
        let Some(slot) = self.live_mut(pid) else {
            return;
        };
        let Some(mut proc) = slot.proc.take() else {
            return; // re-entrant dispatch cannot happen; defensive
        };
        match &event {
            None => slot.started = true,
            Some(_) if !slot.started => {
                // Event raced ahead of on_start (should not happen since
                // busy_until covers launch, but be safe): requeue.
                slot.proc = Some(proc);
                let at = self
                    .procs
                    .get(pid.0 as usize)
                    .map(|m| m.busy_until)
                    .unwrap_or(self.now);
                if let Some(ev) = event {
                    self.push(at, Action::Notify { pid, event: ev });
                }
                return;
            }
            _ => {}
        }
        {
            let mut ctx = Ctx { sim: self, pid };
            match event {
                None => proc.on_start(&mut ctx),
                Some(ev) => proc.on_event(&mut ctx, ev),
            }
        }
        // The process cannot remove its own slot from inside a handler
        // (only the kernel terminates processes), but stay panic-free.
        let exit = match self.live_mut(pid) {
            Some(slot) => {
                slot.proc = Some(proc);
                slot.exit_requested.take()
            }
            None => None,
        };
        if let Some(reason) = exit {
            self.terminate(pid, reason);
        }
    }

    fn terminate(&mut self, pid: ProcessId, reason: ExitReason) {
        let Some(meta) = self.procs.get_mut(pid.0 as usize) else {
            return;
        };
        if !meta.alive {
            return;
        }
        meta.alive = false;
        let key = meta.live;
        let label = meta.label.clone();
        let node = meta.node;
        // Free the live half; its slab slot is recycled for future spawns
        // (the meta record keeps answering identity queries for the dead
        // pid). BTreeSet iteration is id-ordered, giving a deterministic
        // EOF order without an explicit sort.
        let (conns, listeners) = match self.proc_slab.remove(key) {
            Some(live) => (live.conns, live.listeners),
            None => (BTreeSet::new(), BTreeSet::new()),
        };
        for lsn in listeners {
            if let Some((_, addr)) = self.listeners.remove(lsn.0) {
                self.unbind_listener_addr(addr);
            }
        }
        for c in conns {
            self.close_endpoint(c);
        }
        let mut m = self.metrics.borrow_mut();
        match &reason {
            ExitReason::Graceful => m.count("sim.exit.graceful", 1),
            ExitReason::Crash(_) => m.count("sim.exit.crash", 1),
        }
        drop(m);
        self.recorder.borrow_mut().emit(
            self.now.as_nanos(),
            node.0,
            pid.0,
            obs::EventKind::Exit {
                crashed: matches!(reason, ExitReason::Crash(_)),
            },
        );
        if self.cfg.trace {
            self.trace
                .push((self.now, pid, format!("{label} terminated: {reason:?}")));
        }
    }

    /// Closes `ep_id` from the owner side: schedules EOF at the peer after
    /// any in-flight data.
    fn close_endpoint(&mut self, ep_id: ConnId) {
        let Some(ep) = self.endpoint_mut(ep_id) else {
            return;
        };
        if ep.state == EpState::ClosedLocal {
            return;
        }
        let was_connecting = ep.state == EpState::Connecting;
        ep.state = EpState::ClosedLocal;
        ep.recv.clear();
        let peer = ep.peer;
        let remote = ep.remote_node;
        if was_connecting {
            return; // handshake will fizzle in handle_connect_*
        }
        if let Some(peer_id) = peer {
            let owner_node = self
                .endpoint(peer_id)
                .map(|p| p.remote_node)
                .unwrap_or(remote);
            let lat = self.sample_latency(owner_node, remote, 0);
            let arrival = self.fifo_arrival(peer_id, self.now + lat);
            self.push(arrival, Action::DeliverEof { ep: peer_id });
        }
    }

    /// Enforces per-connection FIFO: a segment may not arrive before one
    /// scheduled earlier.
    fn fifo_arrival(&mut self, ep_id: ConnId, proposed: SimTime) -> SimTime {
        let Some(ep) = self.endpoint_mut(ep_id) else {
            return proposed;
        };
        let arrival = proposed.max(ep.last_arrival);
        ep.last_arrival = arrival;
        arrival
    }

    fn sample_latency(&mut self, src: NodeId, dst: NodeId, len: usize) -> SimDuration {
        let base = self.cfg.latency.sample(&mut self.net_rng, src, dst, len);
        let noise = self.cfg.noise.sample(&mut self.net_rng);
        let loss = self.cfg.loss.sample(&mut self.net_rng);
        // Per-link fault jitter. Scenarios that never call
        // `set_link_jitter` take no draw here, keeping their RNG stream —
        // and hence their pinned digests — untouched.
        let fault_jitter = match self.link_jitter.get(&Self::link_key(src, dst)) {
            Some(bound) if src != dst && !bound.is_zero() => {
                use rand::Rng;
                SimDuration::from_nanos(self.net_rng.gen_range(0..=bound.as_nanos()))
            }
            _ => SimDuration::ZERO,
        };
        base + noise + loss + fault_jitter
    }
}

/// The kernel-backed [`SysApi`] implementation handed to processes.
struct Ctx<'a> {
    sim: &'a mut Simulation,
    pid: ProcessId,
}

impl Ctx<'_> {
    fn slot_mut(&mut self) -> &mut ProcLive {
        self.sim.live_mut(self.pid).expect("own slot exists")
    }
    fn node(&self) -> NodeId {
        self.sim.meta(self.pid).expect("own slot exists").node
    }
    fn busy_until(&self) -> SimTime {
        self.sim.meta(self.pid).expect("own slot exists").busy_until
    }
}

impl SysApi for Ctx<'_> {
    fn now(&self) -> SimTime {
        self.sim.now
    }

    fn my_node(&self) -> NodeId {
        self.node()
    }

    fn my_pid(&self) -> ProcessId {
        self.pid
    }

    fn listen(&mut self, port: Port) -> Result<ListenerId, SysError> {
        let node = self.node();
        let addr = Addr::new(node, port);
        let Some(by_port) = self.sim.node_listeners.get_mut(node.0 as usize) else {
            return Err(SysError::NoSuchTarget); // own node always exists
        };
        let pos = match by_port.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(_) => return Err(SysError::PortInUse(port)),
            Err(pos) => pos,
        };
        let lsn = ListenerId(self.sim.listeners.insert((self.pid, addr)));
        if let Some(by_port) = self.sim.node_listeners.get_mut(node.0 as usize) {
            by_port.insert(pos, (port, lsn));
        }
        self.slot_mut().listeners.insert(lsn);
        Ok(lsn)
    }

    fn unlisten(&mut self, listener: ListenerId) {
        if let Some((owner, addr)) = self.sim.listeners.get(listener.0).copied() {
            if owner == self.pid {
                self.sim.listeners.remove(listener.0);
                self.sim.unbind_listener_addr(addr);
                self.slot_mut().listeners.remove(&listener);
            }
        }
    }

    fn connect(&mut self, addr: Addr) -> ConnId {
        let node = self.node();
        let ep_id = ConnId(self.sim.endpoints.len() as u64);
        self.sim.endpoints.push(Endpoint {
            owner: self.pid,
            peer: None,
            state: EpState::Connecting,
            recv: RecvQueue::new(),
            peer_eof: false,
            last_arrival: self.sim.now,
            tag: None,
            remote_node: addr.node,
        });
        self.slot_mut().conns.insert(ep_id);
        self.emit(obs::EventKind::ConnectAttempt {
            to_node: addr.node.0,
            port: addr.port.0,
        });
        let send_at = self.sim.now.max(self.busy_until());
        let lat = self.sim.sample_latency(node, addr.node, 0);
        self.sim.push(
            send_at + lat,
            Action::ConnectAttempt {
                client_ep: ep_id,
                addr,
            },
        );
        ep_id
    }

    fn write(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), SysError> {
        let now = self.sim.now;
        let busy_until = self.busy_until();
        let src_node = self.node();
        let ep = self.sim.endpoint(conn).ok_or(SysError::UnknownConn(conn))?;
        if ep.owner != self.pid {
            return Err(SysError::UnknownConn(conn));
        }
        match ep.state {
            EpState::Connecting => return Err(SysError::NotEstablished(conn)),
            EpState::ClosedLocal => return Err(SysError::ClosedLocally(conn)),
            EpState::Established => {}
        }
        if ep.peer_eof {
            return Err(SysError::PeerClosed(conn));
        }
        let peer_id = ep.peer.ok_or(SysError::NotEstablished(conn))?;
        let dst_node = ep.remote_node;
        let tag = ep.tag;
        let depart = now.max(busy_until);
        if let Some(tag) = tag {
            self.sim
                .metrics
                .borrow_mut()
                .record_bytes(tag, depart, bytes.len() as u64);
        }
        // Is the peer still able to receive? If its process is dead the
        // bytes are silently lost (the EOF races them).
        let lat = self.sim.sample_latency(src_node, dst_node, bytes.len());
        let arrival = self.sim.fifo_arrival(peer_id, depart + lat);
        self.sim.push(
            arrival,
            Action::DeliverData {
                ep: peer_id,
                data: Bytes::copy_from_slice(bytes),
            },
        );
        Ok(())
    }

    fn read(&mut self, conn: ConnId, max: usize) -> Result<ReadOutcome, SysError> {
        let ep = self
            .sim
            .endpoint_mut(conn)
            .ok_or(SysError::UnknownConn(conn))?;
        if ep.owner != self.pid {
            return Err(SysError::UnknownConn(conn));
        }
        if ep.state == EpState::ClosedLocal {
            return Err(SysError::ClosedLocally(conn));
        }
        let data = ep.recv.read(max);
        let eof = ep.recv.is_empty() && ep.peer_eof;
        Ok(ReadOutcome { data, eof })
    }

    fn close(&mut self, conn: ConnId) {
        let owns = self
            .sim
            .endpoint(conn)
            .map(|ep| ep.owner == self.pid)
            .unwrap_or(false);
        if !owns {
            return;
        }
        self.slot_mut().conns.remove(&conn);
        self.sim.close_endpoint(conn);
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        let timer = TimerId(self.sim.timers.insert(TimerState {
            pid: self.pid,
            token,
            cancelled: false,
        }));
        let at = self.sim.now + after;
        self.sim.push(at, Action::TimerFire { timer });
        timer
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        if let Some(ts) = self.sim.timers.get_mut(timer.0) {
            if ts.pid == self.pid {
                ts.cancelled = true;
            }
        }
    }

    fn spawn(
        &mut self,
        node: NodeId,
        name: &str,
        factory: ProcessFactory,
    ) -> Result<ProcessId, SysError> {
        if !self.sim.node_alive(node) {
            return Err(SysError::NoSuchTarget);
        }
        Ok(self.sim.spawn_internal(node, name, factory()))
    }

    fn exit(&mut self, reason: ExitReason) {
        self.slot_mut().exit_requested = Some(reason);
    }

    fn charge_cpu(&mut self, cost: SimDuration) {
        let now = self.sim.now;
        if let Some(meta) = self.sim.procs.get_mut(self.pid.0 as usize) {
            meta.busy_until = meta.busy_until.max(now) + cost;
        }
    }

    fn rng(&mut self) -> &mut SimRng {
        &mut self.slot_mut().rng
    }

    fn tag_conn(&mut self, conn: ConnId, tag: &'static str) {
        if let Some(ep) = self.sim.endpoint_mut(conn) {
            if ep.owner == self.pid {
                ep.tag = Some(tag);
            }
        }
    }

    fn count(&mut self, counter: &'static str, delta: u64) {
        self.sim.metrics.borrow_mut().count(counter, delta);
    }

    fn mark(&mut self, series: &'static str) {
        let now = self.sim.now;
        self.sim.metrics.borrow_mut().record_bytes(series, now, 1);
    }

    fn trace(&mut self, message: &str) {
        if self.sim.cfg.trace {
            self.sim
                .trace
                .push((self.sim.now, self.pid, message.to_string()));
        }
    }

    fn emit(&mut self, kind: obs::EventKind) {
        let node = self.node();
        self.sim
            .recorder
            .borrow_mut()
            .emit(self.sim.now.as_nanos(), node.0, self.pid.0, kind);
    }
}
