//! Hierarchical timing-wheel event scheduler (DESIGN §11).
//!
//! Replaces the kernel's former `BinaryHeap<Scheduled>` with a
//! six-level, 64-slot-per-level timing wheel while preserving the exact
//! `(at, seq)` total order the heap provided — the bit-identity of every
//! scenario digest depends on it.
//!
//! # Layout
//!
//! Timestamps are bucketed into *ticks* of `2^16` ns (≈ 65.5 µs). Level
//! `l` groups `64^l` ticks per slot, so the wheel spans `64^6 = 2^36`
//! ticks (≈ 52 simulated days); entries beyond the horizon overflow into
//! the unsorted `far` list and are re-bucketed on demand. The slot of an
//! entry is chosen tokio-style by the highest 6-bit digit group in which
//! its tick differs from the cursor, which guarantees two structural
//! invariants used below:
//!
//! 1. every occupied slot of level `l` lies strictly *ahead* of the
//!    cursor's digit at that level, and
//! 2. all entries of one slot share their tick digits above level `l`
//!    with the cursor, so a slot never mixes ticks from different wheel
//!    rotations.
//!
//! # Ordering
//!
//! Entries whose tick equals the cursor live in `current`, a small
//! binary heap ordered by exact `(at, seq)`. [`TimingWheel::pop_due`]
//! serves strictly from `current`; when it drains, the cursor advances
//! to the earliest occupied slot (always the lowest occupied level — a
//! higher level's first slot starts strictly later, because it differs
//! from the cursor in a more significant digit) and that slot cascades:
//! level-0 entries join `current`, higher-level entries re-bucket into
//! strictly lower levels (their tick now agrees with the cursor on the
//! old level's digit), so each cascade terminates. Since in-slot entries
//! all have ticks strictly greater than the cursor, the head of
//! `current` is always the global `(at, seq)` minimum.
//!
//! The cursor only ever advances to (a) the tick of a popped entry's
//! slot or (b) the deadline tick when nothing is due — both strictly
//! below every pending slot start, which preserves invariants 1 and 2.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::mem;

/// log2 of the tick granularity in nanoseconds (2^16 ns ≈ 65.5 µs).
const TICK_SHIFT: u32 = 16;
/// log2 of the slots per level.
const LEVEL_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Digit mask for one level.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel depth; `LEVELS * LEVEL_BITS` bits of tick are representable.
const LEVELS: usize = 6;

/// One scheduled item: full-resolution timestamp, tie-break sequence
/// number, payload.
struct Entry<T> {
    at: u64,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    // Reversed so the `current` BinaryHeap pops the earliest (at, seq).
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Level<T> {
    /// Bit `s` set iff `slots[s]` is non-empty.
    occupied: u64,
    slots: [Vec<Entry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A hierarchical timing wheel ordered by `(at, seq)`.
///
/// Drop-in replacement for a `BinaryHeap` keyed on `(at, seq)` with
/// amortised O(1) push and pop-due instead of O(log n):
///
/// ```
/// use simnet::TimingWheel;
///
/// let mut q = TimingWheel::new();
/// q.push(2_000_000, 1, "later");
/// q.push(5, 0, "first");
/// assert_eq!(q.pop_due(u64::MAX), Some((5, 0, "first")));
/// assert_eq!(q.pop_due(1_000_000), None); // nothing due yet
/// assert_eq!(q.pop_due(u64::MAX), Some((2_000_000, 1, "later")));
/// assert!(q.is_empty());
/// ```
pub struct TimingWheel<T> {
    /// Entries whose tick is at (or, defensively, behind) the cursor.
    /// `sorted[head..]` is an ascending `(at, seq)` run consumed from the
    /// front without shifting; `spill` catches the rare pushes that land
    /// out of order mid-tick. Together they always hold the global
    /// minimum when non-empty — the hot requeue pattern (same `at`,
    /// rising `seq`) appends to `sorted` in O(1) instead of sifting a
    /// binary heap.
    sorted: VecDeque<Entry<T>>,
    spill: BinaryHeap<Entry<T>>,
    levels: Vec<Level<T>>,
    /// Overflow beyond the wheel horizon, unsorted.
    far: Vec<Entry<T>>,
    /// Minimum `at` in `far` (`u64::MAX` when empty).
    far_min: u64,
    /// The tick the wheel is positioned at; no pending slot starts at or
    /// before it.
    cursor: u64,
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimingWheel {
            sorted: VecDeque::new(),
            spill: BinaryHeap::new(),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            far: Vec::new(),
            far_min: u64::MAX,
            cursor: 0,
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `value` at time `at` with tie-break `seq`. Scheduling in
    /// the past (relative to the last `pop_due` position) is tolerated:
    /// the entry lands in `current` and still pops in `(at, seq)` order.
    pub fn push(&mut self, at: u64, seq: u64, value: T) {
        self.len += 1;
        self.place(Entry { at, seq, value });
    }

    /// Pops the earliest `(at, seq)` entry if its time is `<= deadline`.
    /// Returns `None` when the queue is empty ([`is_empty`] distinguishes
    /// the cases) or when the earliest entry lies beyond the deadline —
    /// the entry stays queued, unlike a heap's pop-then-push-back.
    ///
    /// [`is_empty`]: Self::is_empty
    pub fn pop_due(&mut self, deadline: u64) -> Option<(u64, u64, T)> {
        let deadline_tick = deadline >> TICK_SHIFT;
        loop {
            if let Some(key) = self.current_min() {
                if key.0 > deadline {
                    return None;
                }
                if let Some(entry) = self.current_pop(key) {
                    self.len -= 1;
                    return Some((entry.at, entry.seq, entry.value));
                }
            }
            // `current` drained: advance to the earliest occupied slot.
            let wheel_next = self.next_slot();
            let far_tick = if self.far.is_empty() {
                None
            } else {
                Some(self.far_min >> TICK_SHIFT)
            };
            let target = match (wheel_next, far_tick) {
                (Some((_, _, start)), Some(far)) => Some(start.min(far)),
                (Some((_, _, start)), None) => Some(start),
                (None, far) => far,
            };
            let Some(target_tick) = target else {
                // Queue fully empty; park at the deadline.
                self.cursor = self.cursor.max(deadline_tick);
                return None;
            };
            if target_tick > deadline_tick {
                // Nothing can be due. The deadline tick is strictly below
                // every pending slot start, so parking there keeps every
                // slot strictly ahead of the cursor.
                self.cursor = self.cursor.max(deadline_tick);
                return None;
            }
            match wheel_next {
                Some((level, slot, start)) if start <= target_tick => {
                    self.cascade_slot(level, slot, start);
                }
                _ => self.cascade_far(),
            }
        }
    }

    /// Key of the earliest current-tick entry, across the sorted run and
    /// the spill heap.
    fn current_min(&self) -> Option<(u64, u64)> {
        let run = self.sorted.front().map(|e| (e.at, e.seq));
        let spill = self.spill.peek().map(|e| (e.at, e.seq));
        match (run, spill) {
            (Some(r), Some(s)) => Some(r.min(s)),
            (r, s) => r.or(s),
        }
    }

    /// Removes and returns the entry whose key `current_min` reported.
    fn current_pop(&mut self, key: (u64, u64)) -> Option<Entry<T>> {
        if let Some(e) = self.sorted.front() {
            if (e.at, e.seq) == key {
                return self.sorted.pop_front();
            }
        }
        self.spill.pop()
    }

    /// Admits an entry whose tick is at or behind the cursor: appended to
    /// the sorted run when it keeps the run ascending (the overwhelmingly
    /// common requeue pattern — same `at`, globally rising `seq`), spilled
    /// to the small heap otherwise.
    fn push_current(&mut self, entry: Entry<T>) {
        match self.sorted.back() {
            Some(back) if (back.at, back.seq) > (entry.at, entry.seq) => self.spill.push(entry),
            _ => self.sorted.push_back(entry),
        }
    }

    /// Earliest occupied slot: `(level, slot index, slot start tick)`.
    /// The lowest occupied level always holds the earliest start, because
    /// a higher level's candidate differs from the cursor in a more
    /// significant digit.
    fn next_slot(&self) -> Option<(usize, usize, u64)> {
        for (level, lvl) in self.levels.iter().enumerate() {
            if lvl.occupied == 0 {
                continue;
            }
            let group = (LEVEL_BITS * level) as u32;
            let c = ((self.cursor >> group) & SLOT_MASK) as u32;
            // Invariant 1: occupied slots lie strictly ahead of the
            // cursor digit; the mask is defensive.
            let bits = if c >= 63 {
                0
            } else {
                (lvl.occupied >> (c + 1)) << (c + 1)
            };
            debug_assert_eq!(bits, lvl.occupied, "slot at or behind the cursor");
            if bits == 0 {
                continue;
            }
            let slot = bits.trailing_zeros() as usize;
            let above = group + LEVEL_BITS as u32;
            let top = if above >= 64 {
                0
            } else {
                (self.cursor >> above) << above
            };
            let start = top | ((slot as u64) << group);
            return Some((level, slot, start));
        }
        None
    }

    /// Advances the cursor to `start` and cascades that slot: level-0
    /// entries enter `current`, higher-level entries re-bucket strictly
    /// lower (their tick shares the old level's digit with the new
    /// cursor), so repeated cascades terminate.
    fn cascade_slot(&mut self, level: usize, slot: usize, start: u64) {
        debug_assert!(start > self.cursor, "cascade must move forward");
        self.cursor = start;
        let mut drained = Vec::new();
        if let Some(lvl) = self.levels.get_mut(level) {
            lvl.occupied &= !(1u64 << (slot as u32 & 63));
            if let Some(bucket) = lvl.slots.get_mut(slot) {
                drained = mem::take(bucket);
            }
        }
        if level == 0 {
            // A level-0 slot spans exactly one tick, now equal to the
            // cursor, so every entry belongs to `current`. `current` is
            // empty here (a cascade only runs once it drains), so one
            // bulk sort replaces per-entry heap sifting.
            debug_assert!(self.sorted.is_empty() && self.spill.is_empty());
            drained.sort_unstable_by_key(|e| (e.at, e.seq));
            self.sorted.extend(drained.drain(..));
        } else {
            for entry in drained.drain(..) {
                self.place(entry);
            }
        }
        // Hand the allocation back so hot slots stop reallocating. A
        // re-bucketed entry always lands on a *lower* level, so the slot
        // just drained is still empty.
        if let Some(bucket) = self
            .levels
            .get_mut(level)
            .and_then(|lvl| lvl.slots.get_mut(slot))
        {
            if bucket.is_empty() {
                *bucket = drained;
            }
        }
    }

    /// Advances the cursor to the earliest far entry's tick and re-buckets
    /// the whole overflow list; entries still beyond the horizon return to
    /// `far`. Rare: only reached when the wheel proper is empty or the
    /// cursor crossed into far territory.
    fn cascade_far(&mut self) {
        self.cursor = self.cursor.max(self.far_min >> TICK_SHIFT);
        let mut stale = mem::take(&mut self.far);
        self.far_min = u64::MAX;
        for entry in stale.drain(..) {
            self.place(entry);
        }
    }

    /// Buckets one entry relative to the current cursor.
    fn place(&mut self, entry: Entry<T>) {
        let tick = entry.at >> TICK_SHIFT;
        if tick <= self.cursor {
            self.push_current(entry);
            return;
        }
        let xor = tick ^ self.cursor;
        let level = (63 - xor.leading_zeros()) as usize / LEVEL_BITS;
        if level >= LEVELS {
            self.far_min = self.far_min.min(entry.at);
            self.far.push(entry);
            return;
        }
        let group = (LEVEL_BITS * level) as u32;
        let slot = ((tick >> group) & SLOT_MASK) as usize;
        let misplaced = match self.levels.get_mut(level) {
            Some(lvl) => match lvl.slots.get_mut(slot) {
                Some(bucket) => {
                    bucket.push(entry);
                    lvl.occupied |= 1u64 << (slot as u32 & 63);
                    None
                }
                None => Some(entry),
            },
            None => Some(entry),
        };
        // Structurally unreachable (level < LEVELS, slot < 64); keep the
        // entry ordered correctly via the overflow list rather than panic.
        if let Some(entry) = misplaced {
            self.far_min = self.far_min.min(entry.at);
            self.far.push(entry);
        }
    }
}
