//! Run-wide measurement infrastructure.
//!
//! The experiments need three kinds of observation:
//!
//! * named counters (exception counts, restarts, messages),
//! * tagged byte accounting over time (Figure 5's group-communication
//!   bandwidth), and
//! * ad-hoc time series recorded by processes (round-trip samples).
//!
//! All of it lives in [`Metrics`], owned by the kernel and shared with the
//! driving experiment through `Rc<RefCell<..>>` handles.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// One tagged byte-transfer record: `len` bytes entered the wire at `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteRecord {
    /// Departure time of the segment.
    pub at: SimTime,
    /// Payload length in bytes.
    pub len: u64,
}

/// Aggregated measurements for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    bytes: BTreeMap<&'static str, Vec<ByteRecord>>,
}

impl Metrics {
    /// Creates an empty metrics store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Records `len` bytes sent at `at` under `tag`.
    pub fn record_bytes(&mut self, tag: &'static str, at: SimTime, len: u64) {
        self.bytes
            .entry(tag)
            .or_default()
            .push(ByteRecord { at, len });
    }

    /// Total bytes recorded under `tag`.
    pub fn total_bytes(&self, tag: &str) -> u64 {
        self.bytes
            .get(tag)
            .map(|v| v.iter().map(|r| r.len).sum())
            .unwrap_or(0)
    }

    /// Bytes recorded under `tag` within `[from, to)`.
    pub fn bytes_in_window(&self, tag: &str, from: SimTime, to: SimTime) -> u64 {
        self.bytes
            .get(tag)
            .map(|v| {
                v.iter()
                    .filter(|r| r.at >= from && r.at < to)
                    .map(|r| r.len)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Mean throughput in bytes/second for `tag` over `[from, to)`.
    ///
    /// Returns 0.0 for an empty window. This is the quantity plotted on the
    /// y-axis of the paper's Figure 5.
    pub fn bandwidth(&self, tag: &str, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let window: SimDuration = to - from;
        self.bytes_in_window(tag, from, to) as f64 / window.as_secs_f64()
    }

    /// The raw per-segment records for `tag`, in send order.
    pub fn byte_records(&self, tag: &str) -> &[ByteRecord] {
        self.bytes.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All tags that have byte records, sorted by name.
    pub fn byte_tags(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.bytes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("x", 1);
        m.count("x", 2);
        assert_eq!(m.counter("x"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn counters_iterate_sorted() {
        let mut m = Metrics::new();
        m.count("b", 1);
        m.count("a", 1);
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn byte_windows() {
        let mut m = Metrics::new();
        m.record_bytes("gcs", SimTime::from_millis(100), 50);
        m.record_bytes("gcs", SimTime::from_millis(200), 70);
        m.record_bytes("gcs", SimTime::from_millis(300), 90);
        assert_eq!(m.total_bytes("gcs"), 210);
        assert_eq!(
            m.bytes_in_window("gcs", SimTime::from_millis(150), SimTime::from_millis(301)),
            160
        );
        // Window end is exclusive.
        assert_eq!(
            m.bytes_in_window("gcs", SimTime::from_millis(100), SimTime::from_millis(300)),
            120
        );
    }

    #[test]
    fn bandwidth_bytes_per_second() {
        let mut m = Metrics::new();
        m.record_bytes("gcs", SimTime::from_millis(500), 3000);
        let bw = m.bandwidth("gcs", SimTime::ZERO, SimTime::from_secs(1));
        assert!((bw - 3000.0).abs() < 1e-9);
        assert_eq!(
            m.bandwidth("gcs", SimTime::from_secs(1), SimTime::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn unknown_tag_is_empty() {
        let m = Metrics::new();
        assert_eq!(m.total_bytes("nope"), 0);
        assert!(m.byte_records("nope").is_empty());
    }
}
