//! The scheduler choice-point API: pluggable event-ordering policies.
//!
//! The kernel's default dispatch order is the total `(at, seq)` order the
//! timing wheel maintains — FIFO per connection, deterministic overall.
//! That single order is one point in a much larger space of *physically
//! plausible* schedules: any two pending events whose timestamps fall
//! within network-jitter distance of each other could have arrived in
//! either order on a real network. This module surfaces those ties as
//! explicit **choice points** to a pluggable [`Scheduler`], which is how
//! the schedule-space explorer (`crates/explore`) enumerates adversarial
//! interleavings of message delivery, crash notification and timer fire
//! without perturbing the kernel's semantics.
//!
//! # Contract
//!
//! * [`FifoScheduler`] (the default wired by `Simulation::new`) keeps the
//!   kernel on its historical fast path: no choice points are surfaced
//!   and every scenario digest stays bit-identical.
//! * A non-FIFO scheduler sees a [`ChoicePoint`] whenever more than one
//!   queued event is *ready* — due within [`Scheduler::slack`] of the
//!   earliest pending event. Candidates are listed in `(at, seq)` order,
//!   so index 0 is always the kernel-default pick.
//! * Per-connection FIFO is never offered for reordering: of several
//!   candidates on one connection only the earliest is `eligible`, and
//!   the kernel clamps any ineligible or out-of-range pick back to the
//!   first eligible candidate (index 0 is always eligible). The scheduler
//!   chooses *which race resolves first*, never whether a byte stream is
//!   reordered.
//! * Picking a later candidate models late delivery, not time travel: the
//!   clock advances to the chosen event's timestamp and the deferred
//!   candidates keep their original `(at, seq)` keys, so they dispatch at
//!   an unchanged simulated time as soon as the scheduler lets them.
//!
//! A schedule is captured as a [`DecisionTrace`] — a versioned JSONL
//! artifact, digest-folded so reports can pin it — and replayed with a
//! [`ReplayScheduler`], which re-applies the recorded picks decision by
//! decision. Record and replay stay aligned because both sides gate on
//! the same [`GateCfg`] carried in the trace header.

use crate::ids::{ConnId, ProcessId};
use crate::time::{SimDuration, SimTime};

/// Upper bound on the candidates surfaced at one choice point. Bounds
/// both the kernel's pool-collection work and the explorer's branching
/// factor; events beyond the bound stay queued and simply surface at the
/// next choice point.
pub const MAX_CANDIDATES: usize = 8;

/// Schema tag written in the first line of every serialised
/// [`DecisionTrace`].
pub const TRACE_SCHEMA: &str = "decision-trace/1";

/// What kind of kernel action a [`Candidate`] would dispatch. Mirrors
/// the kernel's internal action set one-to-one, minus the coalesced
/// batch form (batching is disabled under a non-FIFO scheduler so every
/// event is individually reorderable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CandidateKind {
    /// A spawned process's `on_start` is due.
    StartProcess,
    /// A connection SYN arrives at the listener's node.
    ConnectAttempt,
    /// A SYN-ACK (or refusal) arrives back at the initiator.
    ConnectResult,
    /// Bytes arrive at an endpoint.
    DeliverData,
    /// An EOF arrives at an endpoint (peer closed or died).
    DeliverEof,
    /// A timer fires.
    TimerFire,
    /// A parked notification is re-delivered to its process.
    Notify,
}

impl CandidateKind {
    /// Static name, as used in kernel `Dispatch` trace events.
    pub fn name(self) -> &'static str {
        match self {
            CandidateKind::StartProcess => "start_process",
            CandidateKind::ConnectAttempt => "connect_attempt",
            CandidateKind::ConnectResult => "connect_result",
            CandidateKind::DeliverData => "deliver_data",
            CandidateKind::DeliverEof => "deliver_eof",
            CandidateKind::TimerFire => "timer_fire",
            CandidateKind::Notify => "notify",
        }
    }
}

/// One ready event offered at a [`ChoicePoint`]. Carries scheduling
/// metadata only — the payload stays inside the kernel.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Scheduled dispatch time.
    pub at: SimTime,
    /// Kernel sequence number (the FIFO tie-break).
    pub seq: u64,
    /// Action kind, for commutativity/conflict analysis.
    pub kind: CandidateKind,
    /// The handler class dispatching this candidate will invoke on the
    /// target process: the process-facing `Event` variant name
    /// (`"data_readable"`, `"timer_fired"`, `"conn_established"`, …),
    /// `"on_start"` for process launches, or the action name for
    /// kernel-internal steps with no process handler. This is the key
    /// a `conflict-relation/1` artifact uses to refine conflicts.
    pub class: &'static str,
    /// The process the action ultimately targets, when known: the
    /// notified/started process, the timer's owner, or the endpoint's
    /// owner. Two candidates targeting the same process *conflict* —
    /// their order is observable.
    pub target: Option<ProcessId>,
    /// The connection the action rides on, when any. Two candidates on
    /// one connection never commute (per-connection FIFO), so only the
    /// earliest is [`eligible`](Candidate::eligible).
    pub conn: Option<ConnId>,
    /// The connection whose kernel-side state the dispatched handler
    /// will touch, when any: the delivery endpoint for data/EOF, or the
    /// connection named by a parked notification's event. Unlike
    /// [`conn`](Candidate::conn) this carries no FIFO-eligibility
    /// meaning — it exists so a conflict relation can tell a re-drain
    /// of one connection's queue from reads of two distinct queues.
    pub touch_conn: Option<ConnId>,
    /// Whether the kernel will accept this candidate as a pick. The
    /// first candidate of every connection is eligible; later ones are
    /// not. Index 0 is always eligible.
    pub eligible: bool,
}

/// A set of ready events whose dispatch order the scheduler may decide.
/// Candidates appear in `(at, seq)` order; index 0 is the kernel's
/// default (FIFO) pick.
#[derive(Clone, Debug)]
pub struct ChoicePoint {
    /// Running count of choice points surfaced this run (0-based). Only
    /// multi-candidate pools are surfaced, so this is the index of the
    /// decision, not of the dispatch.
    pub step: u64,
    /// Simulated time of the earliest candidate.
    pub now: SimTime,
    /// The ready events, in `(at, seq)` order, at most
    /// [`MAX_CANDIDATES`] of them.
    pub candidates: Vec<Candidate>,
}

/// An event-ordering policy plugged into the kernel via
/// `Simulation::with_scheduler`.
///
/// Implementations must be deterministic functions of the choice-point
/// stream (plus their own construction-time state): the kernel replays
/// schedules by re-running the simulation, so any hidden entropy breaks
/// record/replay digest identity.
pub trait Scheduler {
    /// Picks the index of the candidate to dispatch next. Returns out of
    /// range or ineligible picks are clamped by the kernel to the first
    /// eligible candidate (index 0 is always a safe default).
    fn choose(&mut self, cp: &ChoicePoint) -> usize;

    /// `true` only for [`FifoScheduler`]: lets the kernel keep its
    /// historical dispatch loop (no candidate pooling, notify-wave
    /// coalescing enabled) so default runs are bit- and speed-identical
    /// to the pre-scheduler kernel.
    fn is_fifo(&self) -> bool {
        false
    }

    /// The reorder window: two events are tied (offered together) when
    /// the later one is due within `slack` of the earlier. Zero slack
    /// still surfaces exact `(at)` ties.
    fn slack(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// The default scheduler: always picks candidate 0, reproducing the
/// kernel's historical `(at, seq)` total order exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn choose(&mut self, _cp: &ChoicePoint) -> usize {
        0
    }

    fn is_fifo(&self) -> bool {
        true
    }
}

/// Which choice points consume a decision ordinal. Carried in the
/// [`DecisionTrace`] header so the recording and replaying schedulers
/// gate identically — a decision index in the trace means the same
/// choice point on both sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GateCfg {
    /// Choice points before this instant pass through un-gated (the
    /// scheduler defaults to candidate 0 and no ordinal is consumed).
    /// Lets the explorer skip the deterministic boot phase.
    pub window_start: SimTime,
    /// Choice points after this instant pass through un-gated.
    pub window_end: SimTime,
    /// At most this many decisions are gated per run (budget guard).
    pub max_steps: u64,
    /// The reorder window the scheduler advertises via
    /// [`Scheduler::slack`].
    pub slack: SimDuration,
}

impl Default for GateCfg {
    fn default() -> Self {
        GateCfg {
            window_start: SimTime::ZERO,
            window_end: SimTime::from_nanos(u64::MAX),
            max_steps: 4096,
            slack: SimDuration::ZERO,
        }
    }
}

/// Stateful gate: applies a [`GateCfg`] to the choice-point stream,
/// handing out consecutive decision ordinals to the admitted ones.
#[derive(Clone, Debug)]
pub struct Gate {
    cfg: GateCfg,
    used: u64,
}

impl Gate {
    /// A fresh gate over `cfg` (no ordinals consumed yet).
    pub fn new(cfg: GateCfg) -> Self {
        Gate { cfg, used: 0 }
    }

    /// The configuration this gate applies.
    pub fn cfg(&self) -> GateCfg {
        self.cfg
    }

    /// Decisions admitted so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Admits or passes `cp`: inside the window and under budget, the
    /// next decision ordinal is consumed and returned; otherwise `None`
    /// (the scheduler should fall back to the default pick).
    pub fn admit(&mut self, cp: &ChoicePoint) -> Option<u64> {
        if cp.now < self.cfg.window_start || cp.now > self.cfg.window_end {
            return None;
        }
        if self.used >= self.cfg.max_steps {
            return None;
        }
        let ordinal = self.used;
        self.used += 1;
        Some(ordinal)
    }
}

/// One recorded decision: at gated choice point `step`, among `n`
/// candidates (earliest due at `at_ns`), index `chosen` was dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Decision ordinal (the gate's count, 0-based).
    pub step: u64,
    /// Simulated time of the earliest candidate, in nanoseconds.
    pub at_ns: u64,
    /// Number of candidates offered.
    pub n: u64,
    /// Index picked (0 = kernel default).
    pub chosen: u64,
}

/// Errors from [`DecisionTrace::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input had no header line.
    MissingHeader,
    /// The header's schema tag was not [`TRACE_SCHEMA`].
    BadSchema,
    /// A line (1-based, counting the header) was not a decision record.
    BadLine(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::MissingHeader => write!(f, "decision trace: missing header line"),
            TraceError::BadSchema => {
                write!(f, "decision trace: header schema is not {TRACE_SCHEMA:?}")
            }
            TraceError::BadLine(n) => write!(f, "decision trace: malformed record at line {n}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A recorded schedule: the gate configuration it was taken under plus
/// every gated decision, in order. Serialises to versioned JSONL — one
/// header line, one line per decision — and folds to a stable digest so
/// reports can name a schedule by fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionTrace {
    /// Gating that was active while recording (replay must match it).
    pub gate: GateCfg,
    /// The gated decisions, ordered by `step`.
    pub decisions: Vec<Decision>,
}

impl DecisionTrace {
    /// A trace over `gate` with no decisions (the all-default schedule).
    pub fn empty(gate: GateCfg) -> Self {
        DecisionTrace {
            gate,
            decisions: Vec::new(),
        }
    }

    /// How many decisions deviate from the kernel default (index 0).
    /// This is the size the minimizer drives down.
    pub fn deviations(&self) -> usize {
        self.decisions.iter().filter(|d| d.chosen != 0).count()
    }

    /// Serialises the trace as versioned JSONL (header + one line per
    /// decision, each `\n`-terminated).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"slack_ns\":{},\"window_start_ns\":{},\"window_end_ns\":{},\"max_steps\":{}}}\n",
            self.gate.slack.as_nanos(),
            self.gate.window_start.as_nanos(),
            self.gate.window_end.as_nanos(),
            self.gate.max_steps,
        ));
        for d in &self.decisions {
            out.push_str(&format!(
                "{{\"step\":{},\"at_ns\":{},\"n\":{},\"chosen\":{}}}\n",
                d.step, d.at_ns, d.n, d.chosen,
            ));
        }
        out
    }

    /// Parses the JSONL form produced by [`to_jsonl`](Self::to_jsonl).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the header is missing, carries the
    /// wrong schema tag, or any record line is malformed.
    pub fn parse(input: &str) -> Result<Self, TraceError> {
        let mut lines = input
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or(TraceError::MissingHeader)?;
        if !header.contains(&format!("\"schema\":\"{TRACE_SCHEMA}\"")) {
            return Err(TraceError::BadSchema);
        }
        let field = |line: &str, key: &str, lineno: usize| -> Result<u64, TraceError> {
            json_u64(line, key).ok_or(TraceError::BadLine(lineno + 1))
        };
        let gate = GateCfg {
            slack: SimDuration::from_nanos(field(header, "slack_ns", 0)?),
            window_start: SimTime::from_nanos(field(header, "window_start_ns", 0)?),
            window_end: SimTime::from_nanos(field(header, "window_end_ns", 0)?),
            max_steps: field(header, "max_steps", 0)?,
        };
        let mut decisions = Vec::new();
        for (lineno, line) in lines {
            decisions.push(Decision {
                step: field(line, "step", lineno)?,
                at_ns: field(line, "at_ns", lineno)?,
                n: field(line, "n", lineno)?,
                chosen: field(line, "chosen", lineno)?,
            });
        }
        Ok(DecisionTrace { gate, decisions })
    }

    /// FNV-1a fold of the serialised JSONL bytes: a stable fingerprint
    /// for naming and comparing schedules across runs and machines.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_jsonl().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Extracts the unsigned integer following `"key":` in a JSON-ish line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let idx = line.find(&pat)? + pat.len();
    let rest = line.get(idx..)?;
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest.get(..end)?.parse().ok()
}

/// Replays a recorded schedule: at each gated choice point, applies the
/// next recorded pick; everywhere else (and past the end of the
/// recording) it falls back to the kernel default. Driving the same
/// simulation with the trace it recorded reproduces the run bit for
/// bit.
#[derive(Clone, Debug)]
pub struct ReplayScheduler {
    gate: Gate,
    choices: Vec<u64>,
}

impl ReplayScheduler {
    /// A replayer over an explicit decision vector: `choices[i]` is the
    /// pick at gated decision `i` (0 = kernel default). Indices past the
    /// end replay as 0, so a truncated vector is a valid (shorter)
    /// schedule — the property the minimizer's prefix bisection rests
    /// on.
    pub fn new(gate: GateCfg, choices: Vec<u64>) -> Self {
        ReplayScheduler {
            gate: Gate::new(gate),
            choices,
        }
    }

    /// A replayer for `trace`, gating exactly as the recorder did.
    pub fn from_trace(trace: &DecisionTrace) -> Self {
        let mut choices = vec![0u64; trace.decisions.len()];
        for d in &trace.decisions {
            if let Some(slot) = choices.get_mut(d.step as usize) {
                *slot = d.chosen;
            }
        }
        ReplayScheduler::new(trace.gate, choices)
    }

    /// Decisions consumed so far (gated choice points seen).
    pub fn decisions_seen(&self) -> u64 {
        self.gate.used()
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, cp: &ChoicePoint) -> usize {
        match self.gate.admit(cp) {
            Some(ordinal) => self.choices.get(ordinal as usize).copied().unwrap_or(0) as usize,
            None => 0,
        }
    }

    fn slack(&self) -> SimDuration {
        self.gate.cfg().slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> DecisionTrace {
        DecisionTrace {
            gate: GateCfg {
                window_start: SimTime::from_nanos(1_000),
                window_end: SimTime::from_nanos(9_000),
                max_steps: 64,
                slack: SimDuration::from_nanos(500),
            },
            decisions: vec![
                Decision {
                    step: 0,
                    at_ns: 1_200,
                    n: 3,
                    chosen: 2,
                },
                Decision {
                    step: 1,
                    at_ns: 4_700,
                    n: 2,
                    chosen: 0,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        let back = DecisionTrace::parse(&text).expect("parses");
        assert_eq!(back, trace);
        assert_eq!(back.digest(), trace.digest());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!(DecisionTrace::parse(""), Err(TraceError::MissingHeader));
        assert_eq!(
            DecisionTrace::parse("{\"schema\":\"nope/9\"}\n"),
            Err(TraceError::BadSchema)
        );
        let trace = sample_trace();
        let mut text = trace.to_jsonl();
        text.push_str("{\"step\":oops}\n");
        assert!(matches!(
            DecisionTrace::parse(&text),
            Err(TraceError::BadLine(_))
        ));
    }

    #[test]
    fn gate_respects_window_and_budget() {
        let cfg = GateCfg {
            window_start: SimTime::from_nanos(100),
            window_end: SimTime::from_nanos(200),
            max_steps: 2,
            slack: SimDuration::ZERO,
        };
        let mut gate = Gate::new(cfg);
        let cp = |ns: u64| ChoicePoint {
            step: 0,
            now: SimTime::from_nanos(ns),
            candidates: Vec::new(),
        };
        assert_eq!(gate.admit(&cp(50)), None); // before window
        assert_eq!(gate.admit(&cp(150)), Some(0));
        assert_eq!(gate.admit(&cp(160)), Some(1));
        assert_eq!(gate.admit(&cp(170)), None); // budget exhausted
        assert_eq!(gate.admit(&cp(250)), None); // past window
    }

    #[test]
    fn replay_follows_choices_then_defaults() {
        let cfg = GateCfg {
            max_steps: 8,
            ..GateCfg::default()
        };
        let mut replay = ReplayScheduler::new(cfg, vec![1, 0, 2]);
        let cp = ChoicePoint {
            step: 0,
            now: SimTime::from_nanos(10),
            candidates: Vec::new(),
        };
        assert_eq!(replay.choose(&cp), 1);
        assert_eq!(replay.choose(&cp), 0);
        assert_eq!(replay.choose(&cp), 2);
        assert_eq!(replay.choose(&cp), 0); // past the recording
    }

    #[test]
    fn deviations_counts_non_default_picks() {
        let trace = sample_trace();
        assert_eq!(trace.deviations(), 1);
    }
}
