//! Simulated time.
//!
//! The simulator measures time in nanoseconds from the start of the run.
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span. Both are
//! thin newtypes over `u64` so they are `Copy`, totally ordered and cheap to
//! schedule on.

use core::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time, in nanoseconds since the start of
/// the simulation.
///
/// ```
/// use simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use simnet::SimDuration;
///
/// let d = SimDuration::from_micros(750);
/// assert_eq!(d.as_millis_f64(), 0.75);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the start of the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the start of the run, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// Saturates to zero if `earlier` is later than `self`, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "duration must be finite and non-negative, got {millis}"
        );
        SimDuration((millis * 1e6).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Element-wise maximum of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a longer SimDuration from a shorter one"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_micros(250).as_nanos(), 250_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn from_millis_f64_rounds() {
        assert_eq!(SimDuration::from_millis_f64(0.75).as_nanos(), 750_000);
        assert_eq!(SimDuration::from_millis_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_millis_f64_rejects_negative() {
        let _ = SimDuration::from_millis_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{:?}", SimTime::from_millis(2)), "t+2.000ms");
    }
}
