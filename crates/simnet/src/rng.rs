//! Deterministic randomness.
//!
//! Every source of randomness in the simulator derives from a single master
//! seed, so a run is exactly reproducible. Each process gets its own stream
//! (seeded from the master seed and its [`ProcessId`]) so that adding or
//! removing one process does not perturb the random draws of the others.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::ids::ProcessId;

/// A deterministic random stream handed to processes via
/// [`SysApi::rng`](crate::SysApi::rng).
///
/// Wraps a seeded [`StdRng`]; the newtype keeps the concrete generator out
/// of the public API (C-NEWTYPE-HIDE) while still implementing [`RngCore`]
/// so the full `rand` adapter ecosystem works on it.
#[derive(Clone, Debug)]
pub struct SimRng(StdRng);

impl SimRng {
    /// Creates the stream for `pid` under `master_seed`.
    pub fn for_process(master_seed: u64, pid: ProcessId) -> Self {
        SimRng(StdRng::seed_from_u64(mix(master_seed, pid.raw())))
    }

    /// Creates an auxiliary kernel stream (latency sampling etc.) under
    /// `master_seed`, differentiated by `stream`.
    pub fn for_kernel(master_seed: u64, stream: u64) -> Self {
        SimRng(StdRng::seed_from_u64(mix(master_seed, stream ^ 0xD15_7A4C)))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

/// SplitMix64-style mixing so nearby seeds yield unrelated streams.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::for_process(7, ProcessId(3));
        let mut b = SimRng::for_process(7, ProcessId(3));
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_pids_differ() {
        let mut a = SimRng::for_process(7, ProcessId(3));
        let mut b = SimRng::for_process(7, ProcessId(4));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn kernel_stream_differs_from_process_stream() {
        let mut a = SimRng::for_kernel(7, 3);
        let mut b = SimRng::for_process(7, ProcessId(3));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::for_kernel(1, 1);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mix_spreads_sequential_inputs() {
        // Sequential seeds should not produce sequential outputs.
        let a = mix(1, 1);
        let b = mix(1, 2);
        assert!(a.abs_diff(b) > 1 << 32);
    }
}
