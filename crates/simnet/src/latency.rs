//! Network latency, OS noise, and message-loss models.
//!
//! The paper measures wall-clock round-trip times on an Emulab LAN of
//! 850 MHz hosts. We replace the physical testbed with a parameterised model:
//!
//! * a base one-way link latency plus uniform jitter,
//! * an "OS hiccup" noise source reproducing the rare 3-sigma spikes the
//!   paper attributes to file-system journaling (section 5.2.5), and
//! * a message-loss model that — because our streams are reliable like TCP —
//!   manifests as a retransmission *delay* rather than an actual drop.
//!
//! Defaults are calibrated so a request/reply exchange with light processing
//! costs lands near the paper's 0.75 ms fault-free round-trip time.

use rand::Rng;

use crate::ids::NodeId;
use crate::time::SimDuration;

/// One-way link latency model between two nodes.
///
/// ```
/// use simnet::LatencyModel;
///
/// let model = LatencyModel::default();
/// assert!(model.base_remote > model.base_local);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Base one-way latency between processes on *different* nodes.
    pub base_remote: SimDuration,
    /// Base one-way latency between processes on the *same* node
    /// (loopback).
    pub base_local: SimDuration,
    /// Upper bound of uniform jitter added to every delivery.
    pub jitter: SimDuration,
    /// Per-byte serialisation delay (models bandwidth; 0 disables).
    pub per_byte: SimDuration,
}

impl Default for LatencyModel {
    /// Calibrated to the paper's Emulab LAN: ~0.33 ms one-way remote,
    /// ~0.02 ms loopback, ±0.01 ms jitter, negligible serialisation cost
    /// for the ~100-byte GIOP messages of the test application.
    fn default() -> Self {
        LatencyModel {
            base_remote: SimDuration::from_micros(330),
            base_local: SimDuration::from_micros(20),
            jitter: SimDuration::from_micros(10),
            per_byte: SimDuration::from_nanos(8),
        }
    }
}

impl LatencyModel {
    /// A zero-latency model, useful in unit tests that only care about
    /// message flow rather than timing.
    pub fn instant() -> Self {
        LatencyModel {
            base_remote: SimDuration::ZERO,
            base_local: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            per_byte: SimDuration::ZERO,
        }
    }

    /// Samples the one-way delivery latency for `len` bytes from `src` to
    /// `dst`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        len: usize,
    ) -> SimDuration {
        let base = if src == dst {
            self.base_local
        } else {
            self.base_remote
        };
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()))
        };
        base + jitter + SimDuration::from_nanos(self.per_byte.as_nanos() * len as u64)
    }
}

/// Rare large delays modelling OS-level interference (journaling, paging).
///
/// The paper observes round-trip spikes exceeding the mean by 3 sigma in
/// 1–2.5 % of invocations, with a fault-free maximum of 2.3 ms. A spike adds
/// a uniform extra delay in `[spike_min, spike_max]` with probability
/// `probability` per delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    /// Probability that a given delivery suffers a spike.
    pub probability: f64,
    /// Minimum extra delay of a spike.
    pub spike_min: SimDuration,
    /// Maximum extra delay of a spike.
    pub spike_max: SimDuration,
}

impl Default for NoiseModel {
    /// Calibrated to section 5.2.5: ~0.8 % of deliveries spike (two
    /// deliveries per invocation yields 1–2 % of round trips), adding
    /// 0.3–1.5 ms so the worst fault-free round trip is ≈2.3 ms.
    fn default() -> Self {
        NoiseModel {
            probability: 0.008,
            spike_min: SimDuration::from_micros(300),
            spike_max: SimDuration::from_micros(1500),
        }
    }
}

impl NoiseModel {
    /// Disables OS noise entirely.
    pub fn none() -> Self {
        NoiseModel {
            probability: 0.0,
            spike_min: SimDuration::ZERO,
            spike_max: SimDuration::ZERO,
        }
    }

    /// Samples the extra spike delay for one delivery (usually zero).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.probability <= 0.0 || !rng.gen_bool(self.probability.min(1.0)) {
            return SimDuration::ZERO;
        }
        if self.spike_max <= self.spike_min {
            return self.spike_min;
        }
        SimDuration::from_nanos(
            rng.gen_range(self.spike_min.as_nanos()..=self.spike_max.as_nanos()),
        )
    }
}

/// Message-loss model.
///
/// The paper's fault model includes message-loss faults. Since the simulated
/// streams are reliable and ordered like TCP, a "lost" segment is modelled as
/// the retransmission delay the transport would incur, preserving ordering.
#[derive(Clone, Debug, PartialEq)]
pub struct LossModel {
    /// Probability that a segment needs a retransmission.
    pub probability: f64,
    /// Delay added for each retransmission (cf. a TCP RTO).
    pub retransmit_delay: SimDuration,
}

impl Default for LossModel {
    /// No loss by default; experiments opt in.
    fn default() -> Self {
        LossModel {
            probability: 0.0,
            retransmit_delay: SimDuration::from_millis(200),
        }
    }
}

impl LossModel {
    /// A model that never loses messages.
    pub fn none() -> Self {
        Self::default()
    }

    /// Samples the extra retransmission delay for one segment.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.probability <= 0.0 || !rng.gen_bool(self.probability.min(1.0)) {
            SimDuration::ZERO
        } else {
            self.retransmit_delay
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn local_latency_below_remote() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let local = m.sample(&mut rng, NodeId(0), NodeId(0), 100);
        let remote = m.sample(&mut rng, NodeId(0), NodeId(1), 100);
        assert!(local < remote);
    }

    #[test]
    fn instant_model_is_zero() {
        let m = LatencyModel::instant();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            m.sample(&mut rng, NodeId(0), NodeId(1), 10_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn per_byte_scales_with_length() {
        let mut m = LatencyModel::instant();
        m.per_byte = SimDuration::from_nanos(10);
        let mut rng = StdRng::seed_from_u64(1);
        let short = m.sample(&mut rng, NodeId(0), NodeId(1), 10);
        let long = m.sample(&mut rng, NodeId(0), NodeId(1), 1000);
        assert_eq!(long.as_nanos() - short.as_nanos(), 10 * 990);
    }

    #[test]
    fn noise_none_never_spikes() {
        let n = NoiseModel::none();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(n.sample(&mut rng), SimDuration::ZERO);
        }
    }

    #[test]
    fn noise_spike_rate_close_to_probability() {
        let n = NoiseModel {
            probability: 0.1,
            spike_min: SimDuration::from_micros(100),
            spike_max: SimDuration::from_micros(200),
        };
        let mut rng = StdRng::seed_from_u64(42);
        let spikes = (0..20_000)
            .filter(|_| !n.sample(&mut rng).is_zero())
            .count();
        let rate = spikes as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn noise_spike_within_bounds() {
        let n = NoiseModel {
            probability: 1.0,
            spike_min: SimDuration::from_micros(100),
            spike_max: SimDuration::from_micros(200),
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let d = n.sample(&mut rng);
            assert!(d >= SimDuration::from_micros(100) && d <= SimDuration::from_micros(200));
        }
    }

    #[test]
    fn loss_default_is_lossless() {
        let l = LossModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(l.sample(&mut rng), SimDuration::ZERO);
        }
    }

    #[test]
    fn loss_adds_retransmit_delay() {
        let l = LossModel {
            probability: 1.0,
            retransmit_delay: SimDuration::from_millis(5),
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(l.sample(&mut rng), SimDuration::from_millis(5));
    }
}
