//! Identifier newtypes for simulated entities.
//!
//! Every entity the kernel hands out is identified by an opaque, `Copy`
//! newtype so they cannot be confused for one another (C-NEWTYPE). Identifiers
//! are allocated densely by the kernel and are unique for the lifetime of a
//! [`Simulation`](crate::Simulation).

use core::fmt;

/// Identifies a simulated host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifies a simulated process. Unique across the whole run, including
/// across restarts: a relaunched replica gets a fresh `ProcessId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u64);

/// Identifies one endpoint of a connection, analogous to a file descriptor.
///
/// The two ends of one connection have *different* `ConnId`s, exactly as two
/// processes hold different socket descriptors for the same TCP connection.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub(crate) u64);

/// Identifies a listening socket, as returned by
/// [`SysApi::listen`](crate::SysApi::listen).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ListenerId(pub(crate) u64);

/// Identifies a pending timer, as returned by
/// [`SysApi::set_timer`](crate::SysApi::set_timer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A transport port on a node (cf. a TCP port).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

/// A network address: a node plus a port.
///
/// ```
/// use simnet::{Addr, NodeId, Port};
///
/// # fn with(node: NodeId) {
/// let addr = Addr::new(node, Port(2809));
/// assert_eq!(addr.port, Port(2809));
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// The hosting node.
    pub node: NodeId,
    /// The port on that node.
    pub port: Port,
}

impl Addr {
    /// Creates an address from a node and port.
    pub fn new(node: NodeId, port: Port) -> Self {
        Addr { node, port }
    }
}

impl NodeId {
    /// The raw index of this node (stable for the lifetime of the run).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a `NodeId` from an index previously obtained via
    /// [`index`](Self::index) — used to map IOR host names (`"node3"`)
    /// back onto simulated nodes.
    pub fn from_index(index: u32) -> Self {
        NodeId(index)
    }
}

impl ProcessId {
    /// The raw value, useful for seeding per-process randomness.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl ConnId {
    /// The raw descriptor value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

macro_rules! impl_id_fmt {
    ($ty:ident, $prefix:literal) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id_fmt!(NodeId, "node");
impl_id_fmt!(ProcessId, "pid");
impl_id_fmt!(ConnId, "conn");
impl_id_fmt!(ListenerId, "lsn");
impl_id_fmt!(TimerId, "tmr");
impl_id_fmt!(Port, "port");

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats_are_nonempty_and_distinct() {
        assert_eq!(format!("{:?}", NodeId(3)), "node3");
        assert_eq!(format!("{:?}", ProcessId(7)), "pid7");
        assert_eq!(format!("{:?}", ConnId(1)), "conn1");
        assert_eq!(format!("{:?}", ListenerId(2)), "lsn2");
        assert_eq!(format!("{:?}", TimerId(9)), "tmr9");
        assert_eq!(format!("{:?}", Addr::new(NodeId(1), Port(80))), "node1:80");
    }

    #[test]
    fn addr_equality() {
        let a = Addr::new(NodeId(1), Port(80));
        let b = Addr::new(NodeId(1), Port(80));
        let c = Addr::new(NodeId(1), Port(81));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
