//! The process model: event-driven state machines behind a syscall-shaped
//! interface.
//!
//! A simulated process implements [`Process`] and reacts to [`Event`]s the
//! kernel delivers (timer fires, connection establishment, readable data,
//! peer EOF). All its effects flow through the [`SysApi`] context, which is
//! deliberately shaped like the eight UNIX calls the paper's interceptor
//! overrides (`socket`/`connect`/`listen`/`accept`/`read`/`writev`/`close`/
//! `select`): `connect`, `listen`, `read`, `write` and `close` appear
//! directly; `accept` and `select` are subsumed by the event loop
//! ([`Event::Accepted`] and [`Event::DataReadable`]).
//!
//! Because the whole API is a trait, MEAD's interceptor can wrap a process
//! transparently — exactly the library-interpositioning trick of the paper —
//! by implementing [`SysApi`] on a façade that filters reads and writes
//! before delegating to the real kernel context.

use bytes::Bytes;

use crate::error::SysError;
use crate::ids::{Addr, ConnId, ListenerId, NodeId, Port, ProcessId, TimerId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// An event delivered to a process by the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A timer set with [`SysApi::set_timer`] fired. `token` is the value
    /// the process supplied, so it can multiplex many logical timers.
    TimerFired {
        /// The fired timer.
        timer: TimerId,
        /// Caller-chosen discriminator.
        token: u64,
    },
    /// An outbound [`SysApi::connect`] completed; the connection is now
    /// writable.
    ConnEstablished {
        /// The connection originally returned by `connect`.
        conn: ConnId,
    },
    /// An outbound [`SysApi::connect`] failed: nothing was listening at the
    /// target address (cf. `ECONNREFUSED`). This is how clients holding a
    /// *stale* object reference to a dead replica discover their mistake.
    ConnRefused {
        /// The connection originally returned by `connect`.
        conn: ConnId,
    },
    /// A listener accepted an inbound connection.
    Accepted {
        /// The listener that matched.
        listener: ListenerId,
        /// The freshly created server-side endpoint.
        conn: ConnId,
        /// The connecting process's node (source address).
        peer_node: NodeId,
    },
    /// New bytes are available on `conn`; drain them with [`SysApi::read`].
    DataReadable {
        /// The readable connection.
        conn: ConnId,
    },
    /// The peer closed the connection or died; after draining buffered data,
    /// reads will report EOF. This is the signal MEAD and the reactive
    /// schemes use for crash detection.
    PeerClosed {
        /// The half-closed connection.
        conn: ConnId,
    },
}

/// The result of a [`SysApi::read`]: any drained bytes plus whether the
/// stream has reached end-of-file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Bytes drained from the receive buffer (possibly empty).
    pub data: Bytes,
    /// `true` when the buffer is empty *and* the peer has closed, i.e. a
    /// `read()` returning 0 in UNIX terms.
    pub eof: bool,
}

/// Why a process terminated; recorded in the kernel trace and visible to
/// tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// Clean, voluntary shutdown (e.g. graceful rejuvenation hand-off).
    Graceful,
    /// A crash fault: resource exhaustion, injected kill, node failure.
    Crash(String),
}

/// A factory for a process to be spawned, used by the Recovery Manager to
/// launch fresh replicas.
pub type ProcessFactory = Box<dyn FnOnce() -> Box<dyn Process>>;

/// The syscall-shaped interface through which processes act on the world.
///
/// See the `process` module docs for how this maps onto the paper's eight
/// intercepted UNIX calls.
pub trait SysApi {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// The node hosting this process.
    fn my_node(&self) -> NodeId;
    /// This process's id.
    fn my_pid(&self) -> ProcessId;

    /// Starts listening on `port`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::PortInUse`] if another live process already
    /// listens on this node/port.
    fn listen(&mut self, port: Port) -> Result<ListenerId, SysError>;

    /// Stops listening. Unknown ids are ignored (idempotent, like `close`).
    fn unlisten(&mut self, listener: ListenerId);

    /// Begins connecting to `addr`; completion is signalled later by
    /// [`Event::ConnEstablished`] or [`Event::ConnRefused`].
    fn connect(&mut self, addr: Addr) -> ConnId;

    /// Writes `bytes` to `conn`. Delivery is reliable and ordered.
    ///
    /// # Errors
    ///
    /// Fails with [`SysError::NotEstablished`] before the handshake
    /// completes, or [`SysError::PeerClosed`]/[`SysError::ClosedLocally`]
    /// after either side closed.
    fn write(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), SysError>;

    /// Drains up to `max` buffered bytes from `conn`.
    ///
    /// # Errors
    ///
    /// Fails with [`SysError::UnknownConn`] or [`SysError::ClosedLocally`].
    fn read(&mut self, conn: ConnId, max: usize) -> Result<ReadOutcome, SysError>;

    /// Closes our end of `conn`; the peer will observe EOF. Idempotent.
    fn close(&mut self, conn: ConnId);

    /// Arms a one-shot timer that fires `after` from now, delivering
    /// [`Event::TimerFired`] with `token`.
    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId;

    /// Cancels a pending timer. Unknown or fired ids are ignored.
    fn cancel_timer(&mut self, timer: TimerId);

    /// Launches a new process on `node` after the configured process-launch
    /// latency (the Recovery Manager's "factory" operation in Figure 1).
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NoSuchTarget`] if the node does not exist or has
    /// crashed.
    fn spawn(
        &mut self,
        node: NodeId,
        name: &str,
        factory: ProcessFactory,
    ) -> Result<ProcessId, SysError>;

    /// Terminates this process at the end of the current event handler.
    /// All its connections deliver EOF to their peers and its listeners are
    /// removed — exactly how a crashed CORBA server manifests to clients.
    fn exit(&mut self, reason: ExitReason);

    /// Models CPU work: the process is busy for `cost`, delaying both its
    /// subsequent sends in this handler and its next event delivery. This is
    /// how per-message processing costs (GIOP parsing, IOR table lookups,
    /// MEAD piggyback scanning) become visible in round-trip times.
    fn charge_cpu(&mut self, cost: SimDuration);

    /// Deterministic per-process random stream.
    fn rng(&mut self) -> &mut SimRng;

    /// Associates an accounting tag with a connection; all bytes written on
    /// it are recorded under this tag in [`Metrics`](crate::Metrics)
    /// (used for the paper's Figure 5 bandwidth measurement).
    fn tag_conn(&mut self, conn: ConnId, tag: &'static str);

    /// Increments a named metric counter.
    fn count(&mut self, counter: &'static str, delta: u64);

    /// Records a timestamped occurrence under `series` in
    /// [`Metrics`](crate::Metrics) (retrievable via
    /// [`Metrics::byte_records`](crate::Metrics::byte_records)). Used to
    /// measure events that are invisible to the application, such as the
    /// interceptor's transparent connection redirects.
    fn mark(&mut self, series: &'static str);

    /// Appends a line to the kernel trace (no-op unless tracing is on).
    fn trace(&mut self, message: &str);

    /// Emits a typed observability event into the run's trace
    /// ([`obs::Recorder`]), stamped with the current simulated time and
    /// this process's node/pid. This is how the MEAD interceptors, the
    /// Recovery Manager and the ORB retry path report recovery phases.
    fn emit(&mut self, kind: obs::EventKind);
}

/// A simulated process: an event-driven state machine.
///
/// Implementations should be deterministic given the event sequence and
/// their [`SysApi::rng`] stream — the paper assumes "deterministic,
/// reproducible behavior of the application and the ORB".
pub trait Process {
    /// Called once when the process starts running (after launch latency).
    fn on_start(&mut self, sys: &mut dyn SysApi);

    /// Called for every event addressed to this process.
    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event);

    /// Human-readable label used in traces.
    fn label(&self) -> &str {
        "process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_outcome_default_is_empty_not_eof() {
        let r = ReadOutcome::default();
        assert!(r.data.is_empty());
        assert!(!r.eof);
    }

    #[test]
    fn exit_reason_equality() {
        assert_eq!(ExitReason::Graceful, ExitReason::Graceful);
        assert_ne!(
            ExitReason::Graceful,
            ExitReason::Crash("memory exhausted".into())
        );
    }
}
