//! Segmented, zero-copy receive buffering.
//!
//! The simulator's original endpoint receive buffer was a `VecDeque<u8>`:
//! every delivered segment was appended **byte by byte** and every `read`
//! drained into a fresh `Vec` before wrapping it in [`Bytes`] — two full
//! copies (plus per-byte overhead) on the hottest path in the kernel.
//!
//! [`RecvQueue`] keeps the delivered [`Bytes`] segments themselves.
//! Delivery is an O(1) enqueue of an already-refcounted buffer; a read
//! that consumes a whole segment (the overwhelmingly common case — the
//! interceptors read with `max` far larger than a GIOP frame) pops it
//! back out without touching the payload, and a partial read is an O(1)
//! [`Bytes::split_to`]. Only a read spanning multiple segments copies,
//! and then exactly once into a buffer sized up front.
//!
//! Observational equivalence with the old byte queue — same bytes, same
//! order, same lengths returned for every `push`/`read(max)`/`clear`
//! interleaving — is pinned down by a property test in
//! `crates/simnet/tests/recv_queue_equivalence.rs`.

use std::collections::VecDeque;

use bytes::Bytes;

/// A FIFO of received byte segments supporting zero-copy bulk reads.
#[derive(Debug, Default, Clone)]
pub struct RecvQueue {
    segments: VecDeque<Bytes>,
    len: usize,
}

impl RecvQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total buffered bytes across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues a delivered segment without copying it. Empty segments
    /// are dropped so they can never stall EOF detection.
    pub fn push(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.len = self.len.saturating_add(data.len());
        self.segments.push_back(data);
    }

    /// Dequeues up to `max` bytes, preserving arrival order.
    ///
    /// Fast paths return a view of an existing segment (no copy); a read
    /// spanning segments copies once into an exactly-sized buffer.
    pub fn read(&mut self, max: usize) -> Bytes {
        let take = max.min(self.len);
        if take == 0 {
            return Bytes::new();
        }
        // `len` counts exactly the bytes in `segments`, so `take` bytes are
        // really available; every queue access below still degrades to a
        // short read rather than panicking if that invariant ever broke
        // (the simnet kernel is a detlint R3 no-panic zone).
        self.len -= take;

        match self.segments.front_mut() {
            None => {
                self.len = 0; // resync; unreachable while len is accounted
                return Bytes::new();
            }
            Some(front) if take < front.len() => {
                // Partial read of the front segment: O(1) split.
                return front.split_to(take);
            }
            Some(front) if take == front.len() => {
                // Whole-segment read: O(1) pop.
                if let Some(seg) = self.segments.pop_front() {
                    return seg;
                }
            }
            Some(_) => {}
        }

        // Spanning read: one copy into a buffer reserved up front.
        let mut out = Vec::with_capacity(take);
        let mut remaining = take;
        while remaining > 0 {
            let Some(front) = self.segments.front_mut() else {
                break;
            };
            if front.len() > remaining {
                out.extend_from_slice(&front.split_to(remaining));
                break;
            }
            remaining -= front.len();
            if let Some(seg) = self.segments.pop_front() {
                out.extend_from_slice(&seg);
            }
        }
        Bytes::from(out)
    }

    /// Discards all buffered bytes.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_whole_segment_read_is_the_same_buffer() {
        let mut q = RecvQueue::new();
        q.push(Bytes::from_static(b"hello"));
        assert_eq!(q.len(), 5);
        let out = q.read(64);
        assert_eq!(&out[..], b"hello");
        assert!(q.is_empty());
    }

    #[test]
    fn partial_read_splits_front_segment() {
        let mut q = RecvQueue::new();
        q.push(Bytes::from_static(b"abcdef"));
        assert_eq!(&q.read(2)[..], b"ab");
        assert_eq!(q.len(), 4);
        assert_eq!(&q.read(2)[..], b"cd");
        assert_eq!(&q.read(100)[..], b"ef");
        assert!(q.is_empty());
    }

    #[test]
    fn spanning_read_concatenates_in_order() {
        let mut q = RecvQueue::new();
        q.push(Bytes::from_static(b"ab"));
        q.push(Bytes::from_static(b"cd"));
        q.push(Bytes::from_static(b"ef"));
        assert_eq!(&q.read(5)[..], b"abcde");
        assert_eq!(q.len(), 1);
        assert_eq!(&q.read(5)[..], b"f");
    }

    #[test]
    fn zero_and_empty_reads() {
        let mut q = RecvQueue::new();
        assert_eq!(q.read(10).len(), 0);
        q.push(Bytes::from_static(b"x"));
        assert_eq!(q.read(0).len(), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_segments_are_dropped() {
        let mut q = RecvQueue::new();
        q.push(Bytes::new());
        assert!(q.is_empty());
        q.push(Bytes::from_static(b"a"));
        q.push(Bytes::new());
        q.push(Bytes::from_static(b"b"));
        assert_eq!(&q.read(10)[..], b"ab");
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = RecvQueue::new();
        q.push(Bytes::from_static(b"abc"));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.read(10).len(), 0);
    }

    #[test]
    fn interleaved_push_read_preserves_fifo() {
        let mut q = RecvQueue::new();
        q.push(Bytes::from_static(b"123"));
        assert_eq!(&q.read(1)[..], b"1");
        q.push(Bytes::from_static(b"45"));
        assert_eq!(&q.read(4)[..], b"2345");
        assert!(q.is_empty());
    }
}
