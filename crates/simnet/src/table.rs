//! Generation-tagged slab storage for kernel state tables (DESIGN §11).
//!
//! The kernel keys processes, listeners and timers by dense, monotonic
//! external ids (`ProcessId`, `ListenerId`, `TimerId` — never reused, so
//! trace output and digests are stable), while the hot-path storage
//! behind them is a [`Slab`] that *does* reuse slots. Every slot carries
//! a generation counter, bumped on free, so a stale [`SlotKey`] — or a
//! stale external id routed through an [`IdTable`] directory — can never
//! resurrect a freed entry: the generation check fails and the lookup
//! returns `None`, exactly as a map miss did.

/// A generation-tagged handle to a [`Slab`] slot.
///
/// A key is valid only while the entry it was issued for is live; after
/// [`Slab::remove`] the slot's generation moves on and the key dangles
/// harmlessly (`get` returns `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// A key no slot ever matches (generation 0 is never issued).
    pub const DEAD: SlotKey = SlotKey {
        index: 0,
        generation: 0,
    };
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab allocator whose slots are recycled under generation tags.
///
/// ```
/// use simnet::{Slab, SlotKey};
///
/// let mut slab: Slab<&str> = Slab::new();
/// let key = slab.insert("alpha");
/// assert_eq!(slab.get(key), Some(&"alpha"));
/// assert_eq!(slab.remove(key), Some("alpha"));
/// let reused = slab.insert("beta");
/// assert_eq!(slab.get(key), None); // stale key cannot alias the new entry
/// assert_eq!(slab.get(reused), Some(&"beta"));
/// assert_eq!(slab.slot_count(), 1); // the slot was reused, not regrown
/// ```
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Physical slots allocated (live + free); stays bounded by the peak
    /// live count no matter how many entries have churned through.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Stores `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(index as usize) {
                slot.value = Some(value);
                return SlotKey {
                    index,
                    generation: slot.generation,
                };
            }
            // A free-list index beyond the slot vector is structurally
            // impossible; fall through and grow instead of panicking.
        }
        let index = self.slots.len() as u32;
        self.slots.push(Slot {
            generation: 1,
            value: Some(value),
        });
        SlotKey {
            index,
            generation: 1,
        }
    }

    /// The entry behind `key`, unless the key is stale or dead.
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        let slot = self.slots.get(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the entry behind `key`, if the key is current.
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Frees the entry behind `key` and recycles its slot under the next
    /// generation; `None` if the key was already stale.
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let value = slot.value.take()?;
        // Skip generation 0 on wrap so `SlotKey::DEAD` stays dead.
        slot.generation = slot.generation.checked_add(1).unwrap_or(1);
        self.free.push(key.index);
        self.live -= 1;
        Some(value)
    }
}

/// A table keyed by the kernel's dense, monotonic u64 ids.
///
/// The directory maps each ever-issued id to the [`SlotKey`] it was
/// stored under; the slab behind it recycles storage as entries are
/// removed. Ids are allocated by [`IdTable::insert`] in issue order
/// (0, 1, 2, …) and never reused, so external identifiers keep the exact
/// numbering the old `BTreeMap` kernel produced.
pub struct IdTable<T> {
    directory: Vec<SlotKey>,
    slab: Slab<T>,
}

impl<T> Default for IdTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IdTable<T> {
    /// Creates an empty table; the first inserted id is 0.
    pub fn new() -> Self {
        IdTable {
            directory: Vec::new(),
            slab: Slab::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Whether the table holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Total ids ever issued (the next id to be returned by `insert`).
    pub fn ids_issued(&self) -> u64 {
        self.directory.len() as u64
    }

    /// Physical slots backing the table (bounded by peak concurrency).
    pub fn slot_count(&self) -> usize {
        self.slab.slot_count()
    }

    /// Stores `value` under the next dense id and returns that id.
    pub fn insert(&mut self, value: T) -> u64 {
        let id = self.directory.len() as u64;
        let key = self.slab.insert(value);
        self.directory.push(key);
        id
    }

    /// The live entry for `id`, if any.
    pub fn get(&self, id: u64) -> Option<&T> {
        let key = *self.directory.get(usize::try_from(id).ok()?)?;
        self.slab.get(key)
    }

    /// Mutable access to the live entry for `id`, if any.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let key = *self.directory.get(usize::try_from(id).ok()?)?;
        self.slab.get_mut(key)
    }

    /// Removes and returns the entry for `id`; its slab slot is recycled
    /// while the directory entry goes permanently stale.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let key = *self.directory.get(usize::try_from(id).ok()?)?;
        self.slab.remove(key)
    }
}
