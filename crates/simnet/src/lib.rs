//! # simnet — deterministic discrete-event network/OS substrate
//!
//! This crate replaces the physical testbed of *Proactive Recovery in
//! Distributed CORBA Applications* (Pertet & Narasimhan, DSN 2004): five
//! Emulab nodes running Linux, TCP/IP and the TAO ORB. It provides:
//!
//! * a deterministic event-driven kernel ([`Simulation`]) with simulated
//!   time ([`SimTime`], [`SimDuration`]),
//! * nodes, processes ([`Process`]) and a syscall-shaped process interface
//!   ([`SysApi`]) mirroring the eight UNIX calls the paper's interceptor
//!   overrides,
//! * reliable ordered byte-stream connections with TCP-like semantics
//!   (handshake, refusal, EOF on close/crash),
//! * calibrated latency / OS-noise / loss models ([`LatencyModel`],
//!   [`NoiseModel`], [`LossModel`]), and
//! * measurement infrastructure ([`Metrics`]).
//!
//! Everything above this crate — GIOP, the ORB, group communication, MEAD —
//! is ordinary protocol code written against [`SysApi`].
//!
//! ## Example
//!
//! A process that answers every received byte with two bytes:
//!
//! ```
//! use simnet::*;
//!
//! struct Echo { lsn: Option<ListenerId> }
//! impl Process for Echo {
//!     fn on_start(&mut self, sys: &mut dyn SysApi) {
//!         self.lsn = Some(sys.listen(Port(9)).expect("port free"));
//!     }
//!     fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
//!         if let Event::DataReadable { conn } = ev {
//!             let got = sys.read(conn, usize::MAX).expect("open");
//!             let reply = vec![b'!'; got.data.len() * 2];
//!             let _ = sys.write(conn, &reply);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let node = sim.add_node("a");
//! sim.spawn(node, "echo", Box::new(Echo { lsn: None }));
//! sim.run_until(SimTime::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ids;
mod latency;
mod metrics;
mod process;
mod recv_queue;
mod rng;
pub mod sched;
mod sim;
mod table;
pub mod testkit;
mod time;
mod wheel;

pub use error::SysError;
pub use ids::{Addr, ConnId, ListenerId, NodeId, Port, ProcessId, TimerId};
pub use latency::{LatencyModel, LossModel, NoiseModel};
pub use metrics::{ByteRecord, Metrics};
pub use process::{Event, ExitReason, Process, ProcessFactory, ReadOutcome, SysApi};
pub use recv_queue::RecvQueue;
pub use rng::SimRng;
pub use sched::{
    Candidate, CandidateKind, ChoicePoint, DecisionTrace, FifoScheduler, GateCfg, ReplayScheduler,
    Scheduler,
};
pub use sim::{KernelStats, RunOutcome, SimConfig, Simulation};
pub use table::{IdTable, Slab, SlotKey};
pub use time::{SimDuration, SimTime};
pub use wheel::TimingWheel;
