//! Error type for syscall-shaped operations.

use core::fmt;

use crate::ids::{ConnId, Port};

/// Errors returned by [`SysApi`](crate::SysApi) operations.
///
/// These mirror the `errno`-style failures the paper's interceptor sees from
/// the real socket layer: writes on closed sockets, binds to busy ports, and
/// operations on unknown descriptors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysError {
    /// The connection descriptor is unknown to this process (cf. `EBADF`).
    UnknownConn(ConnId),
    /// The connection has not finished establishing (cf. `ENOTCONN`).
    NotEstablished(ConnId),
    /// The connection was already closed locally (cf. `EBADF` after `close`).
    ClosedLocally(ConnId),
    /// The peer closed the connection; writes fail (cf. `EPIPE`).
    PeerClosed(ConnId),
    /// The port already has a listener on this node (cf. `EADDRINUSE`).
    PortInUse(Port),
    /// The target process or node does not exist or is dead.
    NoSuchTarget,
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysError::UnknownConn(c) => write!(f, "unknown connection {c}"),
            SysError::NotEstablished(c) => write!(f, "connection {c} not yet established"),
            SysError::ClosedLocally(c) => write!(f, "connection {c} already closed locally"),
            SysError::PeerClosed(c) => write!(f, "peer closed connection {c}"),
            SysError::PortInUse(p) => write!(f, "{p} already in use"),
            SysError::NoSuchTarget => write!(f, "no such process or node"),
        }
    }
}

impl std::error::Error for SysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let msg = SysError::PortInUse(Port(2809)).to_string();
        assert!(msg.contains("2809"));
        assert!(msg.starts_with("port"));
        let msg = SysError::UnknownConn(ConnId(4)).to_string();
        assert!(msg.contains("conn4"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SysError>();
    }
}
