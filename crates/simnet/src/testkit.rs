//! Test double for [`SysApi`]: drive protocol state machines (ORBs,
//! interceptors, GCS clients) directly in unit tests, without a running
//! simulation.
//!
//! [`MockSys`] records every effect (writes, connects, closes, timers,
//! counters) and lets the test script incoming bytes per connection.
//!
//! ```
//! use simnet::testkit::MockSys;
//! use simnet::{Addr, NodeId, Port, SysApi};
//!
//! let mut sys = MockSys::new(NodeId::from_index(1));
//! let conn = sys.connect(Addr::new(NodeId::from_index(0), Port(80)));
//! sys.write(conn, b"hello").unwrap();
//! assert_eq!(sys.written(conn), b"hello");
//! ```

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::error::SysError;
use crate::ids::{Addr, ConnId, ListenerId, NodeId, Port, ProcessId, TimerId};
use crate::process::{ExitReason, ProcessFactory, ReadOutcome, SysApi};
use crate::recv_queue::RecvQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A recorded timer registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MockTimer {
    /// The returned timer id.
    pub timer: TimerId,
    /// When it was set.
    pub set_at: SimTime,
    /// Requested delay.
    pub after: SimDuration,
    /// Caller token.
    pub token: u64,
    /// Whether `cancel_timer` was called on it.
    pub cancelled: bool,
}

#[derive(Debug, Default)]
struct MockConn {
    addr: Option<Addr>,
    written: Vec<u8>,
    incoming: RecvQueue,
    eof: bool,
    closed: bool,
    write_error: Option<SysError>,
}

/// The mock context. All ids are allocated locally; time advances only
/// via [`MockSys::advance`].
#[derive(Debug)]
pub struct MockSys {
    node: NodeId,
    pid: ProcessId,
    now: SimTime,
    rng: SimRng,
    next_id: u64,
    conns: BTreeMap<ConnId, MockConn>,
    listeners: Vec<(ListenerId, Port)>,
    timers: Vec<MockTimer>,
    counters: BTreeMap<&'static str, u64>,
    marks: Vec<(&'static str, SimTime)>,
    cpu_charged: SimDuration,
    exit: Option<ExitReason>,
    spawned: Vec<(NodeId, String)>,
    emitted: Vec<(SimTime, obs::EventKind)>,
}

impl MockSys {
    /// Creates a mock context for a process on `node`.
    pub fn new(node: NodeId) -> Self {
        MockSys {
            node,
            pid: ProcessId::default_for_tests(),
            now: SimTime::ZERO,
            rng: SimRng::for_kernel(7, 7),
            next_id: 1,
            conns: BTreeMap::new(),
            listeners: Vec::new(),
            timers: Vec::new(),
            counters: BTreeMap::new(),
            marks: Vec::new(),
            cpu_charged: SimDuration::ZERO,
            exit: None,
            spawned: Vec::new(),
            emitted: Vec::new(),
        }
    }

    fn next(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Advances the mock clock.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Creates an inbound (accepted-style) connection the subject can be
    /// handed events about.
    pub fn accept_conn(&mut self) -> ConnId {
        let id = ConnId::from_raw_for_tests(self.next());
        self.conns.insert(id, MockConn::default());
        id
    }

    /// Queues bytes to be returned by the subject's next `read`.
    pub fn push_incoming(&mut self, conn: ConnId, bytes: &[u8]) {
        self.conns
            .entry(conn)
            .or_default()
            .incoming
            .push(Bytes::copy_from_slice(bytes));
    }

    /// Marks `conn` as EOF after its queued bytes drain.
    pub fn push_eof(&mut self, conn: ConnId) {
        self.conns.entry(conn).or_default().eof = true;
    }

    /// Makes future writes to `conn` fail with `err`.
    pub fn fail_writes(&mut self, conn: ConnId, err: SysError) {
        self.conns.entry(conn).or_default().write_error = Some(err);
    }

    /// Everything the subject has written to `conn`.
    pub fn written(&self, conn: ConnId) -> &[u8] {
        self.conns
            .get(&conn)
            .map(|c| c.written.as_slice())
            .unwrap_or(&[])
    }

    /// Clears the write capture for `conn`.
    pub fn clear_written(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.written.clear();
        }
    }

    /// The address a `connect`-created connection targeted.
    pub fn conn_addr(&self, conn: ConnId) -> Option<Addr> {
        self.conns.get(&conn).and_then(|c| c.addr)
    }

    /// Whether the subject closed `conn`.
    pub fn is_closed(&self, conn: ConnId) -> bool {
        self.conns.get(&conn).map(|c| c.closed).unwrap_or(false)
    }

    /// Ids of all connections opened via `connect`, in order.
    pub fn connected(&self) -> Vec<(ConnId, Addr)> {
        self.conns
            .iter()
            .filter_map(|(id, c)| c.addr.map(|a| (*id, a)))
            .collect()
    }

    /// All recorded timers.
    pub fn timers(&self) -> &[MockTimer] {
        &self.timers
    }

    /// Active listeners (id, port), in registration order.
    pub fn listeners(&self) -> &[(ListenerId, Port)] {
        &self.listeners
    }

    /// Recorded counter value.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Recorded marks.
    pub fn marks(&self) -> &[(&'static str, SimTime)] {
        &self.marks
    }

    /// Total CPU charged by the subject.
    pub fn cpu_charged(&self) -> SimDuration {
        self.cpu_charged
    }

    /// The exit the subject requested, if any.
    pub fn exit_requested(&self) -> Option<&ExitReason> {
        self.exit.as_ref()
    }

    /// Processes the subject asked to spawn (node, label).
    pub fn spawned(&self) -> &[(NodeId, String)] {
        &self.spawned
    }

    /// Observability events the subject emitted, with the mock time at
    /// which each was emitted.
    pub fn emitted(&self) -> &[(SimTime, obs::EventKind)] {
        &self.emitted
    }
}

impl SysApi for MockSys {
    fn now(&self) -> SimTime {
        self.now
    }
    fn my_node(&self) -> NodeId {
        self.node
    }
    fn my_pid(&self) -> ProcessId {
        self.pid
    }
    fn listen(&mut self, port: Port) -> Result<ListenerId, SysError> {
        if self.listeners.iter().any(|(_, p)| *p == port) {
            return Err(SysError::PortInUse(port));
        }
        let id = ListenerId::from_raw_for_tests(self.next());
        self.listeners.push((id, port));
        Ok(id)
    }
    fn unlisten(&mut self, listener: ListenerId) {
        self.listeners.retain(|(l, _)| *l != listener);
    }
    fn connect(&mut self, addr: Addr) -> ConnId {
        let id = ConnId::from_raw_for_tests(self.next());
        self.conns.insert(
            id,
            MockConn {
                addr: Some(addr),
                ..MockConn::default()
            },
        );
        id
    }
    fn write(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), SysError> {
        let c = self.conns.entry(conn).or_default();
        if let Some(err) = c.write_error.clone() {
            return Err(err);
        }
        if c.closed {
            return Err(SysError::ClosedLocally(conn));
        }
        c.written.extend_from_slice(bytes);
        Ok(())
    }
    fn read(&mut self, conn: ConnId, max: usize) -> Result<ReadOutcome, SysError> {
        let c = self
            .conns
            .get_mut(&conn)
            .ok_or(SysError::UnknownConn(conn))?;
        if c.closed {
            return Err(SysError::ClosedLocally(conn));
        }
        let data = c.incoming.read(max);
        Ok(ReadOutcome {
            data,
            eof: c.incoming.is_empty() && c.eof,
        })
    }
    fn close(&mut self, conn: ConnId) {
        self.conns.entry(conn).or_default().closed = true;
    }
    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        let timer = TimerId::from_raw_for_tests(self.next());
        self.timers.push(MockTimer {
            timer,
            set_at: self.now,
            after,
            token,
            cancelled: false,
        });
        timer
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        if let Some(t) = self.timers.iter_mut().find(|t| t.timer == timer) {
            t.cancelled = true;
        }
    }
    fn spawn(
        &mut self,
        node: NodeId,
        name: &str,
        _factory: ProcessFactory,
    ) -> Result<ProcessId, SysError> {
        self.spawned.push((node, name.to_string()));
        Ok(ProcessId::from_raw_for_tests(self.next()))
    }
    fn exit(&mut self, reason: ExitReason) {
        self.exit = Some(reason);
    }
    fn charge_cpu(&mut self, cost: SimDuration) {
        self.cpu_charged += cost;
    }
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
    fn tag_conn(&mut self, _conn: ConnId, _tag: &'static str) {}
    fn count(&mut self, counter: &'static str, delta: u64) {
        *self.counters.entry(counter).or_insert(0) += delta;
    }
    fn mark(&mut self, series: &'static str) {
        self.marks.push((series, self.now));
    }
    fn trace(&mut self, _message: &str) {}
    fn emit(&mut self, kind: obs::EventKind) {
        self.emitted.push((self.now, kind));
    }
}

// Raw-id constructors, exposed only for the test kit.
impl ConnId {
    pub(crate) fn from_raw_for_tests(raw: u64) -> ConnId {
        ConnId(raw)
    }
}
impl ListenerId {
    pub(crate) fn from_raw_for_tests(raw: u64) -> ListenerId {
        ListenerId(raw)
    }
}
impl TimerId {
    pub(crate) fn from_raw_for_tests(raw: u64) -> TimerId {
        TimerId(raw)
    }
}
impl ProcessId {
    pub(crate) fn from_raw_for_tests(raw: u64) -> ProcessId {
        ProcessId(raw)
    }
    pub(crate) fn default_for_tests() -> ProcessId {
        ProcessId(99)
    }
}

/// Builds a [`ConnId`] from a raw value: test support for out-of-crate
/// code that keys behaviour on connection identity.
pub fn conn_id(raw: u64) -> ConnId {
    ConnId::from_raw_for_tests(raw)
}

/// Builds a scheduling [`Candidate`](crate::sched::Candidate) from raw id
/// values: test support for out-of-crate [`Scheduler`](crate::Scheduler)
/// implementations (ids are opaque outside the kernel).
#[allow(clippy::too_many_arguments)]
pub fn candidate(
    at: SimTime,
    seq: u64,
    kind: crate::sched::CandidateKind,
    class: &'static str,
    target: Option<u64>,
    conn: Option<u64>,
    touch_conn: Option<u64>,
    eligible: bool,
) -> crate::sched::Candidate {
    crate::sched::Candidate {
        at,
        seq,
        kind,
        class,
        target: target.map(ProcessId::from_raw_for_tests),
        conn: conn.map(ConnId::from_raw_for_tests),
        touch_conn: touch_conn.map(ConnId::from_raw_for_tests),
        eligible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_records_effects() {
        let mut sys = MockSys::new(NodeId::from_index(2));
        assert_eq!(sys.my_node().index(), 2);
        let conn = sys.connect(Addr::new(NodeId::from_index(0), Port(1)));
        sys.write(conn, &[1, 2]).unwrap();
        sys.write(conn, &[3]).unwrap();
        assert_eq!(sys.written(conn), &[1, 2, 3]);
        assert_eq!(
            sys.conn_addr(conn),
            Some(Addr::new(NodeId::from_index(0), Port(1)))
        );
        sys.close(conn);
        assert!(sys.is_closed(conn));
        assert!(sys.write(conn, &[4]).is_err());
    }

    #[test]
    fn mock_reads_and_eof() {
        let mut sys = MockSys::new(NodeId::from_index(0));
        let conn = sys.accept_conn();
        sys.push_incoming(conn, b"abc");
        let r = sys.read(conn, 2).unwrap();
        assert_eq!(&r.data[..], b"ab");
        assert!(!r.eof);
        sys.push_eof(conn);
        let r = sys.read(conn, usize::MAX).unwrap();
        assert_eq!(&r.data[..], b"c");
        assert!(r.eof);
    }

    #[test]
    fn mock_timers_and_counters() {
        let mut sys = MockSys::new(NodeId::from_index(0));
        let t = sys.set_timer(SimDuration::from_millis(5), 42);
        sys.cancel_timer(t);
        assert_eq!(sys.timers().len(), 1);
        assert!(sys.timers()[0].cancelled);
        assert_eq!(sys.timers()[0].token, 42);
        sys.count("x", 2);
        sys.count("x", 3);
        assert_eq!(sys.counter("x"), 5);
        sys.advance(SimDuration::from_millis(7));
        sys.mark("ev");
        assert_eq!(sys.marks(), &[("ev", SimTime::from_millis(7))]);
    }
}
