//! Kernel tests for the link-partition primitive: parked traffic resumes
//! in order on heal, handshakes survive, and determinism is preserved.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::*;

/// Listens on port 9 and records every byte received, in order.
struct Sink {
    lsn: Option<ListenerId>,
    got: Rc<RefCell<Vec<u8>>>,
}

impl Process for Sink {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.lsn = Some(sys.listen(Port(9)).expect("port free"));
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        if let Event::DataReadable { conn } = ev {
            let read = sys.read(conn, usize::MAX).expect("open");
            self.got.borrow_mut().extend_from_slice(&read.data);
        }
    }
}

/// Connects to node 0 port 9 and writes one labelled byte per timer tick.
struct Ticker {
    conn: Option<ConnId>,
    next: u8,
    refused: Rc<RefCell<u32>>,
}

impl Process for Ticker {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.conn = Some(sys.connect(Addr::new(NodeId::from_index(0), Port(9))));
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        match ev {
            Event::ConnEstablished { .. } | Event::TimerFired { .. } => {
                if let Some(conn) = self.conn {
                    let _ = sys.write(conn, &[self.next]);
                    self.next += 1;
                    if self.next < 8 {
                        sys.set_timer(SimDuration::from_millis(10), 1);
                    }
                }
            }
            Event::ConnRefused { .. } => {
                *self.refused.borrow_mut() += 1;
            }
            _ => {}
        }
    }
}

type TwoNodeSim = (
    Simulation,
    NodeId,
    NodeId,
    Rc<RefCell<Vec<u8>>>,
    Rc<RefCell<u32>>,
);

fn two_node_sim() -> TwoNodeSim {
    let mut sim = Simulation::new(SimConfig {
        noise: NoiseModel::none(),
        ..SimConfig::default()
    });
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let got = Rc::new(RefCell::new(Vec::new()));
    let refused = Rc::new(RefCell::new(0));
    sim.spawn(
        a,
        "sink",
        Box::new(Sink {
            lsn: None,
            got: got.clone(),
        }),
    );
    sim.spawn(
        b,
        "ticker",
        Box::new(Ticker {
            conn: None,
            next: 0,
            refused: refused.clone(),
        }),
    );
    (sim, a, b, got, refused)
}

#[test]
fn partition_parks_data_and_heal_preserves_fifo() {
    let (mut sim, a, b, got, _) = two_node_sim();
    // Let the handshake and a couple of writes through.
    sim.run_until(SimTime::from_millis(60));
    let before = got.borrow().len();
    assert!(before >= 2, "expected some delivery before the cut");
    // Sever the link; writes continue but nothing arrives.
    sim.partition(a, b);
    assert!(sim.link_severed(a, b));
    sim.run_until(SimTime::from_millis(120));
    assert_eq!(got.borrow().len(), before, "no delivery across a cut link");
    // Heal: everything parked arrives, in send order.
    sim.heal(a, b);
    sim.run_until(SimTime::from_millis(300));
    let bytes = got.borrow().clone();
    assert_eq!(bytes, (0..8).collect::<Vec<u8>>(), "FIFO across the heal");
}

#[test]
fn partition_parks_handshake_until_heal() {
    let (mut sim, a, b, got, refused) = two_node_sim();
    // Cut the link before anything runs: the SYN parks.
    sim.partition(a, b);
    sim.run_until(SimTime::from_millis(100));
    assert!(got.borrow().is_empty());
    assert_eq!(*refused.borrow(), 0, "a cut link is not a refusal");
    sim.heal_all();
    sim.run_until(SimTime::from_millis(400));
    assert_eq!(got.borrow().clone(), (0..8).collect::<Vec<u8>>());
}

#[test]
fn heal_after_peer_death_delivers_eof_not_hang() {
    let (mut sim, a, b, _got, _) = two_node_sim();
    sim.run_until(SimTime::from_millis(60));
    sim.partition(a, b);
    // Kill the sink while the link is down; its EOF parks.
    let sink = sim
        .live_processes()
        .into_iter()
        .find(|p| sim.process_label(*p) == "sink")
        .expect("sink alive");
    sim.kill_process(sink, "chaos");
    sim.run_until(SimTime::from_millis(120));
    sim.heal(a, b);
    sim.run_until(SimTime::from_millis(200));
    // The ticker's endpoint has observed EOF: a write now fails with a
    // typed error rather than silently vanishing.
    assert!(sim.with_metrics(|m| m.counter("sim.exit.crash")) >= 1);
}

#[test]
fn partition_is_deterministic() {
    let run = || {
        let (mut sim, a, b, got, _) = two_node_sim();
        sim.run_until(SimTime::from_millis(55));
        sim.partition(a, b);
        sim.run_until(SimTime::from_millis(140));
        sim.heal(a, b);
        sim.run_until(SimTime::from_millis(400));
        let bytes = got.borrow().clone();
        (bytes, sim.events_processed())
    };
    assert_eq!(run(), run());
}

#[test]
fn oneway_cut_blocks_only_the_cut_direction() {
    // Data travels ticker (node b) → sink (node a). Cutting a → b leaves
    // that flow untouched; cutting b → a parks it.
    let (mut sim, a, b, got, _) = two_node_sim();
    sim.run_until(SimTime::from_millis(60));
    let before = got.borrow().len();
    sim.partition_oneway(a, b);
    assert!(sim.link_blocked(a, b));
    assert!(!sim.link_blocked(b, a));
    assert!(!sim.link_severed(a, b), "oneway cut is not symmetric");
    sim.run_until(SimTime::from_millis(300));
    assert_eq!(
        got.borrow().clone(),
        (0..8).collect::<Vec<u8>>(),
        "reverse direction must keep flowing"
    );
    assert!(got.borrow().len() > before);
}

#[test]
fn oneway_cut_parks_data_until_healed() {
    let (mut sim, a, b, got, _) = two_node_sim();
    sim.run_until(SimTime::from_millis(60));
    let before = got.borrow().len();
    sim.partition_oneway(b, a);
    sim.run_until(SimTime::from_millis(120));
    assert_eq!(got.borrow().len(), before, "cut direction parks data");
    sim.heal_oneway(b, a);
    sim.run_until(SimTime::from_millis(300));
    assert_eq!(got.borrow().clone(), (0..8).collect::<Vec<u8>>());
}

#[test]
fn oneway_cut_parks_synack_half_open() {
    // Cut a → b before anything runs: the SYN (b → a) gets through, the
    // SYN-ACK parks — a half-open connection until the direction heals.
    let (mut sim, a, b, got, refused) = two_node_sim();
    sim.partition_oneway(a, b);
    sim.run_until(SimTime::from_millis(100));
    assert!(got.borrow().is_empty(), "no established conn, no data");
    assert_eq!(*refused.borrow(), 0, "a cut link is not a refusal");
    sim.heal_all();
    assert!(!sim.link_blocked(a, b), "heal_all clears directional cuts");
    sim.run_until(SimTime::from_millis(400));
    assert_eq!(got.borrow().clone(), (0..8).collect::<Vec<u8>>());
}

#[test]
fn link_jitter_delays_but_preserves_fifo_and_determinism() {
    let run = |jitter_ms: u64| {
        let (mut sim, a, b, got, _) = two_node_sim();
        sim.set_link_jitter(a, b, SimDuration::from_millis(jitter_ms));
        sim.run_until(SimTime::from_millis(250));
        sim.set_link_jitter(a, b, SimDuration::ZERO);
        sim.run_until(SimTime::from_millis(600));
        let bytes = got.borrow().clone();
        (bytes, sim.now())
    };
    let (plain, _) = run(0);
    assert_eq!(plain, (0..8).collect::<Vec<u8>>());
    let (jittered, _) = run(40);
    assert_eq!(
        jittered,
        (0..8).collect::<Vec<u8>>(),
        "jitter reorders nothing (per-connection FIFO)"
    );
    assert_eq!(run(40), run(40), "jitter draws are seeded");
}

#[test]
fn loss_model_can_change_mid_run() {
    let (mut sim, _a, _b, got, _) = two_node_sim();
    sim.run_until(SimTime::from_millis(30));
    sim.set_loss(LossModel {
        probability: 1.0,
        retransmit_delay: SimDuration::from_millis(50),
    });
    sim.run_until(SimTime::from_millis(40));
    sim.set_loss(LossModel::none());
    sim.run_until(SimTime::from_millis(500));
    // Despite the burst, everything still arrives (loss = delay here).
    assert_eq!(got.borrow().clone(), (0..8).collect::<Vec<u8>>());
}
