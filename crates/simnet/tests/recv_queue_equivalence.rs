//! Observational equivalence of the segmented [`RecvQueue`] with the
//! original `VecDeque<u8>` byte queue it replaced on the kernel's delivery
//! path.
//!
//! The model below is the pre-optimisation implementation, verbatim in
//! behaviour: delivery appended every byte individually, and a read
//! drained up to `max` bytes into a fresh buffer. For every interleaving
//! of pushes, bounded reads, clears and EOF checks, the two must return
//! the same bytes, the same lengths and the same emptiness — that is the
//! contract that lets the zero-copy queue slot into `read()`/EOF handling
//! unchanged.

use std::collections::VecDeque;

use bytes::Bytes;
use proptest::prelude::*;
use simnet::RecvQueue;

/// The original byte-at-a-time receive buffer.
#[derive(Default)]
struct ByteQueue {
    bytes: VecDeque<u8>,
}

impl ByteQueue {
    fn push(&mut self, data: &[u8]) {
        for &b in data {
            self.bytes.push_back(b);
        }
    }

    fn read(&mut self, max: usize) -> Vec<u8> {
        let take = max.min(self.bytes.len());
        self.bytes.drain(..take).collect()
    }

    fn len(&self) -> usize {
        self.bytes.len()
    }

    fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn clear(&mut self) {
        self.bytes.clear();
    }
}

/// One step of an interleaving.
#[derive(Clone, Debug)]
enum Op {
    Push(Vec<u8>),
    Read(usize),
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..48).prop_map(Op::Push),
        // Read bounds straddle every interesting case: zero, mid-segment,
        // exact segment, spanning, and far beyond the buffered total.
        (0usize..128).prop_map(Op::Read),
        Just(Op::Clear),
    ]
}

proptest! {
    #[test]
    fn segmented_queue_matches_byte_queue(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut model = ByteQueue::default();
        let mut queue = RecvQueue::new();
        for op in &ops {
            match op {
                Op::Push(data) => {
                    model.push(data);
                    queue.push(Bytes::copy_from_slice(data));
                }
                Op::Read(max) => {
                    let want = model.read(*max);
                    let got = queue.read(*max);
                    prop_assert_eq!(&got[..], &want[..]);
                }
                Op::Clear => {
                    model.clear();
                    queue.clear();
                }
            }
            prop_assert_eq!(queue.len(), model.len());
            prop_assert_eq!(queue.is_empty(), model.is_empty());
        }
        // Drain whatever is left and compare the tail too (EOF is gated on
        // `is_empty`, so the tail must agree byte for byte).
        let want = model.read(usize::MAX);
        let got = queue.read(usize::MAX);
        prop_assert_eq!(&got[..], &want[..]);
        prop_assert!(queue.is_empty());
    }

    #[test]
    fn reads_never_exceed_max(ops in prop::collection::vec(arb_op(), 0..40), max in 0usize..64) {
        let mut queue = RecvQueue::new();
        for op in &ops {
            match op {
                Op::Push(data) => queue.push(Bytes::copy_from_slice(data)),
                Op::Read(_) | Op::Clear => {
                    let before = queue.len();
                    let out = queue.read(max);
                    prop_assert!(out.len() <= max);
                    prop_assert_eq!(out.len(), before.min(max));
                    prop_assert_eq!(queue.len(), before - out.len());
                }
            }
        }
    }
}
