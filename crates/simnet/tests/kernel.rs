//! Behavioural tests for the simnet kernel: transport semantics, crash
//! visibility, CPU-cost accounting, timers, determinism.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::*;

/// Shared scratchpad for observing process behaviour from tests.
type Log = Rc<RefCell<Vec<String>>>;

struct Server {
    port: Port,
    log: Log,
    reply_cpu: SimDuration,
    close_after: Option<usize>,
    handled: usize,
}

impl Process for Server {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        sys.listen(self.port).expect("listen");
        self.log.borrow_mut().push("server:listening".into());
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        match ev {
            Event::Accepted { conn, .. } => {
                self.log
                    .borrow_mut()
                    .push(format!("server:accepted:{conn}"));
            }
            Event::DataReadable { conn } => {
                let got = sys.read(conn, usize::MAX).expect("read");
                if got.data.is_empty() {
                    return;
                }
                self.handled += 1;
                sys.charge_cpu(self.reply_cpu);
                sys.write(conn, &got.data).expect("echo write");
                if let Some(n) = self.close_after {
                    if self.handled >= n {
                        sys.exit(ExitReason::Crash("test crash".into()));
                    }
                }
            }
            Event::PeerClosed { conn } => {
                self.log.borrow_mut().push(format!("server:eof:{conn}"));
            }
            _ => {}
        }
    }
    fn label(&self) -> &str {
        "server"
    }
}

struct Client {
    target: Addr,
    payload: Vec<u8>,
    log: Log,
    conn: Option<ConnId>,
    sent_at: Option<SimTime>,
    rtts: Rc<RefCell<Vec<SimDuration>>>,
    rounds: usize,
    done: usize,
}

impl Client {
    fn new(target: Addr, rounds: usize, log: Log, rtts: Rc<RefCell<Vec<SimDuration>>>) -> Self {
        Client {
            target,
            payload: b"ping".to_vec(),
            log,
            conn: None,
            sent_at: None,
            rtts,
            rounds,
            done: 0,
        }
    }
    fn send(&mut self, sys: &mut dyn SysApi) {
        let conn = self.conn.expect("connected");
        self.sent_at = Some(sys.now());
        sys.write(conn, &self.payload).expect("request write");
    }
}

impl Process for Client {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.conn = Some(sys.connect(self.target));
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        match ev {
            Event::ConnEstablished { .. } => {
                self.log.borrow_mut().push("client:established".into());
                self.send(sys);
            }
            Event::ConnRefused { .. } => {
                self.log.borrow_mut().push("client:refused".into());
            }
            Event::DataReadable { conn } => {
                let got = sys.read(conn, usize::MAX).expect("read");
                if got.data.is_empty() {
                    return;
                }
                let rtt = sys.now() - self.sent_at.expect("sent");
                self.rtts.borrow_mut().push(rtt);
                self.done += 1;
                if self.done < self.rounds {
                    self.send(sys);
                } else {
                    self.log.borrow_mut().push("client:done".into());
                }
            }
            Event::PeerClosed { conn } => {
                self.log.borrow_mut().push(format!("client:eof:{conn}"));
            }
            _ => {}
        }
    }
    fn label(&self) -> &str {
        "client"
    }
}

fn quiet_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        noise: NoiseModel::none(),
        ..SimConfig::default()
    }
}

#[test]
fn ping_pong_round_trip_time_matches_model() {
    let cfg = quiet_config(1);
    let mut sim = Simulation::new(cfg);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let log: Log = Rc::default();
    let rtts = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        a,
        "server",
        Box::new(Server {
            port: Port(80),
            log: log.clone(),
            reply_cpu: SimDuration::from_micros(50),
            close_after: None,
            handled: 0,
        }),
    );
    sim.spawn(
        b,
        "client",
        Box::new(Client::new(
            Addr::new(a, Port(80)),
            100,
            log.clone(),
            rtts.clone(),
        )),
    );
    sim.run_until(SimTime::from_secs(5));
    let rtts = rtts.borrow();
    assert_eq!(rtts.len(), 100);
    // Two one-way trips (330±10us) + 50us server CPU: between 0.71 and 0.78ms.
    for rtt in rtts.iter() {
        let ms = rtt.as_millis_f64();
        assert!((0.70..0.80).contains(&ms), "rtt {ms}ms outside model");
    }
    assert!(log.borrow().contains(&"client:done".to_string()));
}

#[test]
fn connect_to_missing_listener_is_refused() {
    let mut sim = Simulation::new(quiet_config(2));
    let a = sim.add_node("a");
    let log: Log = Rc::default();
    let rtts = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        a,
        "client",
        Box::new(Client::new(Addr::new(a, Port(4242)), 1, log.clone(), rtts)),
    );
    sim.run_until(SimTime::from_secs(1));
    assert!(log.borrow().contains(&"client:refused".to_string()));
}

#[test]
fn server_crash_delivers_eof_to_client() {
    let mut sim = Simulation::new(quiet_config(3));
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let log: Log = Rc::default();
    let rtts = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        a,
        "server",
        Box::new(Server {
            port: Port(80),
            log: log.clone(),
            reply_cpu: SimDuration::ZERO,
            close_after: Some(3), // crash after three replies
            handled: 0,
        }),
    );
    sim.spawn(
        b,
        "client",
        Box::new(Client::new(
            Addr::new(a, Port(80)),
            100,
            log.clone(),
            rtts.clone(),
        )),
    );
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(rtts.borrow().len(), 3, "three replies before crash");
    let log = log.borrow();
    assert!(
        log.iter().any(|l| l.starts_with("client:eof")),
        "client must observe EOF, saw {log:?}"
    );
    assert_eq!(sim.with_metrics(|m| m.counter("sim.exit.crash")), 1);
}

#[test]
fn kill_process_delivers_eof() {
    let mut sim = Simulation::new(quiet_config(4));
    let a = sim.add_node("a");
    let log: Log = Rc::default();
    let rtts = Rc::new(RefCell::new(Vec::new()));
    let server = sim.spawn(
        a,
        "server",
        Box::new(Server {
            port: Port(80),
            log: log.clone(),
            reply_cpu: SimDuration::ZERO,
            close_after: None,
            handled: 0,
        }),
    );
    sim.spawn(
        a,
        "client",
        Box::new(Client::new(
            Addr::new(a, Port(80)),
            1_000_000,
            log.clone(),
            rtts,
        )),
    );
    sim.run_until(SimTime::from_millis(200));
    assert!(sim.process_alive(server));
    sim.kill_process(server, "injected kill");
    sim.run_until(SimTime::from_millis(400));
    assert!(!sim.process_alive(server));
    assert!(log.borrow().iter().any(|l| l.starts_with("client:eof")));
}

#[test]
fn node_crash_kills_all_hosted_processes() {
    let mut sim = Simulation::new(quiet_config(5));
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let log: Log = Rc::default();
    let rtts = Rc::new(RefCell::new(Vec::new()));
    let s1 = sim.spawn(
        a,
        "server",
        Box::new(Server {
            port: Port(80),
            log: log.clone(),
            reply_cpu: SimDuration::ZERO,
            close_after: None,
            handled: 0,
        }),
    );
    let c = sim.spawn(
        b,
        "client",
        Box::new(Client::new(
            Addr::new(a, Port(80)),
            1_000_000,
            log.clone(),
            rtts,
        )),
    );
    sim.run_until(SimTime::from_millis(100));
    sim.crash_node(a);
    sim.run_until(SimTime::from_millis(200));
    assert!(!sim.process_alive(s1));
    assert!(sim.process_alive(c));
    assert!(!sim.node_alive(a));
    assert!(log.borrow().iter().any(|l| l.starts_with("client:eof")));
    // Connecting to the dead node is refused.
    sim.restart_node(a);
    assert!(sim.node_alive(a));
}

#[test]
fn charge_cpu_delays_replies() {
    // Same topology, two servers with different CPU costs: the slower
    // server's client sees proportionally larger RTTs.
    let run = |cpu_us: u64| -> f64 {
        let mut sim = Simulation::new(quiet_config(6));
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let log: Log = Rc::default();
        let rtts = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            a,
            "server",
            Box::new(Server {
                port: Port(80),
                log: log.clone(),
                reply_cpu: SimDuration::from_micros(cpu_us),
                close_after: None,
                handled: 0,
            }),
        );
        sim.spawn(
            b,
            "client",
            Box::new(Client::new(Addr::new(a, Port(80)), 50, log, rtts.clone())),
        );
        sim.run_until(SimTime::from_secs(2));
        let r = rtts.borrow();
        r.iter().map(|d| d.as_millis_f64()).sum::<f64>() / r.len() as f64
    };
    let fast = run(10);
    let slow = run(700);
    assert!(
        (slow - fast - 0.69).abs() < 0.05,
        "cpu charge should add ~0.69ms, added {}",
        slow - fast
    );
}

#[test]
fn timers_fire_in_order_with_tokens() {
    struct TimerProc {
        fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
        cancel_me: Option<TimerId>,
    }
    impl Process for TimerProc {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.set_timer(SimDuration::from_millis(30), 3);
            sys.set_timer(SimDuration::from_millis(10), 1);
            sys.set_timer(SimDuration::from_millis(20), 2);
            self.cancel_me = Some(sys.set_timer(SimDuration::from_millis(25), 99));
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::TimerFired { token, .. } = ev {
                if token == 1 {
                    let t = self.cancel_me.take().expect("armed");
                    sys.cancel_timer(t);
                }
                self.fired.borrow_mut().push((token, sys.now()));
            }
        }
    }
    let fired = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(quiet_config(7));
    let a = sim.add_node("a");
    sim.spawn(
        a,
        "timers",
        Box::new(TimerProc {
            fired: fired.clone(),
            cancel_me: None,
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    let fired = fired.borrow();
    let tokens: Vec<u64> = fired.iter().map(|(t, _)| *t).collect();
    assert_eq!(tokens, vec![1, 2, 3], "cancelled timer 99 must not fire");
    assert!(fired[0].1 < fired[1].1 && fired[1].1 < fired[2].1);
}

#[test]
fn spawn_from_process_launches_after_latency() {
    struct Spawner {
        child: Rc<RefCell<Option<ProcessId>>>,
    }
    struct Child {
        started_at: Rc<RefCell<Option<SimTime>>>,
    }
    impl Process for Child {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            *self.started_at.borrow_mut() = Some(sys.now());
        }
        fn on_event(&mut self, _: &mut dyn SysApi, _: Event) {}
    }
    impl Process for Spawner {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            let started = Rc::new(RefCell::new(None));
            let s2 = started.clone();
            let node = sys.my_node();
            let pid = sys
                .spawn(
                    node,
                    "child",
                    Box::new(move || Box::new(Child { started_at: s2 })),
                )
                .expect("spawn");
            *self.child.borrow_mut() = Some(pid);
            // keep handle alive via leak into self
            std::mem::forget(started);
        }
        fn on_event(&mut self, _: &mut dyn SysApi, _: Event) {}
    }
    let child = Rc::new(RefCell::new(None));
    let mut sim = Simulation::new(quiet_config(8));
    let a = sim.add_node("a");
    sim.spawn(
        a,
        "spawner",
        Box::new(Spawner {
            child: child.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    let pid = child.borrow().expect("child spawned");
    assert!(sim.process_alive(pid));
    assert_eq!(sim.process_label(pid), "child");
    assert_eq!(sim.with_metrics(|m| m.counter("sim.spawned")), 2);
}

#[test]
fn identical_seeds_are_deterministic_different_seeds_differ() {
    let run = |seed: u64| -> (u64, Vec<f64>) {
        let mut sim = Simulation::new(SimConfig {
            seed,
            ..SimConfig::default()
        });
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let log: Log = Rc::default();
        let rtts = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            a,
            "server",
            Box::new(Server {
                port: Port(80),
                log: log.clone(),
                reply_cpu: SimDuration::from_micros(50),
                close_after: None,
                handled: 0,
            }),
        );
        sim.spawn(
            b,
            "client",
            Box::new(Client::new(Addr::new(a, Port(80)), 200, log, rtts.clone())),
        );
        sim.run_until(SimTime::from_secs(5));
        let rtts = rtts.borrow().iter().map(|d| d.as_millis_f64()).collect();
        (sim.events_processed(), rtts)
    };
    let (e1, r1) = run(42);
    let (e2, r2) = run(42);
    let (_, r3) = run(43);
    assert_eq!(e1, e2);
    assert_eq!(r1, r2, "same seed must reproduce identical RTTs");
    assert_ne!(r1, r3, "different seed should perturb jittered RTTs");
}

#[test]
fn listener_port_conflict_is_rejected() {
    struct TwoListens {
        outcome: Rc<RefCell<Option<Result<(), SysError>>>>,
    }
    impl Process for TwoListens {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.listen(Port(5)).expect("first listen");
            let second = sys.listen(Port(5)).map(|_| ());
            *self.outcome.borrow_mut() = Some(second);
        }
        fn on_event(&mut self, _: &mut dyn SysApi, _: Event) {}
    }
    let outcome = Rc::new(RefCell::new(None));
    let mut sim = Simulation::new(quiet_config(9));
    let a = sim.add_node("a");
    sim.spawn(
        a,
        "p",
        Box::new(TwoListens {
            outcome: outcome.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(
        outcome.borrow().clone().expect("ran"),
        Err(SysError::PortInUse(Port(5)))
    );
}

#[test]
fn data_is_fifo_per_connection_under_jitter() {
    struct Burst {
        target: Addr,
        conn: Option<ConnId>,
    }
    impl Process for Burst {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            self.conn = Some(sys.connect(self.target));
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::ConnEstablished { conn } = ev {
                for i in 0..100u8 {
                    sys.write(conn, &[i]).expect("write");
                }
            }
        }
    }
    struct Collector {
        got: Rc<RefCell<Vec<u8>>>,
    }
    impl Process for Collector {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.listen(Port(1)).expect("listen");
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::DataReadable { conn } = ev {
                let r = sys.read(conn, usize::MAX).expect("read");
                self.got.borrow_mut().extend_from_slice(&r.data);
            }
        }
    }
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(SimConfig {
        seed: 11,
        latency: LatencyModel {
            jitter: SimDuration::from_micros(500), // heavy jitter
            ..LatencyModel::default()
        },
        noise: NoiseModel::none(),
        ..SimConfig::default()
    });
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    sim.spawn(a, "collector", Box::new(Collector { got: got.clone() }));
    sim.spawn(
        b,
        "burst",
        Box::new(Burst {
            target: Addr::new(a, Port(1)),
            conn: None,
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    let got = got.borrow();
    let expect: Vec<u8> = (0..100).collect();
    assert_eq!(*got, expect, "bytes must arrive in send order");
}

#[test]
fn tagged_connections_account_bytes() {
    struct Tagger {
        target: Addr,
    }
    impl Process for Tagger {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            let c = sys.connect(self.target);
            sys.tag_conn(c, "testtag");
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::ConnEstablished { conn } = ev {
                sys.write(conn, &[0u8; 64]).expect("write");
                sys.write(conn, &[0u8; 36]).expect("write");
            }
        }
    }
    struct Sink;
    impl Process for Sink {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.listen(Port(1)).expect("listen");
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::DataReadable { conn } = ev {
                let _ = sys.read(conn, usize::MAX);
            }
        }
    }
    let mut sim = Simulation::new(quiet_config(12));
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    sim.spawn(a, "sink", Box::new(Sink));
    sim.spawn(
        b,
        "tagger",
        Box::new(Tagger {
            target: Addr::new(a, Port(1)),
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    assert_eq!(sim.with_metrics(|m| m.total_bytes("testtag")), 100);
}

#[test]
fn read_after_local_close_errors_and_double_close_is_idempotent() {
    struct Closer {
        target: Addr,
        observed: Rc<RefCell<Option<SysError>>>,
    }
    impl Process for Closer {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.connect(self.target);
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::ConnEstablished { conn } = ev {
                sys.close(conn);
                sys.close(conn); // idempotent
                let err = sys.read(conn, 10).expect_err("closed");
                *self.observed.borrow_mut() = Some(err);
            }
        }
    }
    struct Sink;
    impl Process for Sink {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.listen(Port(1)).expect("listen");
        }
        fn on_event(&mut self, _: &mut dyn SysApi, _: Event) {}
    }
    let observed = Rc::new(RefCell::new(None));
    let mut sim = Simulation::new(quiet_config(13));
    let a = sim.add_node("a");
    sim.spawn(a, "sink", Box::new(Sink));
    sim.spawn(
        a,
        "closer",
        Box::new(Closer {
            target: Addr::new(a, Port(1)),
            observed: observed.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    let seen = observed.borrow().clone();
    match seen {
        Some(SysError::ClosedLocally(_)) => {}
        other => panic!("expected ClosedLocally, got {other:?}"),
    }
}

#[test]
fn event_limit_guard_stops_runaway() {
    struct Ticker;
    impl Process for Ticker {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            sys.set_timer(SimDuration::from_nanos(1), 0);
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, _: Event) {
            sys.set_timer(SimDuration::from_nanos(1), 0);
        }
    }
    let mut sim = Simulation::new(quiet_config(14));
    let a = sim.add_node("a");
    sim.spawn(a, "ticker", Box::new(Ticker));
    let outcome = sim.run_until_limited(SimTime::from_secs(1), 1000);
    assert_eq!(outcome, RunOutcome::EventLimit);
}
