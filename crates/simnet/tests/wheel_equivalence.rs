//! Property-based equivalence of the hierarchical timing wheel against a
//! reference `BinaryHeap` model: under arbitrary interleavings of
//! schedules and deadline-bounded pops — with deliberately colliding
//! timestamps — both structures must serve the exact same `(time, seq)`
//! sequence, including the seq tie-break among equal times. The 13
//! pinned scenario digests rest on this total order.

use proptest::prelude::*;
use simnet::TimingWheel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const TICK: u64 = 1 << 16; // wheel tick granularity in ns
const HORIZON: u64 = TICK << 36; // first time past the wheel's range

#[derive(Clone, Debug)]
enum Op {
    /// Schedule at `base + jitter`; many pushes share a base so equal
    /// timestamps (tie-broken by seq) are common, not accidental.
    Push { base: u64, jitter: u64 },
    /// Pop everything due up to the deadline, one entry at a time.
    PopDue { deadline: u64 },
}

fn arb_time() -> impl Strategy<Value = (u64, u64)> {
    // Bases collide across five buckets; jitter spans sub-tick offsets,
    // a few slots, a level boundary, and the far-overflow horizon.
    (
        0u64..5,
        prop_oneof![
            Just(0u64),
            1u64..3,
            Just(TICK),
            Just(TICK * 64),
            Just(TICK * 64 * 64 * 3),
            Just(HORIZON + 17),
        ],
    )
        .prop_map(|(bucket, jitter)| (bucket * 40_000, jitter))
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is unweighted; repeating the push arm
    // approximates a 3:2 push/pop mix so the wheel stays populated.
    let push = || arb_time().prop_map(|(base, jitter)| Op::Push { base, jitter });
    let pop = || {
        prop_oneof![
            Just(0u64),
            40_000u64..200_000,
            Just(TICK * 128),
            Just(HORIZON * 2),
            Just(u64::MAX),
        ]
        .prop_map(|deadline| Op::PopDue { deadline })
    };
    prop_oneof![push(), push(), push(), pop(), pop()]
}

proptest! {
    #[test]
    fn wheel_matches_heap_model(ops in prop::collection::vec(arb_op(), 1..250)) {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // The kernel never schedules into the past; track its clock.
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Push { base, jitter } => {
                    let at = now.max(base.saturating_add(jitter));
                    wheel.push(at, seq, seq);
                    model.push(Reverse((at, seq)));
                    seq += 1;
                }
                Op::PopDue { deadline } => {
                    let deadline = now.max(deadline);
                    loop {
                        let expected = match model.peek() {
                            Some(&Reverse((at, _))) if at <= deadline => model.pop(),
                            _ => None,
                        };
                        let got = wheel.pop_due(deadline);
                        match (expected, got) {
                            (None, None) => break,
                            (Some(Reverse((at, s))), Some((gat, gseq, gval))) => {
                                prop_assert_eq!((at, s, s), (gat, gseq, gval));
                                now = now.max(gat);
                            }
                            (e, g) => {
                                return Err(proptest::test_runner::TestCaseError::fail(format!(
                                    "model/wheel diverged: model={e:?} wheel={g:?}"
                                )));
                            }
                        }
                    }
                    // After a bounded pop the kernel clock stands at the
                    // deadline (Idle and DeadlineReached both land there).
                    now = now.max(deadline);
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            prop_assert_eq!(wheel.is_empty(), model.is_empty());
        }
        // Full drain must agree to the last entry, ties included.
        while let Some(Reverse((at, s))) = model.pop() {
            let got = wheel.pop_due(u64::MAX);
            prop_assert_eq!(Some((at, s, s)), got);
        }
        prop_assert!(wheel.is_empty());
        prop_assert_eq!(wheel.pop_due(u64::MAX).map(|e| e.0), None);
    }

    /// Same-timestamp bursts must come back in exact seq (FIFO) order —
    /// the tie-break the notify-requeue storm depends on.
    #[test]
    fn equal_timestamps_pop_in_seq_order(
        n in 1usize..200,
        at in prop_oneof![Just(0u64), Just(123_456), Just(TICK * 7 + 3), Just(HORIZON + 1)],
    ) {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        for seq in 0..n as u64 {
            wheel.push(at, seq, seq);
        }
        for seq in 0..n as u64 {
            prop_assert_eq!(wheel.pop_due(u64::MAX), Some((at, seq, seq)));
        }
        prop_assert!(wheel.is_empty());
    }
}
