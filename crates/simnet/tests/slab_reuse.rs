//! Storage-layout tests for the slab-backed process table (DESIGN §11):
//! slot recycling must stay invisible at the `ProcessId` level — dead
//! pids never come back to life, identity queries keep answering for
//! them, physical slots stay bounded by peak concurrency, and live-pid
//! iteration remains in spawn order across arbitrary churn.

use simnet::*;

/// A process that idles until killed externally.
struct Idler;
impl Process for Idler {
    fn on_start(&mut self, _sys: &mut dyn SysApi) {}
    fn on_event(&mut self, _sys: &mut dyn SysApi, _ev: Event) {}
    fn label(&self) -> &str {
        "idler"
    }
}

#[test]
fn slot_reuse_never_resurrects_a_dead_pid() {
    let mut sim = Simulation::new(SimConfig::default());
    let node = sim.add_node("host");

    let mut dead: Vec<(ProcessId, String)> = Vec::new();
    for round in 0..50 {
        let label = format!("victim-{round}");
        let pid = sim.spawn(node, &label, Box::new(Idler));
        sim.run_until(sim.now() + SimDuration::from_millis(1));
        sim.kill_process(pid, "churn");
        dead.push((pid, label));

        // Spawn a replacement that reuses the freed slab slot.
        let label = format!("fresh-{round}");
        let fresh = sim.spawn(node, &label, Box::new(Idler));
        sim.run_until(sim.now() + SimDuration::from_millis(1));
        assert!(sim.process_alive(fresh), "fresh process must be alive");

        // Every previously killed pid must stay dead and keep its
        // identity, no matter how often its physical slot is recycled.
        for (pid, label) in &dead {
            assert!(!sim.process_alive(*pid), "dead pid {pid} resurrected");
            assert_eq!(sim.process_label(*pid), label.as_str());
            assert_eq!(sim.process_node(*pid), Some(node));
        }
        sim.kill_process(fresh, "churn");
        dead.push((fresh, label));
    }

    let stats = sim.kernel_stats();
    assert_eq!(stats.processes_spawned, 100, "dense pid space");
    assert_eq!(stats.live_processes, 0);
    // Peak concurrency was 2 (victim + fresh overlap briefly), so the
    // slab must not have grown anywhere near the 100 pids issued.
    assert!(
        stats.proc_slots <= 4,
        "proc slots grew to {} despite bounded concurrency",
        stats.proc_slots
    );
}

#[test]
fn live_pid_iteration_stays_in_spawn_order_after_reuse() {
    let mut sim = Simulation::new(SimConfig::default());
    let node = sim.add_node("host");

    let a = sim.spawn(node, "a", Box::new(Idler));
    let b = sim.spawn(node, "b", Box::new(Idler));
    let c = sim.spawn(node, "c", Box::new(Idler));
    sim.run_until(sim.now() + SimDuration::from_millis(1));
    assert_eq!(sim.live_processes(), vec![a, b, c]);

    // Kill the middle process; its slab slot is freed first.
    sim.kill_process(b, "gap");
    assert_eq!(sim.live_processes(), vec![a, c]);

    // The next spawns reuse freed physical slots, but their pids are new
    // and must appear *after* the survivors in spawn-order iteration.
    let d = sim.spawn(node, "d", Box::new(Idler));
    let e = sim.spawn(node, "e", Box::new(Idler));
    sim.run_until(sim.now() + SimDuration::from_millis(1));
    assert_ne!(d, b, "recycled slot must not resurface as an old pid");
    assert_eq!(sim.live_processes(), vec![a, c, d, e]);

    // Stats reflect recycling: five pids ever, four alive, slots bounded.
    let stats = sim.kernel_stats();
    assert_eq!(stats.processes_spawned, 5);
    assert_eq!(stats.live_processes, 4);
    assert!(stats.proc_slots <= 4, "slot for b must have been reused");
}

#[test]
fn dead_process_resources_are_recycled() {
    let mut sim = Simulation::new(SimConfig::default());
    let node = sim.add_node("host");

    struct ListenAndTime;
    impl Process for ListenAndTime {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            let _ = sys.listen(Port(7));
            let _ = sys.set_timer(SimDuration::from_secs(60), 1);
        }
        fn on_event(&mut self, _sys: &mut dyn SysApi, _ev: Event) {}
        fn label(&self) -> &str {
            "listener"
        }
    }

    for _ in 0..20 {
        let pid = sim.spawn(node, "listener", Box::new(ListenAndTime));
        // Run past the 30ms launch latency so `on_start` actually runs.
        sim.run_until(sim.now() + SimDuration::from_millis(40));
        sim.kill_process(pid, "churn");
    }
    let stats = sim.kernel_stats();
    assert_eq!(stats.listeners_issued, 20, "listener ids never reused");
    assert!(
        stats.listener_slots <= 2,
        "listener slots grew to {}",
        stats.listener_slots
    );
    assert_eq!(stats.timers_issued, 20, "timer ids never reused");

    // Timer slots recycle once timers fire: run past every deadline and
    // spin another churn round — the table must reuse freed slots
    // instead of growing.
    sim.run_until(sim.now() + SimDuration::from_secs(120));
    let drained = sim.kernel_stats();
    assert_eq!(drained.timer_slots, 20, "all 20 timers have fired");
    for _ in 0..20 {
        let pid = sim.spawn(node, "listener", Box::new(ListenAndTime));
        sim.run_until(sim.now() + SimDuration::from_millis(40));
        sim.kill_process(pid, "churn");
    }
    sim.run_until(sim.now() + SimDuration::from_secs(120));
    let after = sim.kernel_stats();
    assert_eq!(after.timers_issued, 40);
    assert_eq!(
        after.timer_slots, 20,
        "fired-timer slots must be recycled, not regrown"
    );
}
