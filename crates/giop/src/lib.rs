//! # giop — the CORBA wire protocol subset used by MEAD
//!
//! The paper's proactive recovery schemes are defined in terms of GIOP
//! (General Inter-ORB Protocol) semantics: `LOCATION_FORWARD` replies that
//! redirect clients to another replica's IOR, fabricated
//! `NEEDS_ADDRESSING_MODE` replies that make the client ORB resend its last
//! request, and GIOP request parsing to recover `request_id`s and object
//! keys at the interceptor. This crate implements that wire protocol from
//! scratch:
//!
//! * [`CdrWriter`]/[`CdrReader`] — Common Data Representation marshalling
//!   with natural alignment and both byte orders,
//! * [`Message`] and friends — GIOP framing, Request/Reply and the reply
//!   statuses of the paper's schemes,
//! * [`Ior`]/[`IiopProfile`] — Interoperable Object References,
//! * [`ObjectKey`] — persistent object keys with the 16-bit lookup hash of
//!   section 4.1, and
//! * [`FrameSplitter`] — an incremental splitter that separates GIOP frames
//!   from piggybacked MEAD control frames in an intercepted byte stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdr;
mod ior;
mod key;
mod message;

pub use cdr::{wire_len, CdrError, CdrReader, CdrWriter, Endian};
pub use ior::{IiopProfile, Ior, TAG_INTERNET_IOP};
pub use key::ObjectKey;
pub use message::{
    encode_frame, Frame, FrameKind, FrameSplitter, GiopError, Message, MsgType, ReplyBody,
    ReplyMessage, ReplyStatus, RequestMessage, GIOP_MAGIC, HEADER_LEN, MEAD_MAGIC,
};

/// Well-known repository id for the `COMM_FAILURE` system exception.
pub const EX_COMM_FAILURE: &str = "IDL:omg.org/CORBA/COMM_FAILURE:1.0";
/// Well-known repository id for the `TRANSIENT` system exception.
pub const EX_TRANSIENT: &str = "IDL:omg.org/CORBA/TRANSIENT:1.0";
/// Well-known repository id for the `OBJECT_NOT_EXIST` system exception.
pub const EX_OBJECT_NOT_EXIST: &str = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0";
