//! Interoperable Object References (IORs).
//!
//! An IOR names a CORBA object location-transparently: a repository type id
//! plus one or more tagged profiles, each carrying enough addressing
//! information for some transport. We implement the IIOP profile (the only
//! one the paper's system needs): host, port and the object key.
//!
//! In the `LOCATION_FORWARD` scheme the body of the forwarding reply *is*
//! an IOR for the object at the next replica (section 4.1), so IORs must be
//! CDR-encodable.

use crate::cdr::{CdrError, CdrReader, CdrWriter};
use crate::key::ObjectKey;

/// Profile tag for IIOP, per the CORBA specification.
pub const TAG_INTERNET_IOP: u32 = 0;

/// An IIOP (TCP) profile: where a CORBA object lives.
///
/// Hosts are simulated node names of the form `"node<N>"`; the pair maps
/// onto a `simnet::Addr` at the ORB layer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IiopProfile {
    /// IIOP major version (always 1 here).
    pub version_major: u8,
    /// IIOP minor version (0 for this implementation's GIOP 1.0 framing).
    pub version_minor: u8,
    /// Host name, e.g. `"node2"`.
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Persistent object key at that server.
    pub object_key: ObjectKey,
}

/// An Interoperable Object Reference.
///
/// ```
/// use giop::{Ior, ObjectKey};
///
/// let ior = Ior::singleton(
///     "IDL:TimeOfDay:1.0",
///     "node1",
///     2810,
///     ObjectKey::persistent("TimePOA", "TimeOfDay"),
/// );
/// let bytes = ior.encode();
/// assert_eq!(Ior::decode(&bytes).unwrap(), ior);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ior {
    /// Repository id of the most-derived interface, e.g.
    /// `"IDL:TimeOfDay:1.0"`.
    pub type_id: String,
    /// Tagged profiles (we only produce/consume IIOP).
    pub profiles: Vec<IiopProfile>,
}

impl Ior {
    /// Builds an IOR with a single IIOP profile.
    pub fn singleton(type_id: &str, host: &str, port: u16, object_key: ObjectKey) -> Self {
        Ior {
            type_id: type_id.to_string(),
            profiles: vec![IiopProfile {
                version_major: 1,
                version_minor: 0,
                host: host.to_string(),
                port,
                object_key,
            }],
        }
    }

    /// The first IIOP profile, if any.
    pub fn primary_profile(&self) -> Option<&IiopProfile> {
        self.profiles.first()
    }

    /// CDR-encodes the IOR (big-endian, as used in reply bodies).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = CdrWriter::new(crate::Endian::Big);
        self.write_into(&mut w);
        w.finish().to_vec()
    }

    /// Writes this IOR into an ongoing CDR stream.
    pub fn write_into(&self, w: &mut CdrWriter) {
        w.write_string(&self.type_id);
        w.write_u32(crate::cdr::wire_len(self.profiles.len()));
        for p in &self.profiles {
            w.write_u32(TAG_INTERNET_IOP);
            // Profile body is an encapsulation: sequence<octet> with its own
            // byte-order octet (we always emit big-endian encapsulations).
            let mut body = CdrWriter::new(crate::Endian::Big);
            body.write_u8(0); // encapsulation endianness: big
            body.write_u8(p.version_major);
            body.write_u8(p.version_minor);
            body.write_string(&p.host);
            body.write_u16(p.port);
            body.write_octets(p.object_key.as_bytes());
            w.write_octets(&body.finish());
        }
    }

    /// Decodes an IOR from `bytes`.
    ///
    /// # Errors
    ///
    /// Any [`CdrError`] from malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, CdrError> {
        let mut r = CdrReader::new(bytes.to_vec().into(), crate::Endian::Big);
        Self::read_from(&mut r)
    }

    /// Reads an IOR from an ongoing CDR stream.
    ///
    /// # Errors
    ///
    /// Any [`CdrError`] from malformed input.
    pub fn read_from(r: &mut CdrReader) -> Result<Self, CdrError> {
        let type_id = r.read_string()?;
        let n = r.read_u32()?;
        if n as usize > r.remaining() {
            return Err(CdrError::LengthOverrun {
                declared: n,
                remaining: r.remaining(),
            });
        }
        let mut profiles = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let tag = r.read_u32()?;
            let body = r.read_octets()?;
            if tag != TAG_INTERNET_IOP {
                continue; // skip foreign profiles, per the spec
            }
            let mut b = CdrReader::new(body.into(), crate::Endian::Big);
            let endian_flag = b.read_u8()?;
            if endian_flag != 0 {
                // We only ever emit big-endian encapsulations.
                return Err(CdrError::InvalidEnum {
                    what: "encapsulation endianness",
                    value: u32::from(endian_flag),
                });
            }
            let version_major = b.read_u8()?;
            let version_minor = b.read_u8()?;
            let host = b.read_string()?;
            let port = b.read_u16()?;
            let object_key = ObjectKey::from_bytes(b.read_octets()?);
            profiles.push(IiopProfile {
                version_major,
                version_minor,
                host,
                port,
                object_key,
            });
        }
        Ok(Ior { type_id, profiles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ior {
        Ior::singleton(
            "IDL:TimeOfDay:1.0",
            "node3",
            2810,
            ObjectKey::persistent("TimePOA", "TimeOfDay"),
        )
    }

    #[test]
    fn roundtrip() {
        let ior = sample();
        let b = ior.encode();
        assert_eq!(Ior::decode(&b).unwrap(), ior);
    }

    #[test]
    fn primary_profile_accessor() {
        let ior = sample();
        let p = ior.primary_profile().unwrap();
        assert_eq!(p.host, "node3");
        assert_eq!(p.port, 2810);
    }

    #[test]
    fn multi_profile_roundtrip() {
        let mut ior = sample();
        ior.profiles.push(IiopProfile {
            version_major: 1,
            version_minor: 0,
            host: "node4".into(),
            port: 2811,
            object_key: ObjectKey::persistent("TimePOA", "TimeOfDay"),
        });
        let b = ior.encode();
        let got = Ior::decode(&b).unwrap();
        assert_eq!(got.profiles.len(), 2);
        assert_eq!(got, ior);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let b = sample().encode();
        for cut in 0..b.len() {
            let _ = Ior::decode(&b[..cut]); // must not panic
        }
        assert!(Ior::decode(&b[..4]).is_err());
    }

    #[test]
    fn hostile_profile_count_is_rejected() {
        let mut w = CdrWriter::new(crate::Endian::Big);
        w.write_string("IDL:x:1.0");
        w.write_u32(u32::MAX); // absurd profile count
        let b = w.finish();
        assert!(matches!(
            Ior::decode(&b),
            Err(CdrError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn foreign_profiles_are_skipped() {
        let mut w = CdrWriter::new(crate::Endian::Big);
        w.write_string("IDL:x:1.0");
        w.write_u32(1);
        w.write_u32(99); // unknown tag
        w.write_octets(&[1, 2, 3]);
        let got = Ior::decode(&w.finish()).unwrap();
        assert!(got.profiles.is_empty());
        assert!(got.primary_profile().is_none());
    }
}
