//! GIOP message types, encoding and decoding.
//!
//! The General Inter-ORB Protocol rides on a connection-oriented transport
//! and frames every message with a fixed 12-byte header: the magic
//! `"GIOP"`, a protocol version, a flags octet (bit 0 = little-endian), a
//! message type and the body length. We implement GIOP 1.0 framing with
//! the 1.2 `NEEDS_ADDRESSING_MODE` reply status, which the paper's second
//! scheme fabricates at the client-side interceptor.
//!
//! MEAD's own proactive fail-over messages (crate `mead`) reuse the same
//! 12-byte header layout with the magic `"MEAD"`, so one stream splitter
//! ([`FrameSplitter`]) can carve both kinds of frame out of an intercepted
//! byte stream — that is exactly what the paper's interceptor does when it
//! filters "custom MEAD messages that we piggyback onto regular GIOP
//! messages" (section 3.1).

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

use crate::cdr::{CdrError, CdrReader, CdrWriter, Endian};
use crate::ior::Ior;
use crate::key::ObjectKey;

/// Magic bytes opening every GIOP message.
pub const GIOP_MAGIC: [u8; 4] = *b"GIOP";
/// Magic bytes opening every MEAD control message (see crate `mead`).
pub const MEAD_MAGIC: [u8; 4] = *b"MEAD";
/// Fixed header length shared by GIOP and MEAD frames.
pub const HEADER_LEN: usize = 12;

/// Bounds-checked 4-byte read at `at` (frames are untrusted wire bytes;
/// the decode paths are a detlint R3 no-panic zone).
fn read4(bytes: &[u8], at: usize) -> Result<[u8; 4], GiopError> {
    bytes
        .get(at..at.saturating_add(4))
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .ok_or(GiopError::Truncated)
}

/// Bounds-checked single-byte read at `at`.
fn read_u8_at(bytes: &[u8], at: usize) -> Result<u8, GiopError> {
    bytes.get(at).copied().ok_or(GiopError::Truncated)
}

/// Decodes the 4-byte body length at header offset 8 in `endian` order.
fn read_len(bytes: &[u8], little: bool) -> Result<usize, GiopError> {
    let raw = read4(bytes, 8)?;
    let len = if little {
        u32::from_le_bytes(raw)
    } else {
        u32::from_be_bytes(raw)
    };
    Ok(len as usize)
}

/// GIOP message type octet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// Client request.
    Request = 0,
    /// Server reply.
    Reply = 1,
    /// Cancels an outstanding request.
    CancelRequest = 2,
    /// Object-location query.
    LocateRequest = 3,
    /// Object-location answer.
    LocateReply = 4,
    /// Orderly connection shutdown.
    CloseConnection = 5,
    /// Protocol error notification.
    MessageError = 6,
}

impl MsgType {
    /// The wire octet for this message type (inverse of `from_u8`).
    pub fn code(self) -> u8 {
        match self {
            MsgType::Request => 0,
            MsgType::Reply => 1,
            MsgType::CancelRequest => 2,
            MsgType::LocateRequest => 3,
            MsgType::LocateReply => 4,
            MsgType::CloseConnection => 5,
            MsgType::MessageError => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Self, GiopError> {
        Ok(match v {
            0 => MsgType::Request,
            1 => MsgType::Reply,
            2 => MsgType::CancelRequest,
            3 => MsgType::LocateRequest,
            4 => MsgType::LocateReply,
            5 => MsgType::CloseConnection,
            6 => MsgType::MessageError,
            other => return Err(GiopError::UnknownMsgType(other)),
        })
    }
}

/// GIOP reply status, including the two statuses the paper's proactive
/// schemes hinge on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ReplyStatus {
    /// Normal completion; body holds results.
    NoException = 0,
    /// Application-defined exception.
    UserException = 1,
    /// ORB/system exception (`COMM_FAILURE`, `TRANSIENT`, ...).
    SystemException = 2,
    /// "Retry this request at the object denoted by the enclosed IOR" —
    /// scheme 4.1.
    LocationForward = 3,
    /// "Supply more addressing information and resend" — scheme 4.2.
    NeedsAddressingMode = 5,
}

impl ReplyStatus {
    /// The wire discriminant for this status (inverse of `from_u32`).
    pub fn code(self) -> u32 {
        match self {
            ReplyStatus::NoException => 0,
            ReplyStatus::UserException => 1,
            ReplyStatus::SystemException => 2,
            ReplyStatus::LocationForward => 3,
            ReplyStatus::NeedsAddressingMode => 5,
        }
    }

    fn from_u32(v: u32) -> Result<Self, GiopError> {
        Ok(match v {
            0 => ReplyStatus::NoException,
            1 => ReplyStatus::UserException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::LocationForward,
            5 => ReplyStatus::NeedsAddressingMode,
            other => {
                return Err(GiopError::Cdr(CdrError::InvalidEnum {
                    what: "ReplyStatus",
                    value: other,
                }))
            }
        })
    }
}

/// Errors raised while decoding GIOP frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GiopError {
    /// The frame does not start with a known magic.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8, u8),
    /// Unknown message-type octet.
    UnknownMsgType(u8),
    /// Marshalling error in header or body.
    Cdr(CdrError),
    /// Frame is shorter than its header claims.
    Truncated,
}

impl fmt::Display for GiopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GiopError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            GiopError::BadVersion(ma, mi) => write!(f, "unsupported GIOP version {ma}.{mi}"),
            GiopError::UnknownMsgType(t) => write!(f, "unknown GIOP message type {t}"),
            GiopError::Cdr(e) => write!(f, "marshalling error: {e}"),
            GiopError::Truncated => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for GiopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GiopError::Cdr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdrError> for GiopError {
    fn from(e: CdrError) -> Self {
        GiopError::Cdr(e)
    }
}

/// A client request message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestMessage {
    /// Matches the reply to the request on this connection.
    pub request_id: u32,
    /// `false` for oneway operations.
    pub response_expected: bool,
    /// Target object's persistent key.
    pub object_key: ObjectKey,
    /// Operation name, e.g. `"time_of_day"`.
    pub operation: String,
    /// CDR-encoded in-parameters.
    pub body: Vec<u8>,
}

/// The payload of a reply, by status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplyBody {
    /// Results (CDR-encoded out-parameters).
    NoException(Vec<u8>),
    /// Application exception (repository id).
    UserException(String),
    /// System exception.
    SystemException {
        /// Exception repository id, e.g. `"IDL:omg.org/CORBA/COMM_FAILURE:1.0"`.
        repo_id: String,
        /// Vendor minor code.
        minor: u32,
        /// Completion status (0 = YES, 1 = NO, 2 = MAYBE).
        completed: u32,
    },
    /// Redirect: retry at the object named by this IOR.
    LocationForward(Ior),
    /// Resend with more addressing information (addressing disposition).
    NeedsAddressingMode(u16),
}

impl ReplyBody {
    /// The wire status corresponding to this body.
    pub fn status(&self) -> ReplyStatus {
        match self {
            ReplyBody::NoException(_) => ReplyStatus::NoException,
            ReplyBody::UserException(_) => ReplyStatus::UserException,
            ReplyBody::SystemException { .. } => ReplyStatus::SystemException,
            ReplyBody::LocationForward(_) => ReplyStatus::LocationForward,
            ReplyBody::NeedsAddressingMode(_) => ReplyStatus::NeedsAddressingMode,
        }
    }
}

/// A server reply message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyMessage {
    /// Matches [`RequestMessage::request_id`].
    pub request_id: u32,
    /// Status-discriminated payload.
    pub body: ReplyBody,
}

/// Any GIOP message we produce or consume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client request.
    Request(RequestMessage),
    /// Server reply.
    Reply(ReplyMessage),
    /// Orderly shutdown notice.
    CloseConnection,
    /// Protocol error notice.
    MessageError,
}

impl Message {
    /// Encodes the message as a complete wire frame (header + body) in
    /// `endian` byte order.
    pub fn encode(&self, endian: Endian) -> Bytes {
        let (msg_type, body) = match self {
            Message::Request(req) => {
                let mut w = CdrWriter::new(endian);
                w.write_u32(0); // empty service context sequence
                w.write_u32(req.request_id);
                w.write_bool(req.response_expected);
                w.write_octets(req.object_key.as_bytes());
                w.write_string(&req.operation);
                w.write_octets(&[]); // principal (deprecated)
                let mut b = w.finish().to_vec();
                b.extend_from_slice(&req.body);
                (MsgType::Request, b)
            }
            Message::Reply(rep) => {
                let mut w = CdrWriter::new(endian);
                w.write_u32(0); // empty service context sequence
                w.write_u32(rep.request_id);
                w.write_u32(rep.body.status().code());
                match &rep.body {
                    ReplyBody::NoException(out) => {
                        let mut b = w.finish().to_vec();
                        b.extend_from_slice(out);
                        (MsgType::Reply, b)
                    }
                    ReplyBody::UserException(repo_id) => {
                        w.write_string(repo_id);
                        (MsgType::Reply, w.finish().to_vec())
                    }
                    ReplyBody::SystemException {
                        repo_id,
                        minor,
                        completed,
                    } => {
                        w.write_string(repo_id);
                        w.write_u32(*minor);
                        w.write_u32(*completed);
                        (MsgType::Reply, w.finish().to_vec())
                    }
                    ReplyBody::LocationForward(ior) => {
                        ior.write_into(&mut w);
                        (MsgType::Reply, w.finish().to_vec())
                    }
                    ReplyBody::NeedsAddressingMode(disposition) => {
                        w.write_u16(*disposition);
                        (MsgType::Reply, w.finish().to_vec())
                    }
                }
            }
            Message::CloseConnection => (MsgType::CloseConnection, Vec::new()),
            Message::MessageError => (MsgType::MessageError, Vec::new()),
        };
        encode_frame(GIOP_MAGIC, msg_type.code(), endian, &body)
    }

    /// Decodes a complete frame previously produced by a [`FrameSplitter`].
    ///
    /// # Errors
    ///
    /// Any [`GiopError`] on malformed input; never panics on hostile bytes.
    pub fn decode(frame: &[u8]) -> Result<Message, GiopError> {
        let magic = read4(frame, 0)?;
        if magic != GIOP_MAGIC {
            return Err(GiopError::BadMagic(magic));
        }
        let (major, minor) = (read_u8_at(frame, 4)?, read_u8_at(frame, 5)?);
        if major != 1 {
            return Err(GiopError::BadVersion(major, minor));
        }
        let little = read_u8_at(frame, 6)? & 1 == 1;
        let endian = if little { Endian::Little } else { Endian::Big };
        let msg_type = MsgType::from_u8(read_u8_at(frame, 7)?)?;
        let declared = read_len(frame, little)?;
        let body = frame.get(HEADER_LEN..).unwrap_or(&[]);
        let body = body.get(..declared).ok_or(GiopError::Truncated)?;
        match msg_type {
            MsgType::Request => {
                let mut r = CdrReader::new(Bytes::copy_from_slice(body), endian);
                let _svc = r.read_u32()?;
                let request_id = r.read_u32()?;
                let response_expected = r.read_bool()?;
                let object_key = ObjectKey::from_bytes(r.read_octets()?);
                let operation = r.read_string()?;
                let _principal = r.read_octets()?;
                let consumed = body.len().saturating_sub(r.remaining());
                Ok(Message::Request(RequestMessage {
                    request_id,
                    response_expected,
                    object_key,
                    operation,
                    body: body.get(consumed..).unwrap_or(&[]).to_vec(),
                }))
            }
            MsgType::Reply => {
                let mut r = CdrReader::new(Bytes::copy_from_slice(body), endian);
                let _svc = r.read_u32()?;
                let request_id = r.read_u32()?;
                let status = ReplyStatus::from_u32(r.read_u32()?)?;
                let reply_body = match status {
                    ReplyStatus::NoException => {
                        let consumed = body.len().saturating_sub(r.remaining());
                        ReplyBody::NoException(body.get(consumed..).unwrap_or(&[]).to_vec())
                    }
                    ReplyStatus::UserException => ReplyBody::UserException(r.read_string()?),
                    ReplyStatus::SystemException => ReplyBody::SystemException {
                        repo_id: r.read_string()?,
                        minor: r.read_u32()?,
                        completed: r.read_u32()?,
                    },
                    ReplyStatus::LocationForward => {
                        ReplyBody::LocationForward(Ior::read_from(&mut r)?)
                    }
                    ReplyStatus::NeedsAddressingMode => {
                        ReplyBody::NeedsAddressingMode(r.read_u16()?)
                    }
                };
                Ok(Message::Reply(ReplyMessage {
                    request_id,
                    body: reply_body,
                }))
            }
            MsgType::CloseConnection => Ok(Message::CloseConnection),
            MsgType::MessageError => Ok(Message::MessageError),
            other => Err(GiopError::UnknownMsgType(other.code())),
        }
    }
}

/// Builds a 12-byte-header frame (shared by GIOP and MEAD messages).
pub fn encode_frame(magic: [u8; 4], msg_type: u8, endian: Endian, body: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_slice(&magic);
    out.put_u8(1); // major
    out.put_u8(0); // minor
    out.put_u8(match endian {
        Endian::Big => 0,
        Endian::Little => 1,
    });
    out.put_u8(msg_type);
    let len = crate::cdr::wire_len(body.len());
    match endian {
        Endian::Big => out.put_u32(len),
        Endian::Little => out.put_u32_le(len),
    }
    out.put_slice(body);
    out.freeze()
}

/// Which protocol a split frame belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Ordinary GIOP traffic.
    Giop,
    /// MEAD control traffic piggybacked on the same stream.
    Mead,
}

/// A complete frame carved from a byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol discriminator (by magic).
    pub kind: FrameKind,
    /// The full frame bytes, header included.
    pub bytes: Bytes,
}

impl Frame {
    /// The frame's message-type octet (header byte 7). Frames produced by
    /// [`FrameSplitter`] always carry a full header; a hand-built short
    /// `Frame` reads as [`MsgType::MessageError`] rather than panicking.
    pub fn msg_type(&self) -> u8 {
        self.bytes
            .get(7)
            .copied()
            .unwrap_or(MsgType::MessageError.code())
    }

    /// The frame's body (everything after the fixed header).
    pub fn body(&self) -> &[u8] {
        self.bytes.get(HEADER_LEN..).unwrap_or(&[])
    }
}

/// Incremental stream splitter: feed it raw bytes as they arrive, pull out
/// complete GIOP/MEAD frames.
///
/// ```
/// use giop::{Endian, FrameKind, FrameSplitter, Message};
///
/// let frame = Message::CloseConnection.encode(Endian::Big);
/// let mut s = FrameSplitter::new();
/// s.push(&frame[..5]); // partial delivery
/// assert!(s.next_frame().unwrap().is_none());
/// s.push(&frame[5..]);
/// let got = s.next_frame().unwrap().unwrap();
/// assert_eq!(got.kind, FrameKind::Giop);
/// ```
#[derive(Debug, Default)]
pub struct FrameSplitter {
    buf: BytesMut,
}

impl FrameSplitter {
    /// Creates an empty splitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`GiopError::BadMagic`] if the stream is out of sync (the connection
    /// should be torn down, as a real ORB would).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, GiopError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = read4(&self.buf, 0)?;
        let kind = match &magic {
            m if *m == GIOP_MAGIC => FrameKind::Giop,
            m if *m == MEAD_MAGIC => FrameKind::Mead,
            _ => return Err(GiopError::BadMagic(magic)),
        };
        let little = read_u8_at(&self.buf, 6)? & 1 == 1;
        let body_len = read_len(&self.buf, little)?;
        let total = HEADER_LEN.saturating_add(body_len);
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf.split_to(total).freeze();
        Ok(Some(Frame { kind, bytes: frame }))
    }

    /// Drains every complete frame currently buffered.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GiopError::BadMagic`] encountered.
    pub fn drain_frames(&mut self) -> Result<Vec<Frame>, GiopError> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestMessage {
        RequestMessage {
            request_id: 42,
            response_expected: true,
            object_key: ObjectKey::persistent("TimePOA", "TimeOfDay"),
            operation: "time_of_day".into(),
            body: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn request_roundtrip_both_endians() {
        for endian in [Endian::Big, Endian::Little] {
            let msg = Message::Request(sample_request());
            let wire = msg.encode(endian);
            assert_eq!(Message::decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn reply_bodies_roundtrip() {
        let bodies = vec![
            ReplyBody::NoException(vec![9, 9, 9]),
            ReplyBody::UserException("IDL:App/Oops:1.0".into()),
            ReplyBody::SystemException {
                repo_id: "IDL:omg.org/CORBA/COMM_FAILURE:1.0".into(),
                minor: 2,
                completed: 1,
            },
            ReplyBody::LocationForward(Ior::singleton(
                "IDL:TimeOfDay:1.0",
                "node2",
                2810,
                ObjectKey::persistent("TimePOA", "TimeOfDay"),
            )),
            ReplyBody::NeedsAddressingMode(2),
        ];
        for body in bodies {
            let msg = Message::Reply(ReplyMessage {
                request_id: 7,
                body,
            });
            let wire = msg.encode(Endian::Big);
            assert_eq!(Message::decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        for msg in [Message::CloseConnection, Message::MessageError] {
            let wire = msg.encode(Endian::Big);
            assert_eq!(Message::decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn splitter_handles_partial_and_coalesced_delivery() {
        let m1 = Message::Request(sample_request()).encode(Endian::Big);
        let m2 = Message::Reply(ReplyMessage {
            request_id: 42,
            body: ReplyBody::NoException(vec![5]),
        })
        .encode(Endian::Big);
        let mut all = m1.to_vec();
        all.extend_from_slice(&m2);
        // Feed one byte at a time.
        let mut s = FrameSplitter::new();
        let mut frames = Vec::new();
        for b in &all {
            s.push(std::slice::from_ref(b));
            while let Some(f) = s.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            Message::decode(&frames[0].bytes).unwrap(),
            Message::Request(sample_request())
        );
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn splitter_distinguishes_mead_frames() {
        let giop = Message::CloseConnection.encode(Endian::Big);
        let mead = encode_frame(MEAD_MAGIC, 1, Endian::Big, &[0xAA; 20]);
        let mut s = FrameSplitter::new();
        s.push(&mead);
        s.push(&giop);
        let frames = s.drain_frames().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind, FrameKind::Mead);
        assert_eq!(frames[0].body().len(), 20);
        assert_eq!(frames[1].kind, FrameKind::Giop);
    }

    #[test]
    fn splitter_rejects_garbage() {
        let mut s = FrameSplitter::new();
        s.push(b"NOTAPROTOCOLFRAME");
        assert!(matches!(s.next_frame(), Err(GiopError::BadMagic(_))));
    }

    #[test]
    fn decode_rejects_bad_version_and_type() {
        let mut wire = Message::CloseConnection.encode(Endian::Big).to_vec();
        wire[4] = 9;
        assert!(matches!(
            Message::decode(&wire),
            Err(GiopError::BadVersion(9, 0))
        ));
        let mut wire = Message::CloseConnection.encode(Endian::Big).to_vec();
        wire[7] = 99;
        assert!(matches!(
            Message::decode(&wire),
            Err(GiopError::UnknownMsgType(99))
        ));
    }

    #[test]
    fn decode_never_panics_on_truncation() {
        let wire = Message::Request(sample_request()).encode(Endian::Big);
        for cut in 0..wire.len() {
            let _ = Message::decode(&wire[..cut]);
        }
    }

    #[test]
    fn oneway_request_flag_survives() {
        let mut req = sample_request();
        req.response_expected = false;
        let wire = Message::Request(req.clone()).encode(Endian::Big);
        match Message::decode(&wire).unwrap() {
            Message::Request(r) => assert!(!r.response_expected),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn frame_header_size_matches_spec() {
        let wire = Message::CloseConnection.encode(Endian::Big);
        assert_eq!(wire.len(), HEADER_LEN);
        assert_eq!(&wire[0..4], b"GIOP");
    }
}
