//! Common Data Representation (CDR) marshalling.
//!
//! CDR is CORBA's on-the-wire encoding: primitives are aligned to their
//! natural size and may be little- or big-endian, with the sender's byte
//! order flagged in the GIOP header. This module implements the subset the
//! test application and the MEAD infrastructure exchange: fixed-size
//! integers, booleans, octet sequences and strings.
//!
//! Alignment is computed relative to the start of the encapsulation (the
//! GIOP message body), which is itself 8-byte aligned by the fixed 12-byte
//! header in GIOP 1.0's layout convention.

use core::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// Byte order of a CDR stream, carried in the GIOP header flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Endian {
    /// Big-endian ("network order"); flag bit 0 clear.
    #[default]
    Big,
    /// Little-endian; flag bit 0 set.
    Little,
}

/// Errors raised while decoding a CDR stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdrError {
    /// The stream ended inside a value.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// A string was not NUL-terminated or not valid UTF-8.
    InvalidString,
    /// An enum discriminant had no defined meaning.
    InvalidEnum {
        /// The enum being decoded.
        what: &'static str,
        /// The offending discriminant.
        value: u32,
    },
    /// A declared length exceeds the remaining bytes (corrupt or hostile).
    LengthOverrun {
        /// The declared length.
        declared: u32,
        /// Bytes actually remaining.
        remaining: usize,
    },
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::UnexpectedEof { what } => write!(f, "unexpected end of stream in {what}"),
            CdrError::InvalidString => write!(f, "malformed CDR string"),
            CdrError::InvalidEnum { what, value } => {
                write!(f, "invalid {what} discriminant {value}")
            }
            CdrError::LengthOverrun {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds remaining {remaining} bytes"
                )
            }
        }
    }
}

impl std::error::Error for CdrError {}

/// Converts a buffer length to its `unsigned long` wire representation.
///
/// CDR sequence/string lengths are `u32` on the wire while Rust lengths
/// are `usize`. Every buffer the simulator marshals is orders of
/// magnitude below `u32::MAX`, so the saturation can never change an
/// encoding; it exists so the narrowing is explicit and a silent
/// wrap-around is impossible even on hostile input sizes.
pub fn wire_len(len: usize) -> u32 {
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// A CDR encoder.
///
/// ```
/// use giop::{CdrReader, CdrWriter, Endian};
///
/// let mut w = CdrWriter::new(Endian::Little);
/// w.write_u32(7);
/// w.write_string("tick");
/// let bytes = w.finish();
/// let mut r = CdrReader::new(bytes, Endian::Little);
/// assert_eq!(r.read_u32().unwrap(), 7);
/// assert_eq!(r.read_string().unwrap(), "tick");
/// ```
#[derive(Debug)]
pub struct CdrWriter {
    buf: BytesMut,
    endian: Endian,
}

impl CdrWriter {
    /// Creates an encoder producing `endian`-ordered output.
    pub fn new(endian: Endian) -> Self {
        CdrWriter {
            buf: BytesMut::with_capacity(64),
            endian,
        }
    }

    /// Pads with zero bytes so the next value starts `align`-aligned.
    fn align(&mut self, align: usize) {
        let align = align.max(1);
        let pos = self.buf.len();
        let pad = (align - pos % align) % align;
        for _ in 0..pad {
            self.buf.put_u8(0);
        }
    }

    /// Writes a single octet.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a boolean as one octet (0 or 1).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Writes an unsigned short, 2-aligned.
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        match self.endian {
            Endian::Big => self.buf.put_u16(v),
            Endian::Little => self.buf.put_u16_le(v),
        }
    }

    /// Writes an unsigned long, 4-aligned.
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        match self.endian {
            Endian::Big => self.buf.put_u32(v),
            Endian::Little => self.buf.put_u32_le(v),
        }
    }

    /// Writes a signed long, 4-aligned (two's-complement bit pattern).
    pub fn write_i32(&mut self, v: i32) {
        self.write_u32(u32::from_ne_bytes(v.to_ne_bytes()));
    }

    /// Writes an unsigned long long, 8-aligned.
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        match self.endian {
            Endian::Big => self.buf.put_u64(v),
            Endian::Little => self.buf.put_u64_le(v),
        }
    }

    /// Writes an IEEE double, 8-aligned.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a CDR string: u32 length *including* the terminating NUL,
    /// then the bytes, then NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(wire_len(s.len()).saturating_add(1));
        self.buf.put_slice(s.as_bytes());
        self.buf.put_u8(0);
    }

    /// Writes `sequence<octet>`: u32 length then raw bytes.
    pub fn write_octets(&mut self, bytes: &[u8]) {
        self.write_u32(wire_len(bytes.len()));
        self.buf.put_slice(bytes);
    }

    /// Current encoded length (useful for headers that carry body size).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalises and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A CDR decoder over a byte buffer.
///
/// See [`CdrWriter`] for a round-trip example.
#[derive(Debug)]
pub struct CdrReader {
    buf: Bytes,
    pos: usize,
    endian: Endian,
}

impl CdrReader {
    /// Creates a decoder over `buf` in `endian` order.
    pub fn new(buf: Bytes, endian: Endian) -> Self {
        CdrReader {
            buf,
            pos: 0,
            endian,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn align(&mut self, align: usize) {
        let align = align.max(1);
        let pad = (align - self.pos % align) % align;
        self.pos = self.pos.saturating_add(pad);
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&[u8], CdrError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CdrError::UnexpectedEof { what })?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(CdrError::UnexpectedEof { what })?;
        self.pos = end;
        Ok(s)
    }

    /// Reads one octet.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        let s = self.take(1, "octet")?;
        Ok(s.first().copied().unwrap_or(0))
    }

    /// Reads a boolean octet.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        Ok(self.read_u8()? != 0)
    }

    /// Reads an unsigned short (2-aligned).
    pub fn read_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2);
        let endian = self.endian;
        let s = self.take(2, "ushort")?;
        let raw: [u8; 2] = s.try_into().unwrap_or([0; 2]);
        Ok(match endian {
            Endian::Big => u16::from_be_bytes(raw),
            Endian::Little => u16::from_le_bytes(raw),
        })
    }

    /// Reads an unsigned long (4-aligned).
    pub fn read_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4);
        let endian = self.endian;
        let s = self.take(4, "ulong")?;
        let raw: [u8; 4] = s.try_into().unwrap_or([0; 4]);
        Ok(match endian {
            Endian::Big => u32::from_be_bytes(raw),
            Endian::Little => u32::from_le_bytes(raw),
        })
    }

    /// Reads a signed long (4-aligned, two's-complement bit pattern).
    pub fn read_i32(&mut self) -> Result<i32, CdrError> {
        Ok(i32::from_ne_bytes(self.read_u32()?.to_ne_bytes()))
    }

    /// Reads an unsigned long long (8-aligned).
    pub fn read_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8);
        let endian = self.endian;
        let s = self.take(8, "ulonglong")?;
        let raw: [u8; 8] = s.try_into().unwrap_or([0; 8]);
        Ok(match endian {
            Endian::Big => u64::from_be_bytes(raw),
            Endian::Little => u64::from_le_bytes(raw),
        })
    }

    /// Reads an IEEE double (8-aligned).
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a CDR string.
    ///
    /// # Errors
    ///
    /// [`CdrError::InvalidString`] if the terminator is missing or the bytes
    /// are not UTF-8; [`CdrError::LengthOverrun`] on a hostile length.
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        let len = self.read_u32()?;
        if len == 0 {
            return Err(CdrError::InvalidString);
        }
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverrun {
                declared: len,
                remaining: self.remaining(),
            });
        }
        let raw = self.take(len as usize, "string")?;
        let Some((nul, body)) = raw.split_last() else {
            return Err(CdrError::InvalidString);
        };
        if *nul != 0 {
            return Err(CdrError::InvalidString);
        }
        String::from_utf8(body.to_vec()).map_err(|_| CdrError::InvalidString)
    }

    /// Reads `sequence<octet>`.
    pub fn read_octets(&mut self) -> Result<Vec<u8>, CdrError> {
        let len = self.read_u32()?;
        if len as usize > self.remaining() {
            return Err(CdrError::LengthOverrun {
                declared: len,
                remaining: self.remaining(),
            });
        }
        Ok(self.take(len as usize, "octet sequence")?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(endian: Endian) {
        let mut w = CdrWriter::new(endian);
        w.write_u8(0xAB);
        w.write_bool(true);
        w.write_u16(0x1234);
        w.write_u32(0xDEADBEEF);
        w.write_u64(0x0102030405060708);
        w.write_f64(3.5);
        w.write_string("hello");
        w.write_octets(&[9, 8, 7]);
        let b = w.finish();
        let mut r = CdrReader::new(b, endian);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_u16().unwrap(), 0x1234);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0102030405060708);
        assert_eq!(r.read_f64().unwrap(), 3.5);
        assert_eq!(r.read_string().unwrap(), "hello");
        assert_eq!(r.read_octets().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_big_endian() {
        roundtrip(Endian::Big);
    }

    #[test]
    fn roundtrip_little_endian() {
        roundtrip(Endian::Little);
    }

    #[test]
    fn alignment_is_padded() {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u8(1); // pos 1
        w.write_u32(2); // pads to 4
        assert_eq!(w.len(), 8);
        let b = w.finish();
        assert_eq!(&b[1..4], &[0, 0, 0]);
    }

    #[test]
    fn u64_aligns_to_eight() {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u8(1);
        w.write_u64(2);
        assert_eq!(w.len(), 16);
    }

    #[test]
    fn eof_is_detected() {
        let mut r = CdrReader::new(Bytes::from_static(&[1, 2]), Endian::Big);
        assert!(matches!(
            r.read_u32(),
            Err(CdrError::UnexpectedEof { what: "ulong" })
        ));
    }

    #[test]
    fn hostile_string_length_is_rejected() {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u32(1_000_000); // declared length
        let b = w.finish();
        let mut r = CdrReader::new(b, Endian::Big);
        assert!(matches!(
            r.read_string(),
            Err(CdrError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn string_missing_nul_is_rejected() {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u32(3);
        w.write_u8(b'a');
        w.write_u8(b'b');
        w.write_u8(b'c'); // should be NUL
        let mut r = CdrReader::new(w.finish(), Endian::Big);
        assert_eq!(r.read_string(), Err(CdrError::InvalidString));
    }

    #[test]
    fn big_endian_wire_layout() {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u32(0x01020304);
        assert_eq!(&w.finish()[..], &[1, 2, 3, 4]);
        let mut w = CdrWriter::new(Endian::Little);
        w.write_u32(0x01020304);
        assert_eq!(&w.finish()[..], &[4, 3, 2, 1]);
    }

    #[test]
    fn empty_octets_roundtrip() {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_octets(&[]);
        let mut r = CdrReader::new(w.finish(), Endian::Big);
        assert_eq!(r.read_octets().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn error_display() {
        let e = CdrError::InvalidEnum {
            what: "ReplyStatus",
            value: 9,
        };
        assert_eq!(e.to_string(), "invalid ReplyStatus discriminant 9");
    }
}
