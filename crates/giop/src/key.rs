//! Persistent object keys.
//!
//! The paper's schemes all assume CORBA *persistent* object-key policies:
//! the key that names an object survives server restarts and is identical
//! across all replicas, which is what makes request forwarding between
//! replicas possible at all (section 4). Keys in the paper's test
//! application were "typically 52 bytes"; ours reproduce that shape:
//! `POA:<poa-name>/OID:<object-name>` padded to [`ObjectKey::CANONICAL_LEN`].
//!
//! Section 4.1 describes an optimisation: a **16-bit hash** of the key used
//! for IOR-table lookups in the `LOCATION_FORWARD` scheme instead of a
//! byte-by-byte comparison. [`ObjectKey::hash16`] implements it.

use core::fmt;

/// A persistent CORBA object key.
///
/// ```
/// use giop::ObjectKey;
///
/// let k = ObjectKey::persistent("TimePOA", "TimeOfDay");
/// assert_eq!(k.as_bytes().len(), ObjectKey::CANONICAL_LEN);
/// assert_eq!(k, ObjectKey::persistent("TimePOA", "TimeOfDay"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey(Vec<u8>);

impl ObjectKey {
    /// The canonical padded key length, matching the ~52-byte keys of the
    /// paper's test application.
    pub const CANONICAL_LEN: usize = 52;

    /// Builds the persistent key for `object` under POA `poa`.
    ///
    /// The key is deterministic — identical across replicas and across
    /// restarts — and padded with NULs to [`Self::CANONICAL_LEN`] (longer
    /// names simply extend past it).
    pub fn persistent(poa: &str, object: &str) -> Self {
        let mut v = format!("POA:{poa}/OID:{object}").into_bytes();
        if v.len() < Self::CANONICAL_LEN {
            v.resize(Self::CANONICAL_LEN, 0);
        }
        ObjectKey(v)
    }

    /// Wraps raw key bytes received off the wire.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        ObjectKey(bytes)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// The 16-bit lookup hash of section 4.1 (Fletcher-16 over the key
    /// bytes): cheap to compute, cheap to compare, and with 3 replicas and
    /// a handful of objects collisions are practically absent — but lookups
    /// must still verify the full key on hash match, as ours do.
    pub fn hash16(&self) -> u16 {
        let mut a: u16 = 0;
        let mut b: u16 = 0;
        for &byte in &self.0 {
            a = (a + u16::from(byte)) % 255;
            b = (b + a) % 255;
        }
        (b << 8) | a
    }
}

impl fmt::Debug for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let printable: String = self
            .0
            .iter()
            .take_while(|&&b| b != 0)
            .map(|&b| if b.is_ascii_graphic() { b as char } else { '.' })
            .collect();
        write!(f, "ObjectKey({printable})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistent_keys_are_deterministic() {
        let a = ObjectKey::persistent("RootPOA", "NameService");
        let b = ObjectKey::persistent("RootPOA", "NameService");
        assert_eq!(a, b);
        assert_eq!(a.hash16(), b.hash16());
    }

    #[test]
    fn distinct_objects_get_distinct_keys_and_hashes() {
        let a = ObjectKey::persistent("TimePOA", "TimeOfDay");
        let b = ObjectKey::persistent("TimePOA", "Clock");
        assert_ne!(a, b);
        assert_ne!(a.hash16(), b.hash16());
    }

    #[test]
    fn short_keys_are_padded_long_keys_are_not_truncated() {
        let short = ObjectKey::persistent("P", "O");
        assert_eq!(short.as_bytes().len(), ObjectKey::CANONICAL_LEN);
        let long_name = "x".repeat(80);
        let long = ObjectKey::persistent("P", &long_name);
        assert!(long.as_bytes().len() > ObjectKey::CANONICAL_LEN);
        assert!(long.as_bytes().len() >= 80);
    }

    #[test]
    fn raw_roundtrip() {
        let k = ObjectKey::persistent("A", "B");
        let k2 = ObjectKey::from_bytes(k.as_bytes().to_vec());
        assert_eq!(k, k2);
    }

    #[test]
    fn debug_strips_padding() {
        let k = ObjectKey::persistent("P", "O");
        assert_eq!(format!("{k:?}"), "ObjectKey(POA:P/OID:O)");
    }

    #[test]
    fn hash16_is_fletcher() {
        // Independent Fletcher-16 computation for a known input.
        let k = ObjectKey::from_bytes(vec![1, 2]);
        // a: 1 then 3; b: 1 then 4 -> 0x0403
        assert_eq!(k.hash16(), 0x0403);
    }
}
