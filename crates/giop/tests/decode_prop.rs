//! Panic-freedom fuzzing for the GIOP decode paths (detlint R3's dynamic
//! counterpart): every decoder entry point must return a typed error —
//! never panic — on truncated, bit-flipped, or outright arbitrary input.

use bytes::Bytes;
use proptest::prelude::*;

use giop::*;

fn arb_endian() -> impl Strategy<Value = Endian> {
    prop_oneof![Just(Endian::Big), Just(Endian::Little)]
}

/// A representative well-formed message of every shape the simulator
/// sends, to serve as the mutation baseline.
fn arb_valid_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u32>(),
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 1..40),
            "[a-z_][a-z0-9_]{0,20}",
            prop::collection::vec(any::<u8>(), 0..40),
        )
            .prop_map(|(request_id, response_expected, key, operation, body)| {
                Message::Request(RequestMessage {
                    request_id,
                    response_expected,
                    object_key: ObjectKey::from_bytes(key),
                    operation,
                    body,
                })
            }),
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..40)).prop_map(|(request_id, body)| {
            Message::Reply(ReplyMessage {
                request_id,
                body: ReplyBody::NoException(body),
            })
        }),
        (
            any::<u32>(),
            "[A-Za-z0-9:/._-]{1,30}",
            any::<u32>(),
            0u32..3
        )
            .prop_map(|(request_id, repo_id, minor, completed)| Message::Reply(
                ReplyMessage {
                    request_id,
                    body: ReplyBody::SystemException {
                        repo_id,
                        minor,
                        completed,
                    },
                }
            )),
        Just(Message::CloseConnection),
        Just(Message::MessageError),
    ]
}

proptest! {
    /// Every prefix of a valid frame decodes to a typed error (or, for the
    /// full frame, the original message) without panicking.
    #[test]
    fn truncation_at_every_length_is_a_typed_error(
        msg in arb_valid_message(),
        endian in arb_endian(),
    ) {
        let wire = msg.encode(endian);
        for cut in 0..wire.len() {
            prop_assert!(
                Message::decode(&wire[..cut]).is_err(),
                "truncated frame ({cut}/{} bytes) decoded successfully",
                wire.len()
            );
        }
        prop_assert!(Message::decode(&wire).is_ok());
    }

    /// Flipping any single byte of a valid frame never panics the decoder.
    /// (It may still decode: most body bytes are opaque payload.)
    #[test]
    fn single_byte_mutation_never_panics(
        msg in arb_valid_message(),
        endian in arb_endian(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let wire = msg.encode(endian).to_vec();
        let pos = pos_seed % wire.len();
        let mut mutated = wire;
        mutated[pos] ^= xor;
        let _ = Message::decode(&mutated);
    }

    /// The frame splitter survives arbitrary garbage pushed in arbitrary
    /// chunks: it either yields frames or a typed error, and any yielded
    /// frame feeds into `Message::decode` without panicking.
    #[test]
    fn splitter_never_panics_on_garbage(
        stream in prop::collection::vec(any::<u8>(), 0..512),
        chunk_sizes in prop::collection::vec(1usize..48, 1..32),
    ) {
        let mut splitter = FrameSplitter::new();
        let mut offset = 0;
        let mut chunks = chunk_sizes.iter().cycle();
        'outer: while offset < stream.len() {
            let n = (*chunks.next().unwrap()).min(stream.len() - offset);
            splitter.push(&stream[offset..offset + n]);
            offset += n;
            loop {
                match splitter.next_frame() {
                    Ok(Some(frame)) => {
                        let _ = frame.msg_type();
                        let _ = frame.body();
                        let _ = Message::decode(&frame.bytes);
                    }
                    Ok(None) => break,
                    // A corrupt stream is fatal for the connection; the
                    // splitter must not be pumped further.
                    Err(_) => break 'outer,
                }
            }
        }
    }

    /// The CDR reader never panics under an arbitrary sequence of read
    /// operations over arbitrary bytes.
    #[test]
    fn cdr_reader_never_panics(
        buf in prop::collection::vec(any::<u8>(), 0..128),
        ops in prop::collection::vec(0u8..8, 1..24),
        endian in arb_endian(),
    ) {
        let mut r = CdrReader::new(Bytes::from(buf), endian);
        for op in ops {
            match op {
                0 => { let _ = r.read_u8(); }
                1 => { let _ = r.read_bool(); }
                2 => { let _ = r.read_u16(); }
                3 => { let _ = r.read_u32(); }
                4 => { let _ = r.read_u64(); }
                5 => { let _ = r.read_f64(); }
                6 => { let _ = r.read_string(); }
                _ => { let _ = r.read_octets(); }
            }
            let _ = r.remaining();
        }
    }

    /// IOR decoding never panics on arbitrary bytes, and always errors on
    /// strict prefixes of a valid encoding.
    #[test]
    fn ior_decode_never_panics(
        type_id in "[A-Za-z0-9:/._-]{1,30}",
        host in "[a-z0-9.-]{1,20}",
        port in any::<u16>(),
        key in prop::collection::vec(any::<u8>(), 1..40),
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let ior = Ior {
            type_id,
            profiles: vec![IiopProfile {
                version_major: 1,
                version_minor: 0,
                host,
                port,
                object_key: ObjectKey::from_bytes(key),
            }],
        };
        let wire = ior.encode();
        for cut in 0..wire.len() {
            prop_assert!(Ior::decode(&wire[..cut]).is_err());
        }
        prop_assert!(Ior::decode(&wire).is_ok());
        let _ = Ior::decode(&garbage);
    }
}
