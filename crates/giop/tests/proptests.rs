//! Property-based tests for the GIOP wire protocol: round-trips hold for
//! arbitrary well-formed messages, and the decoder never panics on
//! arbitrary bytes.

use proptest::prelude::*;

use giop::*;

fn arb_object_key() -> impl Strategy<Value = ObjectKey> {
    prop::collection::vec(any::<u8>(), 1..80).prop_map(ObjectKey::from_bytes)
}

fn arb_ior() -> impl Strategy<Value = Ior> {
    (
        "[A-Za-z0-9:/._-]{1,40}",
        prop::collection::vec(("[a-z0-9.-]{1,20}", any::<u16>(), arb_object_key()), 1..4),
    )
        .prop_map(|(type_id, profiles)| Ior {
            type_id,
            profiles: profiles
                .into_iter()
                .map(|(host, port, object_key)| IiopProfile {
                    version_major: 1,
                    version_minor: 0,
                    host,
                    port,
                    object_key,
                })
                .collect(),
        })
}

fn arb_reply_body() -> impl Strategy<Value = ReplyBody> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(ReplyBody::NoException),
        "[A-Za-z0-9:/._-]{1,40}".prop_map(ReplyBody::UserException),
        ("[A-Za-z0-9:/._-]{1,40}", any::<u32>(), 0u32..3).prop_map(
            |(repo_id, minor, completed)| {
                ReplyBody::SystemException {
                    repo_id,
                    minor,
                    completed,
                }
            }
        ),
        arb_ior().prop_map(ReplyBody::LocationForward),
        any::<u16>().prop_map(ReplyBody::NeedsAddressingMode),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u32>(),
            any::<bool>(),
            arb_object_key(),
            "[a-z_][a-z0-9_]{0,30}",
            prop::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(
                |(request_id, response_expected, object_key, operation, body)| {
                    Message::Request(RequestMessage {
                        request_id,
                        response_expected,
                        object_key,
                        operation,
                        body,
                    })
                }
            ),
        (any::<u32>(), arb_reply_body())
            .prop_map(|(request_id, body)| { Message::Reply(ReplyMessage { request_id, body }) }),
        Just(Message::CloseConnection),
        Just(Message::MessageError),
    ]
}

fn arb_endian() -> impl Strategy<Value = Endian> {
    prop_oneof![Just(Endian::Big), Just(Endian::Little)]
}

proptest! {
    #[test]
    fn message_roundtrip(msg in arb_message(), endian in arb_endian()) {
        let wire = msg.encode(endian);
        let back = Message::decode(&wire).expect("well-formed message decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn ior_roundtrip(ior in arb_ior()) {
        let b = ior.encode();
        prop_assert_eq!(Ior::decode(&b).expect("well-formed IOR decodes"), ior);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
        let _ = Ior::decode(&bytes);
    }

    #[test]
    fn splitter_reassembles_message_sequence_under_arbitrary_chunking(
        msgs in prop::collection::vec(arb_message(), 1..6),
        endian in arb_endian(),
        chunk_sizes in prop::collection::vec(1usize..40, 1..64),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode(endian));
        }
        let mut splitter = FrameSplitter::new();
        let mut frames = Vec::new();
        let mut offset = 0;
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while offset < stream.len() {
            let n = (*chunk_iter.next().expect("cycle")).min(stream.len() - offset);
            splitter.push(&stream[offset..offset + n]);
            offset += n;
            while let Some(f) = splitter.next_frame().expect("valid stream") {
                frames.push(f);
            }
        }
        prop_assert_eq!(frames.len(), msgs.len());
        for (frame, msg) in frames.iter().zip(&msgs) {
            prop_assert_eq!(&Message::decode(&frame.bytes).expect("frame decodes"), msg);
        }
        prop_assert_eq!(splitter.buffered(), 0);
    }

    #[test]
    fn cdr_primitives_roundtrip(
        a in any::<u8>(), b in any::<bool>(), c in any::<u16>(),
        d in any::<u32>(), e in any::<u64>(), f in any::<f64>(),
        s in "[ -~]{0,40}", o in prop::collection::vec(any::<u8>(), 0..40),
        endian in arb_endian(),
    ) {
        let mut w = CdrWriter::new(endian);
        w.write_u8(a); w.write_bool(b); w.write_u16(c); w.write_u32(d);
        w.write_u64(e); w.write_f64(f); w.write_string(&s); w.write_octets(&o);
        let buf = w.finish();
        let mut r = CdrReader::new(buf, endian);
        prop_assert_eq!(r.read_u8().unwrap(), a);
        prop_assert_eq!(r.read_bool().unwrap(), b);
        prop_assert_eq!(r.read_u16().unwrap(), c);
        prop_assert_eq!(r.read_u32().unwrap(), d);
        prop_assert_eq!(r.read_u64().unwrap(), e);
        let f_back = r.read_f64().unwrap();
        prop_assert!(f_back == f || (f.is_nan() && f_back.is_nan()));
        prop_assert_eq!(r.read_string().unwrap(), s);
        prop_assert_eq!(r.read_octets().unwrap(), o);
    }

    #[test]
    fn hash16_is_stable_and_key_dependent(bytes in prop::collection::vec(any::<u8>(), 1..64)) {
        let k1 = ObjectKey::from_bytes(bytes.clone());
        let k2 = ObjectKey::from_bytes(bytes);
        prop_assert_eq!(k1.hash16(), k2.hash16());
    }
}
