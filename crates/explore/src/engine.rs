//! Bounded schedule-space search: novel-prefix frontier BFS over the
//! choice tree a chaos scenario exposes.
//!
//! Every node of the tree is a *choice prefix* — the vector of picks for
//! the first `k` gated decisions; the run continues with the kernel
//! default (candidate 0) past the prefix. One run of the simulation
//! evaluates one prefix completely: it yields the outcome (invariant
//! violations included), the full [`DecisionTrace`], and the DPOR-lite
//! branch set at every decision at or past the prefix — each branch
//! becomes a child prefix. Children extend their parent strictly at new
//! ordinals with non-default picks, so no prefix is ever enqueued twice
//! and the walk needs no visited set.
//!
//! The search is deterministic for a fixed configuration: waves are
//! executed with [`run_batch_with`], which returns results in input
//! order regardless of worker-thread count, and children are expanded in
//! result order.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

use experiments::{run_batch_with, run_chaos_plan_with, ChaosConfig};
use faults::FaultPlan;
use simnet::{DecisionTrace, GateCfg};

use crate::relation::ConflictRelation;
use crate::sched::{ExploreScheduler, RunRecord};

/// Search budgets and gating for one exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Gating shared by every run: decision window, per-run decision
    /// budget, and the reorder slack.
    pub gate: GateCfg,
    /// Total simulation runs the search may spend.
    pub max_runs: usize,
    /// Longest choice prefix the search may extend (tree depth cap).
    pub max_depth: usize,
    /// Worker threads for each BFS wave.
    pub threads: usize,
    /// A loaded `conflict-relation/1` artifact refining the syntactic
    /// conflict test (see [`crate::sched::conflicts_under`]); `None`
    /// reproduces the pure DPOR-lite tree.
    pub relation: Option<Arc<ConflictRelation>>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            gate: GateCfg::default(),
            max_runs: 256,
            max_depth: 32,
            threads: 1,
            relation: None,
        }
    }
}

/// One evaluated prefix: the complete run it induced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The prefix this run evaluated.
    pub prefix: Vec<u64>,
    /// Every gated decision the run made (prefix picks, then defaults).
    pub trace: DecisionTrace,
    /// Per-decision DPOR-lite branch sets (see [`RunRecord`]).
    pub branches: Vec<Vec<u64>>,
    /// Per-decision alternatives the conflict relation pruned (empty
    /// without a loaded relation; see [`RunRecord::pruned`]).
    pub pruned: Vec<Vec<u64>>,
    /// Invariant violations the chaos executor reported, if any.
    pub violations: Vec<String>,
    /// The chaos outcome digest — two runs with this digest equal are
    /// behaviourally identical.
    pub outcome_digest: u64,
}

/// Evaluates one choice prefix: runs the scenario under an
/// [`ExploreScheduler`] and packages the recorded schedule.
pub fn run_prefix(
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    gate: GateCfg,
    prefix: &[u64],
) -> RunResult {
    run_prefix_with(plan, chaos, gate, None, prefix)
}

/// [`run_prefix`] under a conflict-relation artifact: branch sets are
/// refined by `relation`, and alternatives it proves independent are
/// reported in [`RunResult::pruned`].
pub fn run_prefix_with(
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    gate: GateCfg,
    relation: Option<Arc<ConflictRelation>>,
    prefix: &[u64],
) -> RunResult {
    let record = Rc::new(RefCell::new(RunRecord::default()));
    let scheduler =
        ExploreScheduler::with_relation(gate, prefix.to_vec(), relation, Rc::clone(&record));
    let outcome = run_chaos_plan_with(plan, chaos, Box::new(scheduler));
    let record = record.borrow();
    RunResult {
        prefix: prefix.to_vec(),
        trace: DecisionTrace {
            gate,
            decisions: record.decisions.clone(),
        },
        branches: record.branches.clone(),
        pruned: record.pruned.clone(),
        violations: outcome.violations.clone(),
        outcome_digest: outcome.digest(),
    }
}

/// What a bounded exploration found.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Prefixes evaluated (simulation runs spent).
    pub executed: usize,
    /// `true` when the frontier drained with no budget cap hit: every
    /// schedule reachable under the gate (up to DPOR-lite equivalence)
    /// was enumerated.
    pub exhausted: bool,
    /// Distinct chaos-outcome digests observed across all runs.
    pub outcome_digests: BTreeSet<u64>,
    /// Runs whose outcome violated at least one invariant, in discovery
    /// order.
    pub failures: Vec<RunResult>,
    /// FNV-1a fold of every run's schedule and outcome digest, in
    /// execution order — thread-count independent.
    pub digest: u64,
}

/// Explores the schedule space of `(plan, chaos)` under the budgets in
/// `cfg`. See the module docs for the search structure.
pub fn explore(plan: &FaultPlan, chaos: &ChaosConfig, cfg: &ExploreConfig) -> ExploreOutcome {
    let mut frontier: Vec<Vec<u64>> = vec![Vec::new()];
    let mut executed = 0usize;
    let mut truncated = false;
    let mut outcome_digests = BTreeSet::new();
    let mut failures = Vec::new();
    let mut digest = Fnv::new();

    while !frontier.is_empty() && executed < cfg.max_runs {
        let take = frontier.len().min(cfg.max_runs - executed);
        if take < frontier.len() {
            truncated = true;
        }
        let wave: Vec<Vec<u64>> = frontier.drain(..take).collect();
        let results = run_batch_with(&wave, cfg.threads, |prefix| {
            run_prefix_with(plan, chaos, cfg.gate, cfg.relation.clone(), prefix)
        });
        executed += results.len();
        for run in results {
            digest.u64(run.trace.digest());
            digest.u64(run.outcome_digest);
            outcome_digests.insert(run.outcome_digest);
            for (d, alternatives) in run.branches.iter().enumerate().skip(run.prefix.len()) {
                if d >= cfg.max_depth {
                    if !alternatives.is_empty() {
                        truncated = true;
                    }
                    continue;
                }
                for &branch in alternatives {
                    let mut child: Vec<u64> = run
                        .trace
                        .decisions
                        .iter()
                        .take(d)
                        .map(|dec| dec.chosen)
                        .collect();
                    child.push(branch);
                    frontier.push(child);
                }
            }
            if !run.violations.is_empty() {
                failures.push(run);
            }
        }
    }
    if !frontier.is_empty() {
        truncated = true;
    }
    ExploreOutcome {
        executed,
        exhausted: !truncated,
        outcome_digests,
        failures,
        digest: digest.finish(),
    }
}

/// FNV-1a folder (the same parameters every digest in this codebase
/// uses).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}
