//! # explore — schedule-space exploration for the chaos scenarios
//!
//! The simulation kernel dispatches events in one deterministic total
//! order; `simnet::sched` exposes the near-ties in that order as choice
//! points. This crate searches the space of alternative resolutions:
//!
//! * [`ExploreScheduler`] follows a choice *prefix*, records every gated
//!   decision, and collects the DPOR-lite branch set — the eligible
//!   candidates that **conflict** with the pick (same target process or
//!   same connection; commuting pairs are never branched on).
//! * [`explore`] runs a bounded novel-prefix frontier BFS over the
//!   resulting tree, checking the chaos executor's full invariant set on
//!   every interleaving and folding a thread-count-independent digest.
//! * [`minimize`] shrinks a violating choice vector to a minimal
//!   verified reproducer: trace-prefix bisection, then greedy deviation
//!   deletion.
//! * [`fixtures`] are the canned small configurations (2–3 replicas,
//!   1–2 clients) the `explore` binary and CI enumerate, including the
//!   seeded-bug fixture ([`fixtures::seeded_bug`]) that the search must
//!   catch and minimize.
//!
//! Every discovered schedule is a replayable
//! [`DecisionTrace`](simnet::DecisionTrace): feeding it to a
//! [`ReplayScheduler`](simnet::ReplayScheduler) reproduces the run bit
//! for bit, digests included.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fixtures;
mod minimize;
pub mod relation;
mod sched;

pub use engine::{explore, run_prefix, run_prefix_with, ExploreConfig, ExploreOutcome, RunResult};
pub use minimize::{minimize, Minimized};
pub use relation::{ConflictRelation, IndependentPair, RelationError, When, RELATION_SCHEMA};
pub use sched::{conflicts, conflicts_under, ExploreScheduler, RunRecord};
