//! Schedule-space exploration driver (DESIGN §13).
//!
//! Enumerates alternative event interleavings of small chaos scenarios
//! under a pluggable kernel scheduler, checks every invariant on every
//! interleaving, and — given `--seeded-bug` — proves the pipeline
//! end-to-end: a seeded protocol mutation invisible to the FIFO schedule
//! is caught, minimized to a short failing schedule, and replayed by
//! digest.
//!
//! Usage: `explore [--threads N] [--runs N] [--depth N] [--smoke]
//! [--seeded-bug] [--conflict-relation FILE] [--violations out.json]
//! [--trace out.jsonl]`.
//! `--smoke` shrinks the per-fixture run budget for CI; `--trace` writes
//! the minimized failing schedule (requires `--seeded-bug`);
//! `--conflict-relation` loads a `conflict-relation/1` artifact (from
//! `detlint --conflict-report`) that prunes statically proven
//! independent branches from the search. Exits non-zero when any
//! fixture's exploration misbehaves or the seeded bug is not caught,
//! minimized and replayed.

use std::sync::Arc;

use experiments::{
    cli_from_args, run_chaos_plan_with, take_flag, ViolationRecord, ViolationReport,
};
use explore::{explore, fixtures, minimize, ConflictRelation, ExploreConfig};
use simnet::ReplayScheduler;

/// Decisions the minimized seeded-bug schedule may keep (the acceptance
/// bound: the reproducer must be human-readable).
const MAX_MINIMIZED_DECISIONS: usize = 10;

fn main() {
    let cli = cli_from_args();
    let threads = cli.threads;
    let smoke = cli.args.iter().any(|a| a == "--smoke");
    let seeded = cli.args.iter().any(|a| a == "--seeded-bug");
    let mut positional: Vec<String> = cli
        .args
        .iter()
        .filter(|a| *a != "--smoke" && *a != "--seeded-bug")
        .cloned()
        .collect();
    let violations_path = take_flag(&mut positional, "--violations");
    let runs_flag = take_flag(&mut positional, "--runs");
    let depth_flag = take_flag(&mut positional, "--depth");
    let relation_path = take_flag(&mut positional, "--conflict-relation");
    let relation: Option<Arc<ConflictRelation>> = relation_path.as_deref().map(|path| {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read conflict relation {path}: {e}");
            std::process::exit(1);
        });
        let rel = ConflictRelation::parse(&src).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "conflict relation loaded from {path}: {} independent pair(s)",
            rel.independent.len()
        );
        Arc::new(rel)
    });
    let default_runs = if smoke { 384 } else { 1024 };
    let max_runs: usize = runs_flag
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_runs);
    let max_depth: usize = depth_flag.and_then(|s| s.parse().ok()).unwrap_or(12);

    let mut failed = false;
    let mut records: Vec<ViolationRecord> = Vec::new();

    // Fault-free-protocol fixtures: enumerate interleavings and demand
    // zero invariant violations on every one (the protocol must tolerate
    // any physically plausible delivery order).
    for fixture in [fixtures::pair(), fixtures::trio()] {
        let cfg = ExploreConfig {
            gate: fixture.gate,
            max_runs,
            max_depth,
            threads,
            relation: relation.clone(),
        };
        let outcome = explore(&fixture.plan, &fixture.chaos, &cfg);
        println!(
            "explore {}: {} runs, {} distinct outcomes, {} violating, exhausted={}, digest {:016x}",
            fixture.name,
            outcome.executed,
            outcome.outcome_digests.len(),
            outcome.failures.len(),
            outcome.exhausted,
            outcome.digest,
        );
        for failure in &outcome.failures {
            records.push(ViolationRecord {
                cell: format!("{}/schedule-{:016x}", fixture.name, failure.trace.digest()),
                seed: fixture.plan.seed(),
                violations: failure.violations.clone(),
            });
        }
        if !outcome.failures.is_empty() {
            println!(
                "  FAIL: {} interleaving(s) violated invariants",
                outcome.failures.len()
            );
            failed = true;
        } else {
            println!("  PASS: all enumerated interleavings hold every invariant");
        }
    }

    // Seeded-bug pipeline: the mutation must be invisible to FIFO,
    // caught by the search, minimized small, and replayable by digest.
    if seeded {
        failed |= !run_seeded_bug(
            threads,
            max_runs,
            max_depth,
            relation.clone(),
            cli.trace.as_ref(),
        );
    }

    if let Some(path) = &violations_path {
        let body = ViolationReport::new("explore", records).to_json();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write violations to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("violations written to {path}");
    }

    if failed {
        std::process::exit(1);
    }
}

/// Runs the seeded-bug fixture end to end; returns `true` on success.
fn run_seeded_bug(
    threads: usize,
    max_runs: usize,
    max_depth: usize,
    relation: Option<Arc<ConflictRelation>>,
    trace_path: Option<&std::path::PathBuf>,
) -> bool {
    let fixture = fixtures::seeded_bug();
    let cfg = ExploreConfig {
        gate: fixture.gate,
        max_runs,
        max_depth,
        threads,
        relation,
    };

    // Under the default schedule the mutation stays dormant.
    let fifo = explore::run_prefix(&fixture.plan, &fixture.chaos, fixture.gate, &[]);
    if !fifo.violations.is_empty() {
        println!(
            "seeded-bug: FAIL — FIFO schedule already violates: {:?}",
            fifo.violations
        );
        return false;
    }
    println!("seeded-bug: FIFO schedule passes (mutation dormant)");

    let outcome = explore(&fixture.plan, &fixture.chaos, &cfg);
    println!(
        "seeded-bug: {} runs explored, {} violating interleaving(s)",
        outcome.executed,
        outcome.failures.len()
    );
    let Some(first) = outcome.failures.first() else {
        println!("seeded-bug: FAIL — search did not expose the seeded mutation");
        return false;
    };
    let witness: Vec<u64> = first.trace.decisions.iter().map(|d| d.chosen).collect();
    println!(
        "seeded-bug: caught: {}",
        first.violations.first().map(String::as_str).unwrap_or("?")
    );

    let Some(minimal) = minimize(&fixture.plan, &fixture.chaos, fixture.gate, &witness, 200) else {
        println!("seeded-bug: FAIL — minimizer could not reproduce the failure");
        return false;
    };
    println!(
        "seeded-bug: minimized to {} decision(s) ({} deviation(s)) in {} runs, trace digest {:016x}",
        minimal.choices.len(),
        minimal.trace.deviations(),
        minimal.runs_used,
        minimal.trace.digest(),
    );
    if minimal.choices.len() > MAX_MINIMIZED_DECISIONS {
        println!(
            "seeded-bug: FAIL — minimal schedule keeps {} decisions (bound {})",
            minimal.choices.len(),
            MAX_MINIMIZED_DECISIONS
        );
        return false;
    }

    // Replay the minimized trace through the independent ReplayScheduler
    // and demand bit-identical behaviour.
    let replayed = run_chaos_plan_with(
        &fixture.plan,
        &fixture.chaos,
        Box::new(ReplayScheduler::from_trace(&minimal.trace)),
    );
    if replayed.digest() != minimal.outcome_digest || replayed.violations.is_empty() {
        println!(
            "seeded-bug: FAIL — replay digest {:016x} != minimized run digest {:016x}",
            replayed.digest(),
            minimal.outcome_digest
        );
        return false;
    }
    println!(
        "seeded-bug: replay digest {:016x} matches — PASS",
        replayed.digest()
    );

    if let Some(path) = trace_path {
        if let Err(e) = std::fs::write(path, minimal.trace.to_jsonl()) {
            eprintln!("error: cannot write trace to {}: {e}", path.display());
            return false;
        }
        eprintln!("minimized decision trace written to {}", path.display());
    }
    true
}
