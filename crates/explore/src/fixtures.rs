//! Canned exploration scenarios: the small configurations the `explore`
//! binary (and CI's `explore-smoke`) enumerate, plus the seeded-bug
//! fixture that proves the search catches and minimizes a real ordering
//! bug.
//!
//! All fixtures gate decisions to a window opening at the client's start
//! (the chaos executor boots the infrastructure for 650 ms first), so
//! the search spends its budget on the request/reply/fault phase instead
//! of the deterministic boot.

use experiments::{chaos_plan_space_for, ChaosConfig, ServantMutation};
use faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanBuilder};
use simnet::{GateCfg, SimDuration, SimTime};

/// One ready-to-explore scenario.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Short label used in reports and CI output.
    pub name: &'static str,
    /// The fault schedule (validated at construction).
    pub plan: FaultPlan,
    /// The chaos scenario configuration.
    pub chaos: ChaosConfig,
    /// Decision gating for every run of this fixture.
    pub gate: GateCfg,
}

/// The decision window every fixture uses: from the client's start to
/// past the last fault, bounded per run.
fn gate(max_steps: u64, slack_us: u64) -> GateCfg {
    GateCfg {
        window_start: SimTime::from_millis(650),
        window_end: SimTime::from_millis(2_500),
        max_steps,
        slack: SimDuration::from_micros(slack_us),
    }
}

/// Two replica slots, one client, a single mid-run loss burst: the
/// smallest interesting schedule space, sized for exhaustive
/// enumeration.
pub fn pair() -> Fixture {
    let plan = FaultPlanBuilder::new(11)
        .event(FaultEvent {
            at: SimTime::from_millis(800),
            kind: FaultKind::LossBurst {
                probability: 0.3,
                duration: SimDuration::from_millis(120),
            },
        })
        .build(&chaos_plan_space_for(2, 0))
        .expect("pair fixture plan fits its space");
    Fixture {
        name: "pair",
        plan,
        chaos: ChaosConfig {
            increments: 6,
            slots: 2,
            ..ChaosConfig::default()
        },
        gate: gate(10, 400),
    }
}

/// Three replica slots and a second (flash-crowd) client overlapping a
/// replica crash: wider interference surface, still small enough to
/// sweep within a smoke budget.
pub fn trio() -> Fixture {
    let plan = FaultPlanBuilder::new(23)
        .event(FaultEvent {
            at: SimTime::from_millis(750),
            kind: FaultKind::FlashCrowd {
                clients: 2,
                reads: 3,
                spread: SimDuration::from_millis(40),
            },
        })
        .event(FaultEvent {
            at: SimTime::from_millis(900),
            kind: FaultKind::CrashReplica { slot: 1 },
        })
        .build(&chaos_plan_space_for(3, 0))
        .expect("trio fixture plan fits its space");
    Fixture {
        name: "trio",
        plan,
        chaos: ChaosConfig {
            increments: 8,
            slots: 3,
            ..ChaosConfig::default()
        },
        gate: gate(12, 400),
    }
}

/// The seeded protocol mutation ([`ServantMutation::DropDedup`]) under a
/// watchdog tightened towards the round-trip time: the FIFO schedule
/// passes (replies beat the watchdog), but an interleaving that fires
/// the client's watchdog ahead of the already-committed reply makes the
/// client retry an applied increment — and without servant dedup the
/// increment commits twice, breaking the exactly-once values sequence.
pub fn seeded_bug() -> Fixture {
    let plan = FaultPlanBuilder::new(7)
        .build(&chaos_plan_space_for(1, 0))
        .expect("empty plan is valid");
    Fixture {
        name: "seeded-bug",
        plan,
        chaos: ChaosConfig {
            increments: 5,
            // One replica slot: the watchdog's fail-over rotation wraps
            // back to the same replica, so a retried-but-committed
            // increment re-applies on the state that already absorbed
            // it (a second slot's fresh state would mask the bug).
            slots: 1,
            // Just above the first increment's FIFO round trip
            // (~7.6 ms: resolve + connect + commit-acked invoke), so the
            // in-flight reply and the watchdog timer land within one
            // reorder window instead of 800 ms apart.
            watchdog: SimDuration::from_micros(7_600),
            mutation: ServantMutation::DropDedup,
            ..ChaosConfig::default()
        },
        // The boot, registration, resolve and first-invoke phases
        // (650–700 ms) are pure noise for this bug; open the decision
        // window once a commit-acked reply is in flight against a live
        // watchdog so the budget covers the reply-vs-watchdog races
        // instead of naming-service chatter — and the minimized witness
        // stays a handful of decisions.
        gate: GateCfg {
            window_start: SimTime::from_millis(700),
            window_end: SimTime::from_millis(2_500),
            max_steps: 12,
            slack: SimDuration::from_micros(900),
        },
    }
}
