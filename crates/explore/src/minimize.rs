//! Failing-schedule minimization: shrink a violating choice vector to a
//! minimal reproducer.
//!
//! Two phases, both standard delta-debugging specialised to the choice
//! encoding (a vector is a valid schedule after *any* truncation, and
//! setting an entry to 0 removes that deviation while keeping the rest
//! aligned — gating, not position, pairs decisions with choice points):
//!
//! 1. **Prefix bisection** — binary-search the shortest failing prefix
//!    of the vector (everything past it replays as the kernel default).
//! 2. **Greedy deviation deletion** — walk the surviving prefix from the
//!    back, zeroing each non-default pick that the failure does not
//!    need.
//!
//! Every candidate is re-executed for real; the result is always a
//! verified failing schedule, never an extrapolation.

use experiments::ChaosConfig;
use faults::FaultPlan;
use simnet::{DecisionTrace, GateCfg};

use crate::engine::run_prefix;

/// A verified minimal failing schedule.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The minimal choice vector (trailing defaults trimmed).
    pub choices: Vec<u64>,
    /// The full decision trace of the final verification run — the
    /// replayable artifact.
    pub trace: DecisionTrace,
    /// The violations the minimal schedule still triggers.
    pub violations: Vec<String>,
    /// Outcome digest of the final verification run.
    pub outcome_digest: u64,
    /// Simulation runs the minimization spent (verification included).
    pub runs_used: usize,
}

struct Shrinker<'a> {
    plan: &'a FaultPlan,
    chaos: &'a ChaosConfig,
    gate: GateCfg,
    used: usize,
    budget: usize,
}

impl Shrinker<'_> {
    /// Runs `choices`; returns the run when it still violates an
    /// invariant, `None` when it passes (or the run budget is spent).
    fn failing_run(&mut self, choices: &[u64]) -> Option<crate::engine::RunResult> {
        if self.used >= self.budget {
            return None;
        }
        self.used += 1;
        let run = run_prefix(self.plan, self.chaos, self.gate, choices);
        (!run.violations.is_empty()).then_some(run)
    }
}

/// Shrinks `failing` to a minimal choice vector that still violates an
/// invariant, spending at most `budget` simulation runs. Returns `None`
/// when `failing` does not actually fail (or the budget is too small to
/// even verify it).
pub fn minimize(
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    gate: GateCfg,
    failing: &[u64],
    budget: usize,
) -> Option<Minimized> {
    let mut shrinker = Shrinker {
        plan,
        chaos,
        gate,
        used: 0,
        budget,
    };
    shrinker.failing_run(failing)?;

    // Phase 1: shortest failing prefix by bisection. The predicate is
    // monotone for single-cause failures; when it is not, the guard
    // below falls back to the full vector and phase 2 still applies.
    let mut lo = 0usize;
    let mut hi = failing.len();
    while lo < hi && shrinker.used < shrinker.budget {
        let mid = lo + (hi - lo) / 2;
        if shrinker.failing_run(&failing[..mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut best: Vec<u64> = if shrinker.failing_run(&failing[..hi]).is_some() {
        failing[..hi].to_vec()
    } else {
        failing.to_vec()
    };

    // Phase 2: zero unnecessary deviations, last first (later picks
    // depend on earlier ones, so freeing the tail first preserves more
    // structure per attempt).
    for i in (0..best.len()).rev() {
        if best.get(i).copied().unwrap_or(0) == 0 {
            continue;
        }
        let mut candidate = best.clone();
        if let Some(slot) = candidate.get_mut(i) {
            *slot = 0;
        }
        if shrinker.failing_run(&candidate).is_some() {
            best = candidate;
        }
    }
    while best.last() == Some(&0) {
        best.pop();
    }

    // The final verification always runs, even when shrinking spent the
    // whole budget: the returned schedule must be a witnessed failure.
    shrinker.budget = shrinker.used + 1;
    let run = shrinker.failing_run(&best)?;
    Some(Minimized {
        choices: best,
        trace: run.trace,
        violations: run.violations,
        outcome_digest: run.outcome_digest,
        runs_used: shrinker.used,
    })
}
