//! Loader for the `conflict-relation/1` artifact detlint's effect
//! analysis emits (`detlint --conflict-report`).
//!
//! The artifact refines the explorer's syntactic conflict test with
//! statically proven independence: an entry `{a, b, when}` declares
//! that two *simultaneous* candidates (equal dispatch time) whose
//! `kind:class` keys match the unordered pair `{a, b}` commute when the
//! qualifier holds, so the explorer need not branch on their order.
//! Distinct-time pairs are never independent — picking the later
//! candidate models late delivery and the clock advance is itself an
//! observable effect — so the scheduler applies entries only to
//! same-instant pairs regardless of what the artifact says.
//!
//! The parser is a hand-rolled subset-of-JSON reader (objects, arrays,
//! strings) in the same spirit as the decision-trace loader: no
//! external dependencies, strict about the schema tag, tolerant of
//! unknown keys so the artifact can grow.

use simnet::Candidate;

/// Schema tag every artifact must carry.
pub const RELATION_SCHEMA: &str = "conflict-relation/1";

/// Qualifier under which a declared pair is independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum When {
    /// Independent whenever simultaneous.
    Always,
    /// Independent only when both candidates touch the same connection
    /// (the idempotent re-drain case: the second wake-up finds the
    /// queue already drained and no-ops).
    SameTouchConn,
    /// Independent only when the candidates touch distinct connections.
    DistinctTouchConn,
}

impl When {
    fn parse(s: &str) -> Option<When> {
        match s {
            "always" => Some(When::Always),
            "same_touch_conn" => Some(When::SameTouchConn),
            "distinct_touch_conn" => Some(When::DistinctTouchConn),
            _ => None,
        }
    }

    /// Stable artifact spelling.
    pub fn name(self) -> &'static str {
        match self {
            When::Always => "always",
            When::SameTouchConn => "same_touch_conn",
            When::DistinctTouchConn => "distinct_touch_conn",
        }
    }
}

/// One declared-independent unordered pair of `kind:class` keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndependentPair {
    /// First key, e.g. `"notify:data_readable"`.
    pub a: String,
    /// Second key (may equal `a` for self-pairs).
    pub b: String,
    /// Qualifier gating the independence claim.
    pub when: When,
}

/// A parsed `conflict-relation/1` artifact.
#[derive(Clone, Debug, Default)]
pub struct ConflictRelation {
    /// Declared-independent pairs, in artifact order.
    pub independent: Vec<IndependentPair>,
}

/// Why an artifact failed to load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationError(pub String);

impl std::fmt::Display for RelationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conflict-relation: {}", self.0)
    }
}

impl ConflictRelation {
    /// Parses an artifact from its JSON text.
    pub fn parse(src: &str) -> Result<ConflictRelation, RelationError> {
        let schema = str_field(src, "schema")
            .ok_or_else(|| RelationError("missing \"schema\" field".into()))?;
        if schema != RELATION_SCHEMA {
            return Err(RelationError(format!(
                "unsupported schema {schema:?} (want {RELATION_SCHEMA:?})"
            )));
        }
        let mut independent = Vec::new();
        for obj in array_objects(src, "independent")? {
            let a = str_field(&obj, "a")
                .ok_or_else(|| RelationError("independent entry missing \"a\"".into()))?;
            let b = str_field(&obj, "b")
                .ok_or_else(|| RelationError("independent entry missing \"b\"".into()))?;
            let when_raw = str_field(&obj, "when")
                .ok_or_else(|| RelationError("independent entry missing \"when\"".into()))?;
            let when = When::parse(&when_raw)
                .ok_or_else(|| RelationError(format!("unknown \"when\" qualifier {when_raw:?}")))?;
            independent.push(IndependentPair { a, b, when });
        }
        Ok(ConflictRelation { independent })
    }

    /// Whether the artifact declares two *simultaneous* same-target
    /// candidates independent. Callers must have already established
    /// simultaneity and same-target; this only consults the declared
    /// pairs and their qualifiers.
    pub fn independent(&self, a: &Candidate, b: &Candidate) -> bool {
        let ka = format!("{}:{}", a.kind.name(), a.class);
        let kb = format!("{}:{}", b.kind.name(), b.class);
        self.independent.iter().any(|p| {
            let keys_match = (p.a == ka && p.b == kb) || (p.a == kb && p.b == ka);
            keys_match
                && match p.when {
                    When::Always => true,
                    When::SameTouchConn => a.touch_conn.is_some() && a.touch_conn == b.touch_conn,
                    When::DistinctTouchConn => {
                        a.touch_conn.is_some()
                            && b.touch_conn.is_some()
                            && a.touch_conn != b.touch_conn
                    }
                }
        })
    }
}

/// Extracts `"name": "value"` from `src` (first occurrence, any depth —
/// the artifact nests only one level and field names do not repeat
/// across levels).
fn str_field(src: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\"");
    let at = src.find(&needle)?;
    let rest = &src[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Splits the array field `name` of `src` into the raw text of its
/// object elements. Returns an empty vec when the field is absent.
fn array_objects(src: &str, name: &str) -> Result<Vec<String>, RelationError> {
    let needle = format!("\"{name}\"");
    let Some(at) = src.find(&needle) else {
        return Ok(Vec::new());
    };
    let rest = &src[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| RelationError(format!("malformed \"{name}\" field")))?
        .trim_start();
    let rest = rest
        .strip_prefix('[')
        .ok_or_else(|| RelationError(format!("\"{name}\" is not an array")))?;
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in rest.char_indices() {
        if in_str {
            match ch {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => in_str = false,
                _ => escaped = false,
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        objects.push(rest[s..=i].to_string());
                    }
                }
            }
            ']' if depth == 0 => return Ok(objects),
            _ => {}
        }
    }
    Err(RelationError(format!("unterminated \"{name}\" array")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::sched::CandidateKind;
    use simnet::testkit::candidate;
    use simnet::SimTime;

    fn art(independent: &str) -> String {
        format!(
            "{{\n  \"schema\": \"conflict-relation/1\",\n  \"independent\": [{independent}]\n}}\n"
        )
    }

    fn notify_dr(touch: Option<u64>) -> Candidate {
        candidate(
            SimTime::from_nanos(500),
            1,
            CandidateKind::Notify,
            "data_readable",
            Some(4),
            None,
            touch,
            true,
        )
    }

    #[test]
    fn parses_and_matches_same_touch_conn_pairs() {
        let rel = ConflictRelation::parse(&art(
            "{\"a\": \"notify:data_readable\", \"b\": \"notify:data_readable\", \"when\": \"same_touch_conn\"}",
        ))
        .unwrap();
        assert_eq!(rel.independent.len(), 1);
        assert!(rel.independent(&notify_dr(Some(7)), &notify_dr(Some(7))));
        assert!(!rel.independent(&notify_dr(Some(7)), &notify_dr(Some(8))));
        assert!(!rel.independent(&notify_dr(None), &notify_dr(None)));
    }

    #[test]
    fn unordered_key_match_and_distinct_qualifier() {
        let rel = ConflictRelation::parse(&art(
            "{\"a\": \"timer_fire:timer_fired\", \"b\": \"notify:data_readable\", \"when\": \"distinct_touch_conn\"}",
        ))
        .unwrap();
        let timer = candidate(
            SimTime::from_nanos(500),
            2,
            CandidateKind::TimerFire,
            "timer_fired",
            Some(4),
            None,
            Some(9),
            true,
        );
        assert!(rel.independent(&timer, &notify_dr(Some(7))));
        assert!(rel.independent(&notify_dr(Some(7)), &timer));
        assert!(!rel.independent(&notify_dr(Some(9)), &timer));
    }

    #[test]
    fn rejects_wrong_schema_and_bad_qualifier() {
        let err = ConflictRelation::parse("{\"schema\": \"conflict-relation/2\"}").unwrap_err();
        assert!(err.0.contains("unsupported schema"));
        let err = ConflictRelation::parse(&art(
            "{\"a\": \"x\", \"b\": \"y\", \"when\": \"sometimes\"}",
        ))
        .unwrap_err();
        assert!(err.0.contains("unknown \"when\""));
        assert!(ConflictRelation::parse("{\"independent\": []}").is_err());
    }

    #[test]
    fn empty_or_absent_independent_list_is_fine() {
        let rel = ConflictRelation::parse("{\"schema\": \"conflict-relation/1\"}").unwrap();
        assert!(rel.independent.is_empty());
        assert!(!rel.independent(&notify_dr(Some(7)), &notify_dr(Some(7))));
    }
}
