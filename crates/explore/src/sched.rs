//! The recording scheduler driving the search: follows a prescribed
//! choice prefix, defaults afterwards, and records every gated decision
//! together with the DPOR-lite branch set discovered there.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use simnet::sched::{Decision, Gate};
use simnet::{Candidate, ChoicePoint, GateCfg, Scheduler, SimDuration};

use crate::relation::ConflictRelation;

/// Whether reordering `a` and `b` is observable (they *conflict*) under
/// the purely syntactic rule: both land on the same process, or ride
/// the same connection. Commuting pairs — independent processes,
/// independent connections — produce the same global state in either
/// order, so the explorer never branches on them. This is the
/// partial-order reduction that keeps the search bounded.
pub fn conflicts(a: &Candidate, b: &Candidate) -> bool {
    (a.target.is_some() && a.target == b.target) || (a.conn.is_some() && a.conn == b.conn)
}

/// [`conflicts`] refined by a statically derived [`ConflictRelation`]:
/// a same-target pair stops conflicting when the artifact proves the
/// two handler classes independent. The refinement only ever applies
/// to *simultaneous* candidates — dispatching the later of two
/// distinct-time candidates first models late delivery, and the clock
/// advance is itself observable (handler emissions carry timestamps) —
/// so distinct-time pairs always conflict, whatever the artifact says.
pub fn conflicts_under(relation: Option<&ConflictRelation>, a: &Candidate, b: &Candidate) -> bool {
    if a.conn.is_some() && a.conn == b.conn {
        return true;
    }
    if a.target.is_none() || a.target != b.target {
        return false;
    }
    let Some(relation) = relation else {
        return true;
    };
    if a.at != b.at {
        return true;
    }
    !relation.independent(a, b)
}

/// Everything one run teaches the explorer: the gated decisions that
/// were made, and — per decision — the alternative candidate indices
/// worth trying instead (eligible and conflicting with the pick).
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Every gated decision, in ordinal order.
    pub decisions: Vec<Decision>,
    /// `branches[i]` lists the candidate indices at decision `i` that
    /// are eligible, differ from the pick, and conflict with it.
    pub branches: Vec<Vec<u64>>,
    /// `pruned[i]` lists the candidate indices at decision `i` that the
    /// syntactic rule would have branched on but the loaded
    /// [`ConflictRelation`] proved independent of the pick. Empty at
    /// every decision when no relation is loaded. The dynamic soundness
    /// cross-check replays these to validate the static claim.
    pub pruned: Vec<Vec<u64>>,
}

/// A [`Scheduler`] that plays a choice prefix, then the kernel default,
/// recording decisions and branch sets into a shared [`RunRecord`].
///
/// The scheduler is moved into the simulation, so the record is shared
/// via `Rc` and read back by the caller after the run completes.
#[derive(Clone, Debug)]
pub struct ExploreScheduler {
    gate: Gate,
    prefix: Vec<u64>,
    relation: Option<Arc<ConflictRelation>>,
    record: Rc<RefCell<RunRecord>>,
}

impl ExploreScheduler {
    /// A scheduler over `gate` that picks `prefix[i]` at gated decision
    /// `i` (clamped exactly as the kernel clamps) and candidate 0 past
    /// the prefix, filling `record` as it goes. Branch sets use the
    /// syntactic [`conflicts`] rule.
    pub fn new(gate: GateCfg, prefix: Vec<u64>, record: Rc<RefCell<RunRecord>>) -> Self {
        Self::with_relation(gate, prefix, None, record)
    }

    /// [`new`](Self::new), with branch sets refined by a loaded
    /// conflict-relation artifact: alternatives the relation proves
    /// independent of the pick land in [`RunRecord::pruned`] instead of
    /// [`RunRecord::branches`], so the search never expands them.
    pub fn with_relation(
        gate: GateCfg,
        prefix: Vec<u64>,
        relation: Option<Arc<ConflictRelation>>,
        record: Rc<RefCell<RunRecord>>,
    ) -> Self {
        ExploreScheduler {
            gate: Gate::new(gate),
            prefix,
            relation,
            record,
        }
    }
}

impl Scheduler for ExploreScheduler {
    fn choose(&mut self, cp: &ChoicePoint) -> usize {
        let Some(ordinal) = self.gate.admit(cp) else {
            return 0;
        };
        let want = self.prefix.get(ordinal as usize).copied().unwrap_or(0) as usize;
        // Mirror the kernel's clamp so the recorded pick is the
        // dispatched pick even when the prefix is stale for this branch
        // of the schedule tree.
        let chosen = match cp.candidates.get(want) {
            Some(c) if c.eligible => want,
            _ => 0,
        };
        let mut alternatives = Vec::new();
        let mut pruned = Vec::new();
        if let Some(picked) = cp.candidates.get(chosen) {
            for (i, c) in cp.candidates.iter().enumerate() {
                if i == chosen || !c.eligible || !conflicts(picked, c) {
                    continue;
                }
                if conflicts_under(self.relation.as_deref(), picked, c) {
                    alternatives.push(i as u64);
                } else {
                    pruned.push(i as u64);
                }
            }
        }
        let mut record = self.record.borrow_mut();
        record.decisions.push(Decision {
            step: ordinal,
            at_ns: cp.now.as_nanos(),
            n: cp.candidates.len() as u64,
            chosen: chosen as u64,
        });
        record.branches.push(alternatives);
        record.pruned.push(pruned);
        chosen
    }

    fn slack(&self) -> SimDuration {
        self.gate.cfg().slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{IndependentPair, When};
    use simnet::sched::CandidateKind;
    use simnet::testkit::candidate;
    use simnet::SimTime;

    fn cand(target: u64, conn: Option<u64>, eligible: bool) -> Candidate {
        candidate(
            SimTime::from_nanos(100),
            target,
            CandidateKind::Notify,
            "data_readable",
            Some(target),
            conn,
            conn,
            eligible,
        )
    }

    fn twin_relation() -> Arc<ConflictRelation> {
        Arc::new(ConflictRelation {
            independent: vec![IndependentPair {
                a: "notify:data_readable".into(),
                b: "notify:data_readable".into(),
                when: When::SameTouchConn,
            }],
        })
    }

    #[test]
    fn conflict_is_same_target_or_same_conn() {
        assert!(conflicts(&cand(1, None, true), &cand(1, None, true)));
        assert!(conflicts(&cand(1, Some(7), true), &cand(2, Some(7), true)));
        assert!(!conflicts(&cand(1, Some(7), true), &cand(2, Some(8), true)));
        assert!(!conflicts(&cand(1, None, true), &cand(2, None, true)));
    }

    #[test]
    fn relation_refines_simultaneous_same_target_pairs_only() {
        let rel = twin_relation();
        let a = cand(1, None, true);
        let mut b = cand(1, None, true);
        // Same target, same instant, same touch_conn — wait, these
        // carry touch_conn = conn = None, so the qualifier fails.
        assert!(conflicts_under(Some(&rel), &a, &b));
        // With a shared touched connection the declared pair applies.
        let mut a2 = a.clone();
        a2.touch_conn = Some(simnet::testkit::conn_id(9));
        b.touch_conn = Some(simnet::testkit::conn_id(9));
        assert!(!conflicts_under(Some(&rel), &a2, &b));
        // Distinct dispatch times always conflict under a relation.
        let mut late = b.clone();
        late.at = SimTime::from_nanos(200);
        assert!(conflicts_under(Some(&rel), &a2, &late));
        // No relation loaded: the syntactic rule stands.
        assert!(conflicts_under(None, &a2, &b));
        // Different targets stay independent either way.
        assert!(!conflicts_under(Some(&rel), &a2, &cand(2, None, true)));
    }

    #[test]
    fn records_prefix_clamps_and_branches() {
        let record = Rc::new(RefCell::new(RunRecord::default()));
        let mut sched = ExploreScheduler::new(GateCfg::default(), vec![1, 9], Rc::clone(&record));
        let cp = ChoicePoint {
            step: 0,
            now: SimTime::from_nanos(100),
            candidates: vec![
                cand(1, None, true),
                cand(1, None, true),
                cand(2, None, true),
                cand(1, Some(3), false),
            ],
        };
        // Decision 0: prefix says 1, candidate 1 is eligible -> taken.
        assert_eq!(sched.choose(&cp), 1);
        // Decision 1: prefix says 9 (out of range) -> clamped to 0.
        assert_eq!(sched.choose(&cp), 0);
        // Decision 2: past the prefix -> default 0.
        assert_eq!(sched.choose(&cp), 0);
        let rec = record.borrow();
        assert_eq!(rec.decisions.len(), 3);
        assert_eq!(rec.decisions[0].chosen, 1);
        assert_eq!(rec.decisions[1].chosen, 0);
        // Branches at decision 1 (picked candidate 0, target pid 1):
        // candidate 1 conflicts (same target), candidate 2 commutes
        // (different target, no conn), candidate 3 is ineligible.
        assert_eq!(rec.branches[1], vec![1]);
        // No relation loaded: nothing is ever pruned.
        assert!(rec.pruned.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn relation_moves_independent_alternatives_to_pruned() {
        let record = Rc::new(RefCell::new(RunRecord::default()));
        let mut sched = ExploreScheduler::with_relation(
            GateCfg::default(),
            Vec::new(),
            Some(twin_relation()),
            Rc::clone(&record),
        );
        // Two parked re-drains of one connection's queue for the same
        // process at the same instant (the declared twin pair), plus a
        // third wake-up for a different connection (still a conflict).
        let mut twin_a = cand(1, None, true);
        twin_a.touch_conn = Some(simnet::testkit::conn_id(9));
        let mut twin_b = twin_a.clone();
        twin_b.seq = 2;
        let mut other = cand(1, None, true);
        other.touch_conn = Some(simnet::testkit::conn_id(10));
        let cp = ChoicePoint {
            step: 0,
            now: SimTime::from_nanos(100),
            candidates: vec![twin_a, twin_b, other],
        };
        assert_eq!(sched.choose(&cp), 0);
        let rec = record.borrow();
        assert_eq!(rec.branches[0], vec![2]);
        assert_eq!(rec.pruned[0], vec![1]);
    }
}
