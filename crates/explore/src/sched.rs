//! The recording scheduler driving the search: follows a prescribed
//! choice prefix, defaults afterwards, and records every gated decision
//! together with the DPOR-lite branch set discovered there.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::sched::{Decision, Gate};
use simnet::{Candidate, ChoicePoint, GateCfg, Scheduler, SimDuration};

/// Whether reordering `a` and `b` is observable (they *conflict*): both
/// land on the same process, or ride the same connection. Commuting
/// pairs — independent processes, independent connections — produce the
/// same global state in either order, so the explorer never branches on
/// them. This is the partial-order reduction that keeps the search
/// bounded.
pub fn conflicts(a: &Candidate, b: &Candidate) -> bool {
    (a.target.is_some() && a.target == b.target) || (a.conn.is_some() && a.conn == b.conn)
}

/// Everything one run teaches the explorer: the gated decisions that
/// were made, and — per decision — the alternative candidate indices
/// worth trying instead (eligible and conflicting with the pick).
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Every gated decision, in ordinal order.
    pub decisions: Vec<Decision>,
    /// `branches[i]` lists the candidate indices at decision `i` that
    /// are eligible, differ from the pick, and conflict with it.
    pub branches: Vec<Vec<u64>>,
}

/// A [`Scheduler`] that plays a choice prefix, then the kernel default,
/// recording decisions and branch sets into a shared [`RunRecord`].
///
/// The scheduler is moved into the simulation, so the record is shared
/// via `Rc` and read back by the caller after the run completes.
#[derive(Clone, Debug)]
pub struct ExploreScheduler {
    gate: Gate,
    prefix: Vec<u64>,
    record: Rc<RefCell<RunRecord>>,
}

impl ExploreScheduler {
    /// A scheduler over `gate` that picks `prefix[i]` at gated decision
    /// `i` (clamped exactly as the kernel clamps) and candidate 0 past
    /// the prefix, filling `record` as it goes.
    pub fn new(gate: GateCfg, prefix: Vec<u64>, record: Rc<RefCell<RunRecord>>) -> Self {
        ExploreScheduler {
            gate: Gate::new(gate),
            prefix,
            record,
        }
    }
}

impl Scheduler for ExploreScheduler {
    fn choose(&mut self, cp: &ChoicePoint) -> usize {
        let Some(ordinal) = self.gate.admit(cp) else {
            return 0;
        };
        let want = self.prefix.get(ordinal as usize).copied().unwrap_or(0) as usize;
        // Mirror the kernel's clamp so the recorded pick is the
        // dispatched pick even when the prefix is stale for this branch
        // of the schedule tree.
        let chosen = match cp.candidates.get(want) {
            Some(c) if c.eligible => want,
            _ => 0,
        };
        let alternatives: Vec<u64> = match cp.candidates.get(chosen) {
            Some(picked) => cp
                .candidates
                .iter()
                .enumerate()
                .filter(|(i, c)| *i != chosen && c.eligible && conflicts(picked, c))
                .map(|(i, _)| i as u64)
                .collect(),
            None => Vec::new(),
        };
        let mut record = self.record.borrow_mut();
        record.decisions.push(Decision {
            step: ordinal,
            at_ns: cp.now.as_nanos(),
            n: cp.candidates.len() as u64,
            chosen: chosen as u64,
        });
        record.branches.push(alternatives);
        chosen
    }

    fn slack(&self) -> SimDuration {
        self.gate.cfg().slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::sched::CandidateKind;
    use simnet::testkit::candidate;
    use simnet::SimTime;

    fn cand(target: u64, conn: Option<u64>, eligible: bool) -> Candidate {
        candidate(
            SimTime::from_nanos(100),
            target,
            CandidateKind::Notify,
            Some(target),
            conn,
            eligible,
        )
    }

    #[test]
    fn conflict_is_same_target_or_same_conn() {
        assert!(conflicts(&cand(1, None, true), &cand(1, None, true)));
        assert!(conflicts(&cand(1, Some(7), true), &cand(2, Some(7), true)));
        assert!(!conflicts(&cand(1, Some(7), true), &cand(2, Some(8), true)));
        assert!(!conflicts(&cand(1, None, true), &cand(2, None, true)));
    }

    #[test]
    fn records_prefix_clamps_and_branches() {
        let record = Rc::new(RefCell::new(RunRecord::default()));
        let mut sched = ExploreScheduler::new(GateCfg::default(), vec![1, 9], Rc::clone(&record));
        let cp = ChoicePoint {
            step: 0,
            now: SimTime::from_nanos(100),
            candidates: vec![
                cand(1, None, true),
                cand(1, None, true),
                cand(2, None, true),
                cand(1, Some(3), false),
            ],
        };
        // Decision 0: prefix says 1, candidate 1 is eligible -> taken.
        assert_eq!(sched.choose(&cp), 1);
        // Decision 1: prefix says 9 (out of range) -> clamped to 0.
        assert_eq!(sched.choose(&cp), 0);
        // Decision 2: past the prefix -> default 0.
        assert_eq!(sched.choose(&cp), 0);
        let rec = record.borrow();
        assert_eq!(rec.decisions.len(), 3);
        assert_eq!(rec.decisions[0].chosen, 1);
        assert_eq!(rec.decisions[1].chosen, 0);
        // Branches at decision 1 (picked candidate 0, target pid 1):
        // candidate 1 conflicts (same target), candidate 2 commutes
        // (different target, no conn), candidate 3 is ineligible.
        assert_eq!(rec.branches[1], vec![1]);
    }
}
