//! End-to-end coverage of the exploration pipeline: the empty prefix is
//! FIFO-equivalent, every recorded [`DecisionTrace`] replays bit for bit
//! (as a property, over arbitrary choice vectors), the search digest is
//! thread-count independent, and the seeded known-bug fixture is caught,
//! minimized to a handful of decisions, and replayable by digest.

use experiments::{run_chaos_plan, run_chaos_plan_with};
use explore::{explore, fixtures, minimize, run_prefix, ExploreConfig};
use proptest::strategy::Strategy;
use simnet::{DecisionTrace, ReplayScheduler};

/// An empty choice prefix must reproduce the FIFO schedule exactly: the
/// choosing dispatch path with all-default picks and the FIFO fast path
/// are two implementations of the same total order.
#[test]
fn empty_prefix_is_fifo_equivalent() {
    for fixture in [fixtures::pair(), fixtures::trio(), fixtures::seeded_bug()] {
        let fifo = run_chaos_plan(&fixture.plan, &fixture.chaos);
        let run = run_prefix(&fixture.plan, &fixture.chaos, fixture.gate, &[]);
        assert_eq!(
            fifo.digest(),
            run.outcome_digest,
            "fixture {}: all-default exploration diverged from FIFO",
            fixture.name
        );
        assert_eq!(
            run.trace.deviations(),
            0,
            "fixture {}: empty prefix recorded a deviation",
            fixture.name
        );
    }
}

/// The frontier search must not depend on worker-thread count: same
/// budget, same digest, same failure set.
#[test]
fn explore_digest_is_thread_count_independent() {
    let fixture = fixtures::pair();
    let outcome = |threads: usize| {
        explore(
            &fixture.plan,
            &fixture.chaos,
            &ExploreConfig {
                gate: fixture.gate,
                max_runs: 48,
                max_depth: 8,
                threads,
                relation: None,
            },
        )
    };
    let one = outcome(1);
    let four = outcome(4);
    assert_eq!(one.digest, four.digest);
    assert_eq!(one.executed, four.executed);
    assert_eq!(one.outcome_digests, four.outcome_digests);
    assert_eq!(one.failures.len(), four.failures.len());
}

/// Any choice vector — in range, out of range (clamped to default), long
/// or empty — yields a trace that (a) survives the JSONL round trip and
/// (b) replays through the independent [`ReplayScheduler`] to a
/// bit-identical outcome digest. Cases are generated from the vendored
/// proptest strategy API with an explicit small case count (each case
/// costs two full simulation runs).
#[test]
fn decision_trace_replays_bit_identically() {
    let strat = proptest::collection::vec(0u64..4, 0..10usize);
    let fixture = fixtures::pair();
    for case in 0..8u32 {
        let mut rng = proptest::test_runner::new_rng("decision_trace_replays", case);
        let choices: Vec<u64> = Strategy::generate(&strat, &mut rng);
        let run = run_prefix(&fixture.plan, &fixture.chaos, fixture.gate, &choices);

        let parsed = DecisionTrace::parse(&run.trace.to_jsonl())
            .expect("recorded trace round-trips through JSONL");
        assert_eq!(parsed, run.trace, "JSONL round trip for {choices:?}");

        let replayed = run_chaos_plan_with(
            &fixture.plan,
            &fixture.chaos,
            Box::new(ReplayScheduler::from_trace(&run.trace)),
        );
        assert_eq!(
            replayed.digest(),
            run.outcome_digest,
            "replay diverged for choices {choices:?}"
        );
    }
}

/// The acceptance pipeline for the seeded protocol mutation
/// ([`fixtures::seeded_bug`]): dormant under FIFO, caught by the search,
/// minimized to at most ten decisions, and the minimal trace replays by
/// digest with the violation intact.
#[test]
fn seeded_bug_is_caught_minimized_and_replayable() {
    let fixture = fixtures::seeded_bug();

    let fifo = run_prefix(&fixture.plan, &fixture.chaos, fixture.gate, &[]);
    assert!(
        fifo.violations.is_empty(),
        "mutation must stay dormant under FIFO: {:?}",
        fifo.violations
    );

    let outcome = explore(
        &fixture.plan,
        &fixture.chaos,
        &ExploreConfig {
            gate: fixture.gate,
            max_runs: 256,
            max_depth: 12,
            threads: 2,
            relation: None,
        },
    );
    let first = outcome
        .failures
        .first()
        .expect("the search must expose the seeded mutation");
    let witness: Vec<u64> = first.trace.decisions.iter().map(|d| d.chosen).collect();

    let minimal = minimize(&fixture.plan, &fixture.chaos, fixture.gate, &witness, 200)
        .expect("the witness must minimize to a verified failing schedule");
    assert!(
        minimal.choices.len() <= 10,
        "minimal schedule keeps {} decisions",
        minimal.choices.len()
    );
    assert!(!minimal.violations.is_empty());

    let replayed = run_chaos_plan_with(
        &fixture.plan,
        &fixture.chaos,
        Box::new(ReplayScheduler::from_trace(&minimal.trace)),
    );
    assert_eq!(replayed.digest(), minimal.outcome_digest);
    assert_eq!(replayed.violations, minimal.violations);
}
