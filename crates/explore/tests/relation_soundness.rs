//! Dynamic soundness cross-check for the `conflict-relation/1` artifact
//! (DESIGN §13): every alternative the relation prunes must be
//! behaviourally redundant, not merely claimed so by the static
//! analysis.
//!
//! For each pruned site — a choice stem, the pick the scheduler kept,
//! and the simultaneous alternative the artifact declared independent —
//! the test replays the two events *adjacently in both orders with
//! everything else fixed* and asserts exact outcome-digest equality.
//! That is the commutativity claim the artifact makes, and nothing
//! stronger: comparing whole subtree outcome sets instead would be
//! unsound near the gate's decision horizon, where picking the pruned
//! event first also transposes it past later *conflicting* events that
//! the truncated kept-side subtree can no longer branch on.
//!
//! A second test pins the coverage claim end to end: the relation-pruned
//! tree reaches the full DPOR-lite tree's outcome set in strictly fewer
//! runs. Both checks run at one and four worker threads.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

use experiments::{run_batch_with, run_chaos_plan_with};
use explore::{fixtures, run_prefix_with, ConflictRelation};
use simnet::sched::Gate;
use simnet::{ChoicePoint, Scheduler, SimDuration};

/// The twin data-readable entry the real workspace artifact carries
/// (`detlint --conflict-report`), inlined so the test does not depend
/// on a generated file.
const ARTIFACT: &str = r#"{
  "schema": "conflict-relation/1",
  "independent": [
    {"a": "notify:data_readable", "b": "notify:data_readable", "when": "same_touch_conn"}
  ]
}"#;

/// What one frontier walk of the choice tree observed.
struct Walk {
    /// Distinct outcome digests across every run of the walk.
    digests: BTreeSet<u64>,
    /// Deduplicated pruned sites: (stem before the decision, kept pick,
    /// pruned alternative).
    pruned_sites: BTreeSet<(Vec<u64>, u64, u64)>,
    /// Simulation runs spent.
    executed: usize,
}

/// Exhaustively explores the choice tree — the same frontier BFS as
/// [`explore::explore`], unbudgeted but with a safety backstop —
/// additionally recording every site the relation pruned.
fn walk(
    fixture: &fixtures::Fixture,
    relation: Option<&Arc<ConflictRelation>>,
    threads: usize,
) -> Walk {
    let mut frontier = vec![Vec::new()];
    let mut out = Walk {
        digests: BTreeSet::new(),
        pruned_sites: BTreeSet::new(),
        executed: 0,
    };
    while !frontier.is_empty() {
        out.executed += frontier.len();
        assert!(out.executed <= 4000, "soundness walk exceeded its backstop");
        let wave: Vec<Vec<u64>> = std::mem::take(&mut frontier);
        let results = run_batch_with(&wave, threads, |prefix| {
            run_prefix_with(
                &fixture.plan,
                &fixture.chaos,
                fixture.gate,
                relation.map(Arc::clone),
                prefix,
            )
        });
        for run in results {
            out.digests.insert(run.outcome_digest);
            for (d, alts) in run.branches.iter().enumerate().skip(run.prefix.len()) {
                let stem = || -> Vec<u64> {
                    run.trace
                        .decisions
                        .iter()
                        .take(d)
                        .map(|x| x.chosen)
                        .collect()
                };
                for &b in alts {
                    let mut child = stem();
                    child.push(b);
                    frontier.push(child);
                }
                if let Some(pruned) = run.pruned.get(d) {
                    let kept = run.trace.decisions[d].chosen;
                    for &p in pruned {
                        out.pruned_sites.insert((stem(), kept, p));
                    }
                }
            }
        }
    }
    out
}

/// Plays `stem`, then at the next two gated decisions dispatches the
/// kernel events with the given sequence numbers, then defaults. The
/// gate keeps the fixture's window start (so decision ordinals line up
/// with the walk that found the site) but lifts the end/budget just far
/// enough to control the swapped pair.
struct SeqPick {
    gate: Gate,
    stem: Vec<u64>,
    seqs: [u64; 2],
    found: Rc<RefCell<[bool; 2]>>,
}

impl Scheduler for SeqPick {
    fn choose(&mut self, cp: &ChoicePoint) -> usize {
        let Some(ordinal) = self.gate.admit(cp) else {
            return 0;
        };
        let ordinal = ordinal as usize;
        if ordinal < self.stem.len() {
            let want = self.stem[ordinal] as usize;
            return match cp.candidates.get(want) {
                Some(c) if c.eligible => want,
                _ => 0,
            };
        }
        let Some(&seq) = self.seqs.get(ordinal - self.stem.len()) else {
            return 0;
        };
        match cp
            .candidates
            .iter()
            .position(|c| c.seq == seq && c.eligible)
        {
            Some(i) => {
                self.found.borrow_mut()[ordinal - self.stem.len()] = true;
                i
            }
            None => 0,
        }
    }

    fn slack(&self) -> SimDuration {
        self.gate.cfg().slack
    }
}

/// Runs `stem`, then the events `first` and `second` (kernel seqs) in
/// that order, then FIFO defaults; returns the outcome digest. Panics
/// if either event is not dispatchable at its slot — an event the other
/// order consumed or cancelled is itself an independence violation.
fn swap_run(fixture: &fixtures::Fixture, stem: &[u64], first: u64, second: u64) -> u64 {
    let mut cfg = fixture.gate;
    cfg.window_end = simnet::SimTime::from_nanos(u64::MAX);
    cfg.max_steps = stem.len() as u64 + 2;
    let found = Rc::new(RefCell::new([false; 2]));
    let sched = SeqPick {
        gate: Gate::new(cfg),
        stem: stem.to_vec(),
        seqs: [first, second],
        found: Rc::clone(&found),
    };
    let outcome = run_chaos_plan_with(&fixture.plan, &fixture.chaos, Box::new(sched));
    assert_eq!(
        *found.borrow(),
        [true; 2],
        "event pair (seq {first}, seq {second}) not dispatchable after stem {stem:?}"
    );
    outcome.digest()
}

/// Captures the candidate seqs at gated decision `stem.len()` while
/// playing `stem` and defaulting afterwards.
struct Capture {
    gate: Gate,
    stem: Vec<u64>,
    seqs: Rc<RefCell<Vec<u64>>>,
}

impl Scheduler for Capture {
    fn choose(&mut self, cp: &ChoicePoint) -> usize {
        let Some(ordinal) = self.gate.admit(cp) else {
            return 0;
        };
        let ordinal = ordinal as usize;
        if ordinal == self.stem.len() {
            *self.seqs.borrow_mut() = cp.candidates.iter().map(|c| c.seq).collect();
        }
        let want = self.stem.get(ordinal).copied().unwrap_or(0) as usize;
        match cp.candidates.get(want) {
            Some(c) if c.eligible => want,
            _ => 0,
        }
    }

    fn slack(&self) -> SimDuration {
        self.gate.cfg().slack
    }
}

/// The candidate seq numbers at the decision right after `stem`.
fn seqs_after(fixture: &fixtures::Fixture, stem: &[u64]) -> Vec<u64> {
    let seqs = Rc::new(RefCell::new(Vec::new()));
    let sched = Capture {
        gate: Gate::new(fixture.gate),
        stem: stem.to_vec(),
        seqs: Rc::clone(&seqs),
    };
    run_chaos_plan_with(&fixture.plan, &fixture.chaos, Box::new(sched));
    let out = seqs.borrow().clone();
    assert!(!out.is_empty(), "stem {stem:?} reached no further decision");
    out
}

/// Every site the artifact pruned on the `pair` fixture is replayed
/// with the declared-independent events adjacent in both orders; the
/// outcomes must be identical. No site is sampled away — the walk
/// enumerates all of them.
#[test]
fn pruned_pairs_commute_in_both_orders() {
    let relation = Arc::new(ConflictRelation::parse(ARTIFACT).expect("artifact parses"));
    let fixture = fixtures::pair();
    let sites: Vec<(Vec<u64>, u64, u64)> = walk(&fixture, Some(&relation), 1)
        .pruned_sites
        .into_iter()
        .collect();
    assert!(
        !sites.is_empty(),
        "the relation pruned nothing on the pair fixture — the check is vacuous"
    );
    for threads in [1usize, 4] {
        let verdicts = run_batch_with(&sites, threads, |(stem, kept, alt)| {
            let seqs = seqs_after(&fixture, stem);
            let kept_seq = seqs[*kept as usize];
            let alt_seq = seqs[*alt as usize];
            let forward = swap_run(&fixture, stem, kept_seq, alt_seq);
            let swapped = swap_run(&fixture, stem, alt_seq, kept_seq);
            (stem.clone(), forward, swapped)
        });
        for (stem, forward, swapped) in verdicts {
            assert_eq!(
                forward, swapped,
                "declared-independent pair does not commute after stem {stem:?} \
                 ({threads} threads)"
            );
        }
    }
}

/// The pruned tree must be a genuine optimisation, not a different
/// search: strictly fewer runs than the full DPOR-lite tree, same set
/// of reachable outcomes, at both thread counts.
#[test]
fn pruned_tree_covers_the_full_dpor_outcome_set() {
    let relation = Arc::new(ConflictRelation::parse(ARTIFACT).expect("artifact parses"));
    let fixture = fixtures::pair();
    for threads in [1usize, 4] {
        let pruned = walk(&fixture, Some(&relation), threads);
        let full = walk(&fixture, None, threads);
        assert!(
            pruned.executed < full.executed,
            "relation saved nothing: {} pruned vs {} full runs",
            pruned.executed,
            full.executed
        );
        assert_eq!(
            pruned.digests, full.digests,
            "pruning lost outcomes ({threads} threads)"
        );
        assert!(full.pruned_sites.is_empty(), "no relation, nothing pruned");
    }
}
