//! Wire protocol of the group-communication system.
//!
//! Frames are length-prefixed (u32 big-endian) CDR bodies with a one-octet
//! message discriminant. Three sub-protocols share the enum: client↔daemon
//! commands/deliveries and daemon↔sequencer forwarding/ordering.

use bytes::{Buf, Bytes, BytesMut};

use giop::{CdrReader, CdrWriter, Endian};
use obs::{CodecError, WireCodec};

/// Upper bound on a sane GCS frame, to catch stream desynchronisation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Every message exchanged inside the group-communication system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcsWire {
    // -- client -> daemon --------------------------------------------------
    /// First message on a client connection: identify the member.
    Attach {
        /// Globally unique member name (e.g. `"replica-1@node2"`).
        member: String,
    },
    /// Join `group` (becoming part of its views).
    Join {
        /// Group name.
        group: String,
    },
    /// Leave `group` voluntarily.
    Leave {
        /// Group name.
        group: String,
    },
    /// Totally-ordered multicast to `group` members (open-group: the sender
    /// need not be a member, as in Spread).
    Multicast {
        /// Destination group.
        group: String,
        /// Opaque payload.
        payload: Vec<u8>,
    },

    // -- daemon -> client --------------------------------------------------
    /// Acknowledges [`GcsWire::Attach`].
    Attached,
    /// A new membership view for `group`, delivered in total order with
    /// respect to multicasts.
    View {
        /// Group name.
        group: String,
        /// Monotonically increasing view number (per group).
        view_id: u64,
        /// Current members, in join order.
        members: Vec<String>,
    },
    /// An ordered multicast delivery.
    Deliver {
        /// Group name.
        group: String,
        /// Sending member's name.
        sender: String,
        /// Opaque payload.
        payload: Vec<u8>,
    },

    // -- daemon -> sequencer (forwarding) -----------------------------------
    /// Identifies a daemon-to-daemon connection.
    Hello {
        /// The connecting daemon's node index.
        node: u32,
    },
    /// Forwarded join request.
    FwdJoin {
        /// Group name.
        group: String,
        /// Joining member.
        member: String,
        /// Node index of the member's daemon (for routing views back).
        daemon: u32,
    },
    /// Forwarded leave (voluntary or crash-detected).
    FwdLeave {
        /// Group name.
        group: String,
        /// Leaving member.
        member: String,
    },
    /// Forwarded multicast.
    FwdMulticast {
        /// Destination group.
        group: String,
        /// Sending member.
        sender: String,
        /// Opaque payload.
        payload: Vec<u8>,
    },

    // -- sequencer -> daemons (ordered stream) ------------------------------
    /// Ordered view installation.
    OrdView {
        /// Global total-order sequence number.
        seq: u64,
        /// Group name.
        group: String,
        /// View number within the group.
        view_id: u64,
        /// Members in join order.
        members: Vec<String>,
    },
    /// Ordered message delivery.
    OrdDeliver {
        /// Global total-order sequence number.
        seq: u64,
        /// Group name.
        group: String,
        /// Sending member.
        sender: String,
        /// Opaque payload.
        payload: Vec<u8>,
    },

    // -- daemon <-> daemon keep-alive ---------------------------------------
    /// Keep-alive token circulated between daemons (models Spread's
    /// steady token traffic; contributes to Figure 5's baseline
    /// bandwidth).
    Heartbeat {
        /// Padding to the configured token size.
        pad: Vec<u8>,
    },
}

impl GcsWire {
    fn kind(&self) -> u8 {
        match self {
            GcsWire::Attach { .. } => 0,
            GcsWire::Join { .. } => 1,
            GcsWire::Leave { .. } => 2,
            GcsWire::Multicast { .. } => 3,
            GcsWire::Attached => 4,
            GcsWire::View { .. } => 5,
            GcsWire::Deliver { .. } => 6,
            GcsWire::Hello { .. } => 7,
            GcsWire::FwdJoin { .. } => 8,
            GcsWire::FwdLeave { .. } => 9,
            GcsWire::FwdMulticast { .. } => 10,
            GcsWire::OrdView { .. } => 11,
            GcsWire::OrdDeliver { .. } => 12,
            GcsWire::Heartbeat { .. } => 13,
        }
    }

    /// Encodes as a length-prefixed frame ready for the wire.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_wire().to_vec()
    }

    /// Decodes one frame body (without the length prefix).
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed input.
    pub fn decode(body: &[u8]) -> Result<Self, CodecError> {
        Self::decode_body(body)
    }

    fn decode_body(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = CdrReader::new(body.to_vec().into(), Endian::Big);
        let kind = r.read_u8()?;
        Ok(match kind {
            0 => GcsWire::Attach {
                member: r.read_string()?,
            },
            1 => GcsWire::Join {
                group: r.read_string()?,
            },
            2 => GcsWire::Leave {
                group: r.read_string()?,
            },
            3 => GcsWire::Multicast {
                group: r.read_string()?,
                payload: r.read_octets()?,
            },
            4 => GcsWire::Attached,
            5 => {
                let group = r.read_string()?;
                let view_id = r.read_u64()?;
                let n = r.read_u32()?;
                let mut members = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    members.push(r.read_string()?);
                }
                GcsWire::View {
                    group,
                    view_id,
                    members,
                }
            }
            6 => GcsWire::Deliver {
                group: r.read_string()?,
                sender: r.read_string()?,
                payload: r.read_octets()?,
            },
            7 => GcsWire::Hello {
                node: r.read_u32()?,
            },
            8 => GcsWire::FwdJoin {
                group: r.read_string()?,
                member: r.read_string()?,
                daemon: r.read_u32()?,
            },
            9 => GcsWire::FwdLeave {
                group: r.read_string()?,
                member: r.read_string()?,
            },
            10 => GcsWire::FwdMulticast {
                group: r.read_string()?,
                sender: r.read_string()?,
                payload: r.read_octets()?,
            },
            11 => {
                let seq = r.read_u64()?;
                let group = r.read_string()?;
                let view_id = r.read_u64()?;
                let n = r.read_u32()?;
                let mut members = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    members.push(r.read_string()?);
                }
                GcsWire::OrdView {
                    seq,
                    group,
                    view_id,
                    members,
                }
            }
            12 => GcsWire::OrdDeliver {
                seq: r.read_u64()?,
                group: r.read_string()?,
                sender: r.read_string()?,
                payload: r.read_octets()?,
            },
            13 => GcsWire::Heartbeat {
                pad: r.read_octets()?,
            },
            other => return Err(CodecError::UnknownKind(other)),
        })
    }
}

impl WireCodec for GcsWire {
    const PROTOCOL: &'static str = "gcs";

    fn frame_name(&self) -> &'static str {
        match self {
            GcsWire::Attach { .. } => "attach",
            GcsWire::Join { .. } => "join",
            GcsWire::Leave { .. } => "leave",
            GcsWire::Multicast { .. } => "multicast",
            GcsWire::Attached => "attached",
            GcsWire::View { .. } => "view",
            GcsWire::Deliver { .. } => "deliver",
            GcsWire::Hello { .. } => "hello",
            GcsWire::FwdJoin { .. } => "fwd_join",
            GcsWire::FwdLeave { .. } => "fwd_leave",
            GcsWire::FwdMulticast { .. } => "fwd_multicast",
            GcsWire::OrdView { .. } => "ord_view",
            GcsWire::OrdDeliver { .. } => "ord_deliver",
            GcsWire::Heartbeat { .. } => "heartbeat",
        }
    }

    fn encode_wire(&self) -> Bytes {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u8(self.kind());
        match self {
            GcsWire::Attach { member } => w.write_string(member),
            GcsWire::Join { group } | GcsWire::Leave { group } => w.write_string(group),
            GcsWire::Multicast { group, payload } => {
                w.write_string(group);
                w.write_octets(payload);
            }
            GcsWire::Attached => {}
            GcsWire::View {
                group,
                view_id,
                members,
            } => {
                w.write_string(group);
                w.write_u64(*view_id);
                w.write_u32(giop::wire_len(members.len()));
                for m in members {
                    w.write_string(m);
                }
            }
            GcsWire::Deliver {
                group,
                sender,
                payload,
            } => {
                w.write_string(group);
                w.write_string(sender);
                w.write_octets(payload);
            }
            GcsWire::Hello { node } => w.write_u32(*node),
            GcsWire::FwdJoin {
                group,
                member,
                daemon,
            } => {
                w.write_string(group);
                w.write_string(member);
                w.write_u32(*daemon);
            }
            GcsWire::FwdLeave { group, member } => {
                w.write_string(group);
                w.write_string(member);
            }
            GcsWire::FwdMulticast {
                group,
                sender,
                payload,
            } => {
                w.write_string(group);
                w.write_string(sender);
                w.write_octets(payload);
            }
            GcsWire::OrdView {
                seq,
                group,
                view_id,
                members,
            } => {
                w.write_u64(*seq);
                w.write_string(group);
                w.write_u64(*view_id);
                w.write_u32(giop::wire_len(members.len()));
                for m in members {
                    w.write_string(m);
                }
            }
            GcsWire::OrdDeliver {
                seq,
                group,
                sender,
                payload,
            } => {
                w.write_u64(*seq);
                w.write_string(group);
                w.write_string(sender);
                w.write_octets(payload);
            }
            GcsWire::Heartbeat { pad } => w.write_octets(pad),
        }
        let body = w.finish();
        let mut out = BytesMut::with_capacity(4 + body.len());
        out.extend_from_slice(&giop::wire_len(body.len()).to_be_bytes());
        out.extend_from_slice(&body);
        out.freeze()
    }

    fn decode_wire(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 4 {
            return Err(CodecError::BadMagic);
        }
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if len > MAX_FRAME {
            return Err(CodecError::Oversize(len));
        }
        if bytes.len() != 4 + len as usize {
            return Err(CodecError::BadMagic);
        }
        Self::decode_body(&bytes[4..])
    }
}

/// Incremental splitter for length-prefixed GCS frames.
#[derive(Debug, Default)]
pub struct GcsSplitter {
    buf: BytesMut,
}

impl GcsSplitter {
    /// Creates an empty splitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete message, if buffered.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a corrupt frame.
    pub fn next_message(&mut self) -> Result<Option<GcsWire>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = (&self.buf[0..4]).get_u32();
        if len > MAX_FRAME {
            return Err(CodecError::Oversize(len));
        }
        if self.buf.len() < 4 + len as usize {
            return Ok(None);
        }
        self.buf.advance(4);
        let body = self.buf.split_to(len as usize);
        GcsWire::decode(&body).map(Some)
    }

    /// Drains all complete messages currently buffered.
    ///
    /// # Errors
    ///
    /// Propagates the first decode error.
    pub fn drain(&mut self) -> Result<Vec<GcsWire>, CodecError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<GcsWire> {
        vec![
            GcsWire::Attach {
                member: "replica-1".into(),
            },
            GcsWire::Join {
                group: "servers".into(),
            },
            GcsWire::Leave {
                group: "servers".into(),
            },
            GcsWire::Multicast {
                group: "servers".into(),
                payload: vec![1, 2, 3],
            },
            GcsWire::Attached,
            GcsWire::View {
                group: "servers".into(),
                view_id: 9,
                members: vec!["a".into(), "b".into()],
            },
            GcsWire::Deliver {
                group: "servers".into(),
                sender: "a".into(),
                payload: vec![7; 40],
            },
            GcsWire::Hello { node: 3 },
            GcsWire::FwdJoin {
                group: "g".into(),
                member: "m".into(),
                daemon: 2,
            },
            GcsWire::FwdLeave {
                group: "g".into(),
                member: "m".into(),
            },
            GcsWire::FwdMulticast {
                group: "g".into(),
                sender: "m".into(),
                payload: vec![],
            },
            GcsWire::OrdView {
                seq: 44,
                group: "g".into(),
                view_id: 2,
                members: vec![],
            },
            GcsWire::OrdDeliver {
                seq: 45,
                group: "g".into(),
                sender: "m".into(),
                payload: vec![0xFF],
            },
            GcsWire::Heartbeat { pad: vec![0; 48] },
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in samples() {
            let framed = msg.encode();
            let mut s = GcsSplitter::new();
            s.push(&framed);
            assert_eq!(s.next_message().unwrap().unwrap(), msg);
        }
    }

    #[test]
    fn splitter_handles_fragmentation() {
        let mut stream = Vec::new();
        for m in samples() {
            stream.extend_from_slice(&m.encode());
        }
        let mut s = GcsSplitter::new();
        let mut got = Vec::new();
        for chunk in stream.chunks(3) {
            s.push(chunk);
            while let Some(m) = s.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, samples());
    }

    #[test]
    fn oversize_frame_is_rejected() {
        let mut s = GcsSplitter::new();
        s.push(&(MAX_FRAME + 1).to_be_bytes());
        assert!(matches!(s.next_message(), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert_eq!(GcsWire::decode(&[200]), Err(CodecError::UnknownKind(200)));
    }

    #[test]
    fn wire_codec_trait_round_trips_and_describes_frames() {
        for msg in samples() {
            let framed = msg.encode_wire();
            assert_eq!(GcsWire::decode_wire(&framed), Ok(msg.clone()));
            match msg.frame_event() {
                obs::EventKind::Frame {
                    protocol,
                    frame,
                    len,
                } => {
                    assert_eq!(protocol, "gcs");
                    assert_eq!(frame, msg.frame_name());
                    assert_eq!(len as usize, framed.len());
                }
                other => panic!("unexpected event: {other:?}"),
            }
        }
        // A frame whose length prefix disagrees with the buffer is rejected.
        let mut framed = samples()[0].encode_wire().to_vec();
        framed.pop();
        assert_eq!(GcsWire::decode_wire(&framed), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncated_body_is_an_error_not_a_panic() {
        for msg in samples() {
            let framed = msg.encode();
            let body = &framed[4..];
            for cut in 0..body.len() {
                let _ = GcsWire::decode(&body[..cut]);
            }
        }
    }
}
