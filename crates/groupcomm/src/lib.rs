//! # groupcomm — totally-ordered group communication (Spread substitute)
//!
//! The paper's MEAD framework "exploits an underlying totally-ordered
//! reliable group communication system, specifically the Spread system, to
//! obtain the reliable delivery and ordering guarantees required for
//! consistent node-level and process-level membership" (section 3). This
//! crate rebuilds that substrate on the simulated network:
//!
//! * [`GcsDaemon`] — one daemon per node on the well-known port
//!   [`GCS_PORT`]; a fixed sequencer daemon imposes a single total order on
//!   all multicasts *and* membership changes,
//! * [`GcsClient`] — the embeddable client library processes use to join
//!   groups, receive views ([`GcsDelivery::View`]) and exchange ordered
//!   multicasts,
//! * crash-triggered membership: a member death is observed by its local
//!   daemon as EOF and turned into a view change — the notification the
//!   MEAD Recovery Manager launches replacement replicas from, and
//! * byte accounting of inter-daemon traffic under [`MESH_TAG`], measured
//!   by the paper's Figure 5.
//!
//! See `DESIGN.md` for the Spread-vs-sequencer substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod daemon;
mod wire;

pub use client::{GcsClient, GcsDelivery};
pub use daemon::{GcsConfig, GcsDaemon, GCS_PORT, MESH_TAG};
pub use obs::{CodecError, WireCodec};
pub use wire::{GcsSplitter, GcsWire, MAX_FRAME};
