//! Embeddable group-communication client.
//!
//! [`GcsClient`] is a library (not a process): the owning process — a MEAD
//! interceptor, the Recovery Manager, a replica — embeds one, forwards
//! relevant [`Event`]s to [`GcsClient::handle_event`], and receives
//! [`GcsDelivery`] values back. This mirrors how a real application links
//! the Spread client library and multiplexes its socket inside `select()`
//! — which is precisely what the paper's interceptor does by adding "the
//! group-communication socket into the list of read-sockets examined by
//! `select()`" (section 3.1).

use std::collections::BTreeSet;

use simnet::{Addr, ConnId, Event, SimDuration, SysApi};

use crate::daemon::GCS_PORT;
use crate::wire::{GcsSplitter, GcsWire};

/// Something the group-communication system delivered to this member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcsDelivery {
    /// The daemon acknowledged our attach; joins/multicasts now flow.
    Ready,
    /// A new membership view, totally ordered w.r.t. messages.
    View {
        /// Group name.
        group: String,
        /// Monotonic view number within the group.
        view_id: u64,
        /// Members in join order — the paper's schemes treat
        /// `members[0]` as the primary.
        members: Vec<String>,
    },
    /// An ordered multicast.
    Message {
        /// Group name.
        group: String,
        /// Sending member.
        sender: String,
        /// Opaque payload.
        payload: Vec<u8>,
    },
    /// The connection to the local daemon was lost.
    DaemonLost,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClientState {
    Idle,
    Connecting,
    Attaching,
    Ready,
    Lost,
}

/// A handle to the local GCS daemon, embedded in a host process.
#[derive(Debug)]
pub struct GcsClient {
    member: String,
    token_base: u64,
    state: ClientState,
    conn: Option<ConnId>,
    splitter: GcsSplitter,
    backlog: Vec<GcsWire>,
    joined: BTreeSet<String>,
    retry_interval: SimDuration,
}

impl GcsClient {
    /// Creates a client identifying itself as `member`.
    ///
    /// `token_base` reserves a timer-token namespace in the host process;
    /// the client uses only `token_base` itself.
    pub fn new(member: impl Into<String>, token_base: u64) -> Self {
        GcsClient {
            member: member.into(),
            token_base,
            state: ClientState::Idle,
            conn: None,
            splitter: GcsSplitter::new(),
            backlog: Vec::new(),
            joined: BTreeSet::new(),
            retry_interval: SimDuration::from_millis(10),
        }
    }

    /// This member's name.
    pub fn member(&self) -> &str {
        &self.member
    }

    /// `true` once attached and able to send.
    pub fn is_ready(&self) -> bool {
        self.state == ClientState::Ready
    }

    /// Groups currently joined (as requested; authoritative membership
    /// arrives via [`GcsDelivery::View`]).
    pub fn joined_groups(&self) -> impl Iterator<Item = &str> {
        self.joined.iter().map(String::as_str)
    }

    /// Connects to the daemon on the local node. Call from `on_start`.
    pub fn start(&mut self, sys: &mut dyn SysApi) {
        let addr = Addr::new(sys.my_node(), GCS_PORT);
        self.conn = Some(sys.connect(addr));
        self.state = ClientState::Connecting;
    }

    /// Joins `group` (queued until attached).
    pub fn join(&mut self, sys: &mut dyn SysApi, group: &str) {
        self.joined.insert(group.to_string());
        self.send(
            sys,
            GcsWire::Join {
                group: group.to_string(),
            },
        );
    }

    /// Leaves `group`.
    pub fn leave(&mut self, sys: &mut dyn SysApi, group: &str) {
        self.joined.remove(group);
        self.send(
            sys,
            GcsWire::Leave {
                group: group.to_string(),
            },
        );
    }

    /// Multicasts `payload` to `group` in total order. Open-group: works
    /// without having joined.
    pub fn multicast(&mut self, sys: &mut dyn SysApi, group: &str, payload: &[u8]) {
        self.send(
            sys,
            GcsWire::Multicast {
                group: group.to_string(),
                payload: payload.to_vec(),
            },
        );
    }

    fn send(&mut self, sys: &mut dyn SysApi, msg: GcsWire) {
        if self.state == ClientState::Ready {
            let conn = self.conn.expect("ready implies connected");
            let _ = sys.write(conn, &msg.encode());
        } else {
            self.backlog.push(msg);
        }
    }

    /// Offers an event to the client.
    ///
    /// Returns `None` when the event does not concern the GCS connection
    /// (the host should handle it); otherwise the deliveries it produced.
    pub fn handle_event(
        &mut self,
        sys: &mut dyn SysApi,
        event: &Event,
    ) -> Option<Vec<GcsDelivery>> {
        match event {
            Event::ConnEstablished { conn } if Some(*conn) == self.conn => {
                self.state = ClientState::Attaching;
                let _ = sys.write(
                    *conn,
                    &GcsWire::Attach {
                        member: self.member.clone(),
                    }
                    .encode(),
                );
                Some(Vec::new())
            }
            Event::ConnRefused { conn } if Some(*conn) == self.conn => {
                // Daemon not up yet (boot race): retry shortly.
                sys.set_timer(self.retry_interval, self.token_base);
                Some(Vec::new())
            }
            Event::TimerFired { token, .. } if *token == self.token_base => {
                match self.state {
                    ClientState::Connecting | ClientState::Idle => self.start(sys),
                    // The daemon died under us earlier: reconnect with a
                    // fresh frame splitter (the old stream's bytes are
                    // meaningless on a new connection).
                    ClientState::Lost => {
                        if let Some(conn) = self.conn.take() {
                            sys.close(conn);
                        }
                        self.splitter = GcsSplitter::new();
                        sys.count("gcs.client_reconnects", 1);
                        self.start(sys);
                    }
                    _ => {}
                }
                Some(Vec::new())
            }
            Event::DataReadable { conn } if Some(*conn) == self.conn => {
                let Ok(read) = sys.read(*conn, usize::MAX) else {
                    return Some(Vec::new());
                };
                self.splitter.push(&read.data);
                let mut out = Vec::new();
                loop {
                    match self.splitter.next_message() {
                        Ok(Some(msg)) => self.on_message(sys, msg, &mut out),
                        Ok(None) => break,
                        Err(e) => {
                            sys.count("gcs.client_protocol_error", 1);
                            sys.trace(&format!("corrupt stream from daemon: {e}"));
                            self.lose(sys, &mut out);
                            break;
                        }
                    }
                }
                Some(out)
            }
            Event::PeerClosed { conn } if Some(*conn) == self.conn => {
                let mut out = Vec::new();
                self.lose(sys, &mut out);
                Some(out)
            }
            _ => None,
        }
    }

    /// Marks the daemon connection dead and arms the reconnect timer.
    /// The host sees exactly one [`GcsDelivery::DaemonLost`]; a later
    /// [`GcsDelivery::Ready`] means the client re-attached (with its
    /// previous joins re-issued).
    fn lose(&mut self, sys: &mut dyn SysApi, out: &mut Vec<GcsDelivery>) {
        self.state = ClientState::Lost;
        sys.set_timer(self.retry_interval, self.token_base);
        out.push(GcsDelivery::DaemonLost);
    }

    fn on_message(&mut self, sys: &mut dyn SysApi, msg: GcsWire, out: &mut Vec<GcsDelivery>) {
        match msg {
            GcsWire::Attached => {
                self.state = ClientState::Ready;
                let conn = self.conn.expect("attached implies connected");
                // Re-issue every standing join first (after a reconnect
                // the daemon has forgotten us), then the backlog — minus
                // queued joins for those same groups, which would
                // otherwise be sent twice.
                for group in &self.joined {
                    let _ = sys.write(
                        conn,
                        &GcsWire::Join {
                            group: group.clone(),
                        }
                        .encode(),
                    );
                }
                for queued in std::mem::take(&mut self.backlog) {
                    if let GcsWire::Join { group } = &queued {
                        if self.joined.contains(group) {
                            continue;
                        }
                    }
                    let _ = sys.write(conn, &queued.encode());
                }
                out.push(GcsDelivery::Ready);
            }
            GcsWire::View {
                group,
                view_id,
                members,
            } => out.push(GcsDelivery::View {
                group,
                view_id,
                members,
            }),
            GcsWire::Deliver {
                group,
                sender,
                payload,
            } => out.push(GcsDelivery::Message {
                group,
                sender,
                payload,
            }),
            other @ (GcsWire::Attach { .. }
            | GcsWire::Join { .. }
            | GcsWire::Leave { .. }
            | GcsWire::Multicast { .. }
            | GcsWire::Hello { .. }
            | GcsWire::FwdJoin { .. }
            | GcsWire::FwdLeave { .. }
            | GcsWire::FwdMulticast { .. }
            | GcsWire::OrdView { .. }
            | GcsWire::OrdDeliver { .. }
            | GcsWire::Heartbeat { .. }) => {
                sys.count("gcs.client_protocol_error", 1);
                sys.trace(&format!("daemon sent unexpected {other:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_client_is_idle_and_remembers_member() {
        let c = GcsClient::new("replica-1", 100);
        assert_eq!(c.member(), "replica-1");
        assert!(!c.is_ready());
        assert_eq!(c.joined_groups().count(), 0);
    }
}
