//! The group-communication daemon (one per node, like a Spread daemon).
//!
//! Daemons accept local client connections on the well-known port
//! [`GCS_PORT`] and relay all operations to a fixed *sequencer* daemon that
//! assigns a single global sequence number to every membership change and
//! multicast, yielding totally-ordered delivery with virtual-synchrony-style
//! views.
//!
//! **Substitution note.** Spread uses a token-ring/hop protocol among
//! daemons; we use a star around a sequencer. What the paper relies on —
//! total order of messages and views, crash-triggered membership
//! notifications, and measurable inter-node daemon traffic (Figure 5) — is
//! preserved. Daemons themselves are assumed reliable, as in the paper
//! (only application replicas are fault-injected).
//!
//! Crash detection: when a client connection delivers EOF, the daemon
//! forwards a leave for every group the member had joined; the resulting
//! view change is exactly the "membership-change notification from Spread"
//! the MEAD Recovery Manager reacts to.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use simnet::{Addr, ConnId, Event, ListenerId, Port, Process, SimDuration, SysApi};

use crate::wire::{GcsSplitter, GcsWire};

/// The well-known daemon port (Spread's default).
pub const GCS_PORT: Port = Port(4803);

/// Accounting tag for inter-daemon (sequencer star) traffic — the paper's
/// Figure 5 "bandwidth between the servers".
pub const MESH_TAG: &str = "gcs.mesh";

/// Tuning knobs for the daemon.
#[derive(Clone, Debug)]
pub struct GcsConfig {
    /// CPU charged by the sequencer to order one operation.
    pub ordering_cpu: SimDuration,
    /// CPU charged by a daemon to route one delivery.
    pub routing_cpu: SimDuration,
    /// Retry interval while connecting to the sequencer at boot.
    pub retry_interval: SimDuration,
    /// Bounds of the uniform *membership agreement delay*: how long the
    /// sequencer deliberates before installing a view after a join or
    /// leave. Models Spread's token-ring membership consensus, which takes
    /// several milliseconds — the delay behind the paper's observation
    /// that a `NEEDS_ADDRESSING` query can arrive "before the
    /// group-membership message indicating the replica's crash had been
    /// received" (section 5.2.1). Ordinary multicasts are not delayed.
    pub membership_delay_min: SimDuration,
    /// Upper bound of the agreement delay.
    pub membership_delay_max: SimDuration,
    /// Interval of the daemon-to-daemon keep-alive token (models Spread's
    /// steady token-circulation traffic; part of the Figure 5 baseline
    /// bandwidth). Zero disables heartbeats.
    pub heartbeat_interval: SimDuration,
    /// Size of one heartbeat token on the wire.
    pub heartbeat_bytes: usize,
}

impl Default for GcsConfig {
    fn default() -> Self {
        GcsConfig {
            ordering_cpu: SimDuration::from_micros(15),
            routing_cpu: SimDuration::from_micros(8),
            retry_interval: SimDuration::from_millis(10),
            membership_delay_min: SimDuration::ZERO,
            membership_delay_max: SimDuration::from_micros(435),
            heartbeat_interval: SimDuration::from_millis(150),
            heartbeat_bytes: 64,
        }
    }
}

impl GcsConfig {
    /// A configuration with instantaneous membership agreement, for tests
    /// that assert on view timing.
    pub fn instant_membership() -> Self {
        GcsConfig {
            membership_delay_min: SimDuration::ZERO,
            membership_delay_max: SimDuration::ZERO,
            ..GcsConfig::default()
        }
    }
}

#[derive(Debug)]
enum ConnKind {
    /// Accepted, protocol not yet identified.
    Pending,
    /// A local client (application process) attached as `member`.
    Client {
        member: String,
        groups: BTreeSet<String>,
    },
    /// Another daemon (only ever seen at the sequencer).
    Peer { node: u32 },
}

#[derive(Debug)]
struct ConnState {
    kind: ConnKind,
    splitter: GcsSplitter,
}

#[derive(Debug, Default)]
struct GroupState {
    view_id: u64,
    /// Members in join order with their daemon's node index.
    members: Vec<(String, u32)>,
}

/// Sequencer-only state.
#[derive(Debug, Default)]
struct SequencerState {
    groups: BTreeMap<String, GroupState>,
    /// Daemon node index -> connection carrying the ordered stream.
    peers: BTreeMap<u32, ConnId>,
    global_seq: u64,
}

const TOKEN_RETRY: u64 = 1;
const TOKEN_HEARTBEAT: u64 = 2;
/// Timer-token base for delayed membership operations; the offset indexes
/// into `pending_membership`.
const TOKEN_MEMBERSHIP_BASE: u64 = 1000;

/// The daemon process. Spawn one on every node; pass the address of the
/// sequencer daemon (conventionally the one on the lowest-numbered node).
pub struct GcsDaemon {
    cfg: GcsConfig,
    sequencer: Addr,
    listener: Option<ListenerId>,
    conns: BTreeMap<ConnId, ConnState>,
    /// Upstream connection to the sequencer (None when we *are* it).
    up: Option<ConnId>,
    up_ready: bool,
    /// Queued forwards while the upstream connection establishes.
    up_backlog: Vec<GcsWire>,
    /// Local membership per group (intersection of the global view with
    /// locally attached members), for routing deliveries.
    local_groups: BTreeMap<String, BTreeSet<String>>,
    /// Member name -> client connection, for local delivery.
    local_members: BTreeMap<String, ConnId>,
    seq_state: Option<SequencerState>,
    /// Membership operations deliberating under the agreement delay,
    /// keyed by timer-token offset.
    pending_membership: BTreeMap<u64, GcsWire>,
    next_membership_token: u64,
}

impl GcsDaemon {
    /// Creates a daemon that will coordinate through the daemon at
    /// `sequencer` (possibly itself).
    pub fn new(sequencer: Addr, cfg: GcsConfig) -> Self {
        GcsDaemon {
            cfg,
            sequencer,
            listener: None,
            conns: BTreeMap::new(),
            up: None,
            up_ready: false,
            up_backlog: Vec::new(),
            local_groups: BTreeMap::new(),
            local_members: BTreeMap::new(),
            seq_state: None,
            pending_membership: BTreeMap::new(),
            next_membership_token: 0,
        }
    }

    fn is_sequencer(&self, sys: &dyn SysApi) -> bool {
        self.sequencer.node == sys.my_node() && self.sequencer.port == GCS_PORT
    }

    fn connect_up(&mut self, sys: &mut dyn SysApi) {
        let c = sys.connect(self.sequencer);
        sys.tag_conn(c, MESH_TAG);
        self.up = Some(c);
        self.up_ready = false;
    }

    /// Sends `msg` toward the sequencer: directly into our own sequencing
    /// logic when we are it, otherwise over the upstream connection.
    fn forward(&mut self, sys: &mut dyn SysApi, msg: GcsWire) {
        if self.seq_state.is_some() {
            self.sequence(sys, msg);
        } else if self.up_ready {
            let up = self.up.expect("ready implies connected");
            let _ = sys.write(up, &msg.encode());
        } else {
            self.up_backlog.push(msg);
        }
    }

    /// Entry point for forwarded operations at the sequencer: multicasts
    /// are ordered immediately; membership changes first deliberate for
    /// the agreement delay (see [`GcsConfig`]).
    fn sequence(&mut self, sys: &mut dyn SysApi, msg: GcsWire) {
        if matches!(msg, GcsWire::FwdJoin { .. } | GcsWire::FwdLeave { .. })
            && !self.cfg.membership_delay_max.is_zero()
        {
            let min = self.cfg.membership_delay_min.as_nanos();
            let max = self.cfg.membership_delay_max.as_nanos().max(min);
            let delay = SimDuration::from_nanos(if max > min {
                sys.rng().gen_range(min..=max)
            } else {
                min
            });
            let token = TOKEN_MEMBERSHIP_BASE + self.next_membership_token;
            self.next_membership_token += 1;
            self.pending_membership.insert(token, msg);
            sys.set_timer(delay, token);
            return;
        }
        self.sequence_now(sys, msg);
    }

    /// Sequencer logic: assign a global sequence number and broadcast the
    /// resulting ordered operation to every daemon (including ourselves).
    fn sequence_now(&mut self, sys: &mut dyn SysApi, msg: GcsWire) {
        sys.charge_cpu(self.cfg.ordering_cpu);
        let state = self.seq_state.as_mut().expect("sequencer state");
        // Each arm yields the ordered operation plus the group it targets,
        // so routing below needs no second (wildcard-bearing) match.
        let (ord, group_name) = match msg {
            GcsWire::FwdJoin {
                group,
                member,
                daemon,
            } => {
                let g = state.groups.entry(group.clone()).or_default();
                if g.members.iter().any(|(m, _)| *m == member) {
                    return; // duplicate join: idempotent
                }
                g.members.push((member, daemon));
                g.view_id += 1;
                state.global_seq += 1;
                let ord = GcsWire::OrdView {
                    seq: state.global_seq,
                    group: group.clone(),
                    view_id: g.view_id,
                    members: g.members.iter().map(|(m, _)| m.clone()).collect(),
                };
                (ord, group)
            }
            GcsWire::FwdLeave { group, member } => {
                let Some(g) = state.groups.get_mut(&group) else {
                    return;
                };
                let before = g.members.len();
                g.members.retain(|(m, _)| *m != member);
                if g.members.len() == before {
                    return; // unknown member: idempotent
                }
                g.view_id += 1;
                state.global_seq += 1;
                let ord = GcsWire::OrdView {
                    seq: state.global_seq,
                    group: group.clone(),
                    view_id: g.view_id,
                    members: g.members.iter().map(|(m, _)| m.clone()).collect(),
                };
                (ord, group)
            }
            GcsWire::FwdMulticast {
                group,
                sender,
                payload,
            } => {
                state.global_seq += 1;
                let ord = GcsWire::OrdDeliver {
                    seq: state.global_seq,
                    group: group.clone(),
                    sender,
                    payload,
                };
                (ord, group)
            }
            other @ (GcsWire::Attach { .. }
            | GcsWire::Join { .. }
            | GcsWire::Leave { .. }
            | GcsWire::Multicast { .. }
            | GcsWire::Attached
            | GcsWire::View { .. }
            | GcsWire::Deliver { .. }
            | GcsWire::Hello { .. }
            | GcsWire::OrdView { .. }
            | GcsWire::OrdDeliver { .. }
            | GcsWire::Heartbeat { .. }) => {
                sys.count("gcs.protocol_error", 1);
                sys.trace(&format!("sequencer ignoring unexpected {other:?}"));
                return;
            }
        };
        let encoded = ord.encode();
        // Spread-like routing: ship the ordered operation only to daemons
        // that host members of the group (the sequencer tracks membership,
        // so it knows). This keeps the Figure 5 mesh-bandwidth measurement
        // honest.
        let state = self.seq_state.as_ref().expect("sequencer state");
        let member_daemons: std::collections::BTreeSet<u32> = state
            .groups
            .get(&group_name)
            .map(|g| g.members.iter().map(|(_, d)| *d).collect())
            .unwrap_or_default();
        let peer_conns: Vec<ConnId> = state
            .peers
            .iter()
            .filter(|(node, _)| member_daemons.contains(node))
            .map(|(_, conn)| *conn)
            .collect();
        for conn in peer_conns {
            let _ = sys.write(conn, &encoded);
        }
        // Deliver to our own local members without a network hop.
        self.handle_ordered(sys, ord);
    }

    /// Applies an ordered operation locally: updates local membership and
    /// forwards deliveries/views to locally attached members.
    fn handle_ordered(&mut self, sys: &mut dyn SysApi, ord: GcsWire) {
        sys.charge_cpu(self.cfg.routing_cpu);
        match ord {
            GcsWire::OrdView {
                group,
                view_id,
                members,
                ..
            } => {
                let local: BTreeSet<String> = members
                    .iter()
                    .filter(|m| self.local_members.contains_key(*m))
                    .cloned()
                    .collect();
                // Members removed from the view must also hear about it if
                // they are still attached locally (they may have crashed, in
                // which case the connection is already gone).
                let previously: BTreeSet<String> =
                    self.local_groups.get(&group).cloned().unwrap_or_default();
                let recipients: BTreeSet<String> = local.union(&previously).cloned().collect();
                if local.is_empty() {
                    self.local_groups.remove(&group);
                } else {
                    self.local_groups.insert(group.clone(), local);
                }
                let msg = GcsWire::View {
                    group,
                    view_id,
                    members,
                };
                let encoded = msg.encode();
                for member in recipients {
                    if let Some(&conn) = self.local_members.get(&member) {
                        let _ = sys.write(conn, &encoded);
                    }
                }
            }
            GcsWire::OrdDeliver {
                group,
                sender,
                payload,
                ..
            } => {
                let Some(local) = self.local_groups.get(&group) else {
                    return;
                };
                let msg = GcsWire::Deliver {
                    group,
                    sender,
                    payload,
                };
                let encoded = msg.encode();
                for member in local {
                    if let Some(&conn) = self.local_members.get(member) {
                        let _ = sys.write(conn, &encoded);
                    }
                }
            }
            other @ (GcsWire::Attach { .. }
            | GcsWire::Join { .. }
            | GcsWire::Leave { .. }
            | GcsWire::Multicast { .. }
            | GcsWire::Attached
            | GcsWire::View { .. }
            | GcsWire::Deliver { .. }
            | GcsWire::Hello { .. }
            | GcsWire::FwdJoin { .. }
            | GcsWire::FwdLeave { .. }
            | GcsWire::FwdMulticast { .. }
            | GcsWire::Heartbeat { .. }) => {
                sys.count("gcs.protocol_error", 1);
                sys.trace(&format!("daemon ignoring unexpected ordered {other:?}"));
            }
        }
    }

    /// Processes one message arriving on `conn`.
    fn handle_message(&mut self, sys: &mut dyn SysApi, conn: ConnId, msg: GcsWire) {
        let kind_is_pending = matches!(
            self.conns.get(&conn).map(|c| &c.kind),
            Some(ConnKind::Pending)
        );
        if kind_is_pending {
            match msg {
                GcsWire::Attach { member } => {
                    self.local_members.insert(member.clone(), conn);
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.kind = ConnKind::Client {
                            member,
                            groups: BTreeSet::new(),
                        };
                    }
                    let _ = sys.write(conn, &GcsWire::Attached.encode());
                }
                GcsWire::Hello { node } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.kind = ConnKind::Peer { node };
                    }
                    sys.tag_conn(conn, MESH_TAG);
                    if let Some(seq) = self.seq_state.as_mut() {
                        seq.peers.insert(node, conn);
                    } else {
                        sys.count("gcs.protocol_error", 1);
                    }
                }
                other @ (GcsWire::Join { .. }
                | GcsWire::Leave { .. }
                | GcsWire::Multicast { .. }
                | GcsWire::Attached
                | GcsWire::View { .. }
                | GcsWire::Deliver { .. }
                | GcsWire::FwdJoin { .. }
                | GcsWire::FwdLeave { .. }
                | GcsWire::FwdMulticast { .. }
                | GcsWire::OrdView { .. }
                | GcsWire::OrdDeliver { .. }
                | GcsWire::Heartbeat { .. }) => {
                    sys.count("gcs.protocol_error", 1);
                    sys.trace(&format!("unidentified conn sent {other:?}"));
                    sys.close(conn);
                    self.conns.remove(&conn);
                }
            }
            return;
        }
        let kind = self.conns.get(&conn).map(|c| match &c.kind {
            ConnKind::Client { member, .. } => (true, member.clone()),
            ConnKind::Peer { .. } => (false, String::new()),
            ConnKind::Pending => unreachable!("handled above"),
        });
        let Some((is_client, member)) = kind else {
            return;
        };
        if is_client {
            match msg {
                GcsWire::Join { group } => {
                    if let Some(ConnState {
                        kind: ConnKind::Client { groups, .. },
                        ..
                    }) = self.conns.get_mut(&conn)
                    {
                        groups.insert(group.clone());
                    }
                    let daemon = sys.my_node().index();
                    self.forward(
                        sys,
                        GcsWire::FwdJoin {
                            group,
                            member,
                            daemon,
                        },
                    );
                }
                GcsWire::Leave { group } => {
                    if let Some(ConnState {
                        kind: ConnKind::Client { groups, .. },
                        ..
                    }) = self.conns.get_mut(&conn)
                    {
                        groups.remove(&group);
                    }
                    self.forward(sys, GcsWire::FwdLeave { group, member });
                }
                GcsWire::Multicast { group, payload } => {
                    self.forward(
                        sys,
                        GcsWire::FwdMulticast {
                            group,
                            sender: member,
                            payload,
                        },
                    );
                }
                other @ (GcsWire::Attach { .. }
                | GcsWire::Attached
                | GcsWire::View { .. }
                | GcsWire::Deliver { .. }
                | GcsWire::Hello { .. }
                | GcsWire::FwdJoin { .. }
                | GcsWire::FwdLeave { .. }
                | GcsWire::FwdMulticast { .. }
                | GcsWire::OrdView { .. }
                | GcsWire::OrdDeliver { .. }
                | GcsWire::Heartbeat { .. }) => {
                    sys.count("gcs.protocol_error", 1);
                    sys.trace(&format!("client sent unexpected {other:?}"));
                }
            }
        } else {
            // Peer daemon traffic: at the sequencer these are forwards; at
            // an ordinary daemon these are ordered operations coming back.
            match msg {
                fwd @ (GcsWire::FwdJoin { .. }
                | GcsWire::FwdLeave { .. }
                | GcsWire::FwdMulticast { .. }) => {
                    if self.seq_state.is_some() {
                        self.sequence(sys, fwd);
                    } else {
                        sys.count("gcs.protocol_error", 1);
                    }
                }
                ord @ (GcsWire::OrdView { .. } | GcsWire::OrdDeliver { .. }) => {
                    self.handle_ordered(sys, ord)
                }
                GcsWire::Heartbeat { pad } => {
                    // Echo the token back (one circulation leg each way),
                    // but only from the sequencer to avoid ping-pong.
                    if self.seq_state.is_some() {
                        let _ = sys.write(conn, &GcsWire::Heartbeat { pad }.encode());
                    }
                }
                other @ (GcsWire::Attach { .. }
                | GcsWire::Join { .. }
                | GcsWire::Leave { .. }
                | GcsWire::Multicast { .. }
                | GcsWire::Attached
                | GcsWire::View { .. }
                | GcsWire::Deliver { .. }
                | GcsWire::Hello { .. }) => {
                    sys.count("gcs.protocol_error", 1);
                    sys.trace(&format!("peer sent unexpected {other:?}"));
                }
            }
        }
    }

    /// Handles a client connection disappearing: forwards crash-leaves for
    /// every group the member had joined — the paper's crash-triggered
    /// membership notification.
    fn handle_conn_gone(&mut self, sys: &mut dyn SysApi, conn: ConnId) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        match state.kind {
            ConnKind::Client { member, groups } => {
                self.local_members.remove(&member);
                for set in self.local_groups.values_mut() {
                    set.remove(&member);
                }
                self.local_groups.retain(|_, s| !s.is_empty());
                for group in groups {
                    sys.count("gcs.crash_leave", 1);
                    self.forward(
                        sys,
                        GcsWire::FwdLeave {
                            group,
                            member: member.clone(),
                        },
                    );
                }
            }
            ConnKind::Peer { node } => {
                if let Some(seq) = self.seq_state.as_mut() {
                    seq.peers.remove(&node);
                }
                // A daemon vanishing means its whole node is gone (node
                // crash fault): every member it hosted leaves, exactly as
                // Spread's node-level membership reports.
                if self.seq_state.is_some() {
                    let orphans: Vec<(String, String)> = self
                        .seq_state
                        .as_ref()
                        .expect("sequencer state")
                        .groups
                        .iter()
                        .flat_map(|(g, gs)| {
                            gs.members
                                .iter()
                                .filter(|(_, d)| *d == node)
                                .map(|(m, _)| (g.clone(), m.clone()))
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    for (group, member) in orphans {
                        sys.count("gcs.node_crash_leave", 1);
                        self.sequence(sys, GcsWire::FwdLeave { group, member });
                    }
                }
            }
            ConnKind::Pending => {}
        }
        sys.close(conn);
    }
}

impl Process for GcsDaemon {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.listener = Some(sys.listen(GCS_PORT).expect("GCS port free on this node"));
        if self.is_sequencer(sys) {
            self.seq_state = Some(SequencerState::default());
        } else {
            self.connect_up(sys);
        }
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event) {
        match event {
            Event::Accepted { conn, .. } => {
                self.conns.insert(
                    conn,
                    ConnState {
                        kind: ConnKind::Pending,
                        splitter: GcsSplitter::new(),
                    },
                );
            }
            Event::ConnEstablished { conn } if Some(conn) == self.up => {
                self.up_ready = true;
                let node = sys.my_node().index();
                let _ = sys.write(conn, &GcsWire::Hello { node }.encode());
                if !self.cfg.heartbeat_interval.is_zero() {
                    sys.set_timer(self.cfg.heartbeat_interval, TOKEN_HEARTBEAT);
                }
                for msg in std::mem::take(&mut self.up_backlog) {
                    let _ = sys.write(conn, &msg.encode());
                }
                // The upstream connection also carries the ordered stream
                // back to us; track it like a peer connection.
                self.conns.insert(
                    conn,
                    ConnState {
                        kind: ConnKind::Peer { node: u32::MAX },
                        splitter: GcsSplitter::new(),
                    },
                );
            }
            Event::ConnRefused { conn } if Some(conn) == self.up => {
                // Sequencer daemon not up yet: retry shortly.
                sys.set_timer(self.cfg.retry_interval, TOKEN_RETRY);
            }
            Event::TimerFired {
                token: TOKEN_RETRY, ..
            } if !self.up_ready => {
                self.connect_up(sys);
            }
            Event::TimerFired {
                token: TOKEN_HEARTBEAT,
                ..
            } if self.up_ready => {
                let up = self.up.expect("ready implies connected");
                let pad = vec![0u8; self.cfg.heartbeat_bytes];
                let _ = sys.write(up, &GcsWire::Heartbeat { pad }.encode());
                sys.set_timer(self.cfg.heartbeat_interval, TOKEN_HEARTBEAT);
            }
            Event::TimerFired { token, .. } if token >= TOKEN_MEMBERSHIP_BASE => {
                if let Some(op) = self.pending_membership.remove(&token) {
                    self.sequence_now(sys, op);
                }
            }
            Event::DataReadable { conn } => {
                let Some(state) = self.conns.get_mut(&conn) else {
                    return;
                };
                let Ok(read) = sys.read(conn, usize::MAX) else {
                    return;
                };
                state.splitter.push(&read.data);
                while let Some(state) = self.conns.get_mut(&conn) {
                    match state.splitter.next_message() {
                        Ok(Some(msg)) => self.handle_message(sys, conn, msg),
                        Ok(None) => break,
                        Err(e) => {
                            sys.count("gcs.protocol_error", 1);
                            sys.trace(&format!("corrupt gcs stream: {e}"));
                            self.handle_conn_gone(sys, conn);
                            break;
                        }
                    }
                }
            }
            Event::PeerClosed { conn } => self.handle_conn_gone(sys, conn),
            _ => {}
        }
    }

    fn label(&self) -> &str {
        "gcs-daemon"
    }
}
