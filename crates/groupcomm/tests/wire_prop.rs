//! Property tests for the group-communication wire format.

use proptest::prelude::*;

use groupcomm::{GcsSplitter, GcsWire};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/_.-]{1,40}"
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..200)
}

fn arb_members() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_name(), 0..8)
}

fn arb_msg() -> impl Strategy<Value = GcsWire> {
    prop_oneof![
        arb_name().prop_map(|member| GcsWire::Attach { member }),
        arb_name().prop_map(|group| GcsWire::Join { group }),
        arb_name().prop_map(|group| GcsWire::Leave { group }),
        (arb_name(), arb_payload())
            .prop_map(|(group, payload)| GcsWire::Multicast { group, payload }),
        Just(GcsWire::Attached),
        (arb_name(), any::<u64>(), arb_members()).prop_map(|(group, view_id, members)| {
            GcsWire::View {
                group,
                view_id,
                members,
            }
        }),
        (arb_name(), arb_name(), arb_payload()).prop_map(|(group, sender, payload)| {
            GcsWire::Deliver {
                group,
                sender,
                payload,
            }
        }),
        any::<u32>().prop_map(|node| GcsWire::Hello { node }),
        (arb_name(), arb_name(), any::<u32>()).prop_map(|(group, member, daemon)| {
            GcsWire::FwdJoin {
                group,
                member,
                daemon,
            }
        }),
        (arb_name(), arb_name()).prop_map(|(group, member)| GcsWire::FwdLeave { group, member }),
        (arb_name(), arb_name(), arb_payload()).prop_map(|(group, sender, payload)| {
            GcsWire::FwdMulticast {
                group,
                sender,
                payload,
            }
        }),
        (any::<u64>(), arb_name(), any::<u64>(), arb_members()).prop_map(
            |(seq, group, view_id, members)| GcsWire::OrdView {
                seq,
                group,
                view_id,
                members
            }
        ),
        (any::<u64>(), arb_name(), arb_name(), arb_payload()).prop_map(
            |(seq, group, sender, payload)| GcsWire::OrdDeliver {
                seq,
                group,
                sender,
                payload
            }
        ),
        prop::collection::vec(any::<u8>(), 0..128).prop_map(|pad| GcsWire::Heartbeat { pad }),
    ]
}

proptest! {
    #[test]
    fn every_message_roundtrips(msg in arb_msg()) {
        let framed = msg.encode();
        let mut s = GcsSplitter::new();
        s.push(&framed);
        prop_assert_eq!(s.next_message().expect("decodes").expect("complete"), msg);
    }

    #[test]
    fn splitter_reassembles_under_arbitrary_chunking(
        msgs in prop::collection::vec(arb_msg(), 1..8),
        chunks in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode());
        }
        let mut s = GcsSplitter::new();
        let mut got = Vec::new();
        let mut offset = 0;
        let mut it = chunks.iter().cycle();
        while offset < stream.len() {
            let n = (*it.next().expect("cycle")).min(stream.len() - offset);
            s.push(&stream[offset..offset + n]);
            offset += n;
            while let Some(m) = s.next_message().expect("valid stream") {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn decoder_never_panics_on_noise(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = GcsWire::decode(&bytes);
        let mut s = GcsSplitter::new();
        s.push(&bytes);
        // Either a message, None (incomplete) or a decode error — no panic.
        while let Ok(Some(_)) = s.next_message() {}
    }
}
