//! End-to-end tests of the group-communication system on the simulated
//! network: total order, membership views, crash detection, open-group
//! multicast, and bandwidth accounting.

use std::cell::RefCell;
use std::rc::Rc;

use groupcomm::{GcsClient, GcsConfig, GcsDaemon, GcsDelivery, GCS_PORT, MESH_TAG};
use simnet::*;

/// A scripted GCS member: joins groups, multicasts on a timer, records all
/// deliveries.
struct Member {
    gcs: GcsClient,
    join: Vec<String>,
    /// (delay, group, payload) multicasts to send after becoming ready.
    sends: Vec<(SimDuration, String, Vec<u8>)>,
    deliveries: Rc<RefCell<Vec<(String, GcsDelivery)>>>,
    /// Crash this long after start, if set.
    crash_after: Option<SimDuration>,
    name: String,
}

const TOKEN_SEND: u64 = 50;
const TOKEN_CRASH: u64 = 60;

impl Member {
    fn new(name: &str, join: &[&str], deliveries: Rc<RefCell<Vec<(String, GcsDelivery)>>>) -> Self {
        Member {
            gcs: GcsClient::new(name, 100),
            join: join.iter().map(|s| s.to_string()).collect(),
            sends: Vec::new(),
            deliveries,
            crash_after: None,
            name: name.to_string(),
        }
    }
}

impl Process for Member {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.gcs.start(sys);
        for g in self.join.clone() {
            self.gcs.join(sys, &g);
        }
        for (i, (delay, _, _)) in self.sends.iter().enumerate() {
            sys.set_timer(*delay, TOKEN_SEND + i as u64);
        }
        if let Some(d) = self.crash_after {
            sys.set_timer(d, TOKEN_CRASH);
        }
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        if let Event::TimerFired { token, .. } = ev {
            if token == TOKEN_CRASH {
                sys.exit(ExitReason::Crash("scripted crash".into()));
                return;
            }
            if token >= TOKEN_SEND && token < TOKEN_SEND + self.sends.len() as u64 {
                let (_, group, payload) = self.sends[(token - TOKEN_SEND) as usize].clone();
                self.gcs.multicast(sys, &group, &payload);
                return;
            }
        }
        if let Some(deliveries) = self.gcs.handle_event(sys, &ev) {
            let mut log = self.deliveries.borrow_mut();
            for d in deliveries {
                log.push((self.name.clone(), d));
            }
        }
    }

    fn label(&self) -> &str {
        &self.name
    }
}

struct Cluster {
    sim: Simulation,
    nodes: Vec<NodeId>,
}

fn cluster(n_nodes: usize, seed: u64) -> Cluster {
    let mut sim = Simulation::new(SimConfig {
        seed,
        noise: NoiseModel::none(),
        ..SimConfig::default()
    });
    let nodes: Vec<NodeId> = (0..n_nodes)
        .map(|i| sim.add_node(&format!("node{i}")))
        .collect();
    let seq_addr = Addr::new(nodes[0], GCS_PORT);
    for &node in &nodes {
        sim.spawn(
            node,
            "gcs-daemon",
            Box::new(GcsDaemon::new(seq_addr, GcsConfig::default())),
        );
    }
    Cluster { sim, nodes }
}

fn views_of<'a>(
    log: &'a [(String, GcsDelivery)],
    who: &'a str,
    group: &'a str,
) -> Vec<&'a Vec<String>> {
    log.iter()
        .filter_map(move |(n, d)| match d {
            GcsDelivery::View {
                group: g, members, ..
            } if n == who && g == group => Some(members),
            _ => None,
        })
        .collect()
}

fn messages_of<'a>(
    log: &'a [(String, GcsDelivery)],
    who: &'a str,
    group: &'a str,
) -> Vec<(&'a str, &'a [u8])> {
    log.iter()
        .filter_map(move |(n, d)| match d {
            GcsDelivery::Message {
                group: g,
                sender,
                payload,
            } if n == who && g == group => Some((sender.as_str(), payload.as_slice())),
            _ => None,
        })
        .collect()
}

#[test]
fn members_join_and_see_each_other_in_views() {
    let Cluster { mut sim, nodes } = cluster(3, 1);
    let log = Rc::new(RefCell::new(Vec::new()));
    for (i, &node) in nodes.iter().enumerate() {
        sim.spawn(
            node,
            "member",
            Box::new(Member::new(&format!("m{i}"), &["servers"], log.clone())),
        );
    }
    sim.run_until(SimTime::from_secs(2));
    let log = log.borrow();
    // The last view every member saw must contain all three members, and
    // all members must agree on the member order (total order of joins —
    // whatever order the sequencer picked).
    let mut finals = Vec::new();
    for who in ["m0", "m1", "m2"] {
        let views = views_of(&log, who, "servers");
        assert!(!views.is_empty(), "{who} saw no views");
        let last = (*views.last().expect("nonempty")).clone();
        let mut sorted = last.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec!["m0".to_string(), "m1".into(), "m2".into()],
            "{who} final view must contain all members"
        );
        finals.push(last);
    }
    assert_eq!(finals[0], finals[1], "members disagree on view order");
    assert_eq!(finals[1], finals[2], "members disagree on view order");
}

#[test]
fn multicast_is_delivered_to_all_members_in_identical_total_order() {
    let Cluster { mut sim, nodes } = cluster(3, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    for (i, &node) in nodes.iter().enumerate() {
        let mut m = Member::new(&format!("m{i}"), &["g"], log.clone());
        // All three blast concurrently; ordering must still agree.
        for k in 0..5u8 {
            m.sends.push((
                SimDuration::from_millis(100 + k as u64),
                "g".into(),
                vec![i as u8, k],
            ));
        }
        sim.spawn(node, "member", Box::new(m));
    }
    sim.run_until(SimTime::from_secs(2));
    let log = log.borrow();
    let orders: Vec<Vec<(String, Vec<u8>)>> = ["m0", "m1", "m2"]
        .iter()
        .map(|who| {
            messages_of(&log, who, "g")
                .into_iter()
                .map(|(s, p)| (s.to_string(), p.to_vec()))
                .collect()
        })
        .collect();
    assert_eq!(orders[0].len(), 15, "all 15 messages delivered");
    assert_eq!(orders[0], orders[1], "m0 and m1 disagree on total order");
    assert_eq!(orders[1], orders[2], "m1 and m2 disagree on total order");
}

#[test]
fn sender_receives_its_own_multicast_in_order() {
    let Cluster { mut sim, nodes } = cluster(2, 3);
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut m = Member::new("solo", &["g"], log.clone());
    m.sends
        .push((SimDuration::from_millis(100), "g".into(), vec![1]));
    sim.spawn(nodes[1], "member", Box::new(m));
    sim.run_until(SimTime::from_secs(1));
    let log = log.borrow();
    assert_eq!(messages_of(&log, "solo", "g"), vec![("solo", &[1u8][..])]);
}

#[test]
fn crash_triggers_view_change_without_the_dead_member() {
    let Cluster { mut sim, nodes } = cluster(3, 4);
    let log = Rc::new(RefCell::new(Vec::new()));
    for (i, &node) in nodes.iter().enumerate() {
        let mut m = Member::new(&format!("m{i}"), &["servers"], log.clone());
        if i == 0 {
            m.crash_after = Some(SimDuration::from_millis(500));
        }
        sim.spawn(node, "member", Box::new(m));
    }
    sim.run_until(SimTime::from_secs(2));
    let log = log.borrow();
    let mut finals = Vec::new();
    for who in ["m1", "m2"] {
        let views = views_of(&log, who, "servers");
        let last = (*views.last().expect("views seen")).clone();
        let mut sorted = last.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec!["m1".to_string(), "m2".into()],
            "{who} must see a post-crash view excluding m0"
        );
        finals.push(last);
    }
    assert_eq!(finals[0], finals[1], "survivors disagree on view order");
}

#[test]
fn open_group_multicast_reaches_members_from_non_member() {
    let Cluster { mut sim, nodes } = cluster(2, 5);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        nodes[0],
        "member",
        Box::new(Member::new("insider", &["g"], log.clone())),
    );
    let mut outsider = Member::new("outsider", &[], log.clone());
    outsider
        .sends
        .push((SimDuration::from_millis(300), "g".into(), b"query".to_vec()));
    sim.spawn(nodes[1], "member", Box::new(outsider));
    sim.run_until(SimTime::from_secs(1));
    let log = log.borrow();
    assert_eq!(
        messages_of(&log, "insider", "g"),
        vec![("outsider", &b"query"[..])]
    );
    // The outsider is not a member and must NOT receive the delivery.
    assert!(messages_of(&log, "outsider", "g").is_empty());
}

#[test]
fn voluntary_leave_produces_view_change() {
    struct Leaver {
        gcs: GcsClient,
        log: Rc<RefCell<Vec<(String, GcsDelivery)>>>,
    }
    impl Process for Leaver {
        fn on_start(&mut self, sys: &mut dyn SysApi) {
            self.gcs.start(sys);
            self.gcs.join(sys, "g");
            sys.set_timer(SimDuration::from_millis(400), 7);
        }
        fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
            if let Event::TimerFired { token: 7, .. } = ev {
                self.gcs.leave(sys, "g");
                return;
            }
            if let Some(ds) = self.gcs.handle_event(sys, &ev) {
                let mut log = self.log.borrow_mut();
                for d in ds {
                    log.push(("leaver".into(), d));
                }
            }
        }
    }
    let Cluster { mut sim, nodes } = cluster(2, 6);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        nodes[0],
        "member",
        Box::new(Member::new("stayer", &["g"], log.clone())),
    );
    sim.spawn(
        nodes[1],
        "leaver",
        Box::new(Leaver {
            gcs: GcsClient::new("leaver", 100),
            log: log.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(1));
    let log = log.borrow();
    let views = views_of(&log, "stayer", "g");
    let last = views.last().expect("views seen");
    assert_eq!(**last, vec!["stayer".to_string()]);
}

#[test]
fn mesh_traffic_is_accounted() {
    let Cluster { mut sim, nodes } = cluster(3, 7);
    let log = Rc::new(RefCell::new(Vec::new()));
    for (i, &node) in nodes.iter().enumerate() {
        let mut m = Member::new(&format!("m{i}"), &["g"], log.clone());
        m.sends
            .push((SimDuration::from_millis(200), "g".into(), vec![0u8; 100]));
        sim.spawn(node, "member", Box::new(m));
    }
    sim.run_until(SimTime::from_secs(1));
    let mesh = sim.with_metrics(|m| m.total_bytes(MESH_TAG));
    assert!(
        mesh > 300,
        "inter-daemon traffic should include forwarded+ordered multicasts, got {mesh}"
    );
}

#[test]
fn boot_race_client_before_daemon_retries_and_attaches() {
    // Client process spawns on a node whose daemon starts later.
    let mut sim = Simulation::new(SimConfig {
        seed: 8,
        noise: NoiseModel::none(),
        ..SimConfig::default()
    });
    let n0 = sim.add_node("node0");
    let n1 = sim.add_node("node1");
    let log = Rc::new(RefCell::new(Vec::new()));
    // Spawn the member first: its connect will be refused, then retried.
    sim.spawn(
        n1,
        "member",
        Box::new(Member::new("early", &["g"], log.clone())),
    );
    let seq_addr = Addr::new(n0, GCS_PORT);
    sim.run_until(SimTime::from_millis(120));
    for node in [n0, n1] {
        sim.spawn(
            node,
            "gcs-daemon",
            Box::new(GcsDaemon::new(seq_addr, GcsConfig::default())),
        );
    }
    sim.run_until(SimTime::from_secs(2));
    let log = log.borrow();
    assert!(
        log.iter().any(|(_, d)| matches!(d, GcsDelivery::Ready)),
        "client must eventually attach despite boot race"
    );
    let views = views_of(&log, "early", "g");
    assert!(!views.is_empty(), "and receive its join view");
}

#[test]
fn deterministic_delivery_order_across_runs() {
    let run = |seed: u64| -> Vec<(String, String)> {
        let Cluster { mut sim, nodes } = cluster(3, seed);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (i, &node) in nodes.iter().enumerate() {
            let mut m = Member::new(&format!("m{i}"), &["g"], log.clone());
            for k in 0..3u8 {
                m.sends.push((
                    SimDuration::from_millis(100 + k as u64 * 10),
                    "g".into(),
                    vec![i as u8, k],
                ));
            }
            sim.spawn(node, "member", Box::new(m));
        }
        sim.run_until(SimTime::from_secs(2));
        let log = log.borrow();
        log.iter()
            .filter_map(|(n, d)| match d {
                GcsDelivery::Message {
                    sender, payload, ..
                } => Some((n.clone(), format!("{sender}:{payload:?}"))),
                _ => None,
            })
            .collect()
    };
    assert_eq!(run(99), run(99));
}
