//! # mead — the paper's contribution: transparent proactive recovery
//!
//! Implements the proactive dependability framework of *Proactive Recovery
//! in Distributed CORBA Applications* (Pertet & Narasimhan, DSN 2004):
//!
//! * [`ServerInterceptor`] — the MEAD Interceptor + Proactive
//!   Fault-Tolerance Manager wrapped around an unmodified server process:
//!   socket classification, the injected memory leak, two-step threshold
//!   monitoring on the write path, replica adverts over group
//!   communication, and the server side of the three proactive schemes;
//! * [`ClientInterceptor`] — MEAD-frame stripping, `dup2()`-style
//!   connection redirection, EOF suppression + group address query for the
//!   `NEEDS_ADDRESSING_MODE` scheme;
//! * [`RecoveryManager`] — launches replacement replicas on membership
//!   changes and proactive fault notifications;
//! * [`ReplicaApp`] — the unmodified replicated time-of-day server;
//! * [`RecoveryScheme`]/[`MeadConfig`]/[`CostModel`] — the five strategies
//!   of Table 1 with the calibrated interceptor cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod directory;
mod intercept;
mod messages;
mod recovery;
mod replica;

pub use config::{CostModel, MeadConfig, MeadConfigBuilder, RecoveryScheme};
pub use directory::{
    replica_member_name, slot_of_member, MemberName, ReplicaDirectory, Slot, REPLICA_PREFIX,
};
pub use intercept::client::ClientInterceptor;
pub use intercept::server::{CaptureFn, RestoreFn, ServerInterceptor, StateHooks};
pub use intercept::tokens;
pub use messages::{FailoverNotice, GroupMsg};
pub use obs::{CodecError, WireCodec};
pub use recovery::{RecoveryManager, ReplicaFactory, ReplicaSpec};
pub use replica::{time_object_key, ReplicaApp};

// Host-name mapping helpers shared with the ORB layer.
pub use orb::{host_of, node_of};
