//! Shared interceptor plumbing: staged streams and timer-token namespaces.
//!
//! The interceptor sits between the kernel and the application process the
//! way the paper's `LD_PRELOAD` library sits between libc and the ORB: it
//! sees every read and write first. Incoming bytes are drained from the
//! real connection into a per-stream [`giop::FrameSplitter`]; control
//! frames are consumed, application frames are re-staged byte-identically
//! for the application's own `read()` to pick up.

use bytes::Bytes;
use giop::{Frame, FrameSplitter, GiopError};
use simnet::{ConnId, ReadOutcome, RecvQueue};

/// Timer tokens at or above this value belong to the interceptor (and its
/// embedded GCS client); application code must keep its tokens below.
pub const TOKEN_BASE: u64 = 1 << 62;
/// GCS client retry timer.
pub const TOKEN_GCS: u64 = TOKEN_BASE;
/// Memory-leak step timer (150 ms).
pub const TOKEN_LEAK: u64 = TOKEN_BASE + 1;
/// Post-migration drain timer.
pub const TOKEN_DRAIN: u64 = TOKEN_BASE + 2;
/// Warm-passive checkpoint timer.
pub const TOKEN_CHECKPOINT: u64 = TOKEN_BASE + 3;
/// Address-query timeout timer (client side, 10 ms).
pub const TOKEN_QUERY_TIMEOUT: u64 = TOKEN_BASE + 4;
/// Resource-pressure activation timer (fires once at `activate_at`).
pub const TOKEN_PRESSURE_ARM: u64 = TOKEN_BASE + 5;
/// CPU-exhaustion ramp tick timer.
pub const TOKEN_PRESSURE_TICK: u64 = TOKEN_BASE + 6;
/// Base for redirect-completion timers (client side); offsets index the
/// interceptor's `finishing` table.
pub const TOKEN_REDIRECT_DONE_BASE: u64 = TOKEN_BASE + 1000;

/// `true` when a timer token belongs to interceptor infrastructure.
pub fn is_intercept_token(token: u64) -> bool {
    token >= TOKEN_BASE
}

/// One intercepted byte stream, identified to the application by its
/// original connection id even if the interceptor has since redirected it
/// (`dup2()`-style) to a different real connection.
#[derive(Debug)]
pub struct Stream {
    /// The application-visible connection id (the original one).
    pub app: ConnId,
    /// The real connection currently carrying the stream.
    pub real: ConnId,
    /// Splitter over incoming real bytes.
    pub read_split: FrameSplitter,
    /// Splitter over outgoing application bytes.
    pub write_split: FrameSplitter,
    /// Bytes staged for the application to read. Segmented so staging a
    /// frame is a zero-copy enqueue of its refcounted bytes.
    stage: RecvQueue,
    /// EOF reached (after `stage` drains).
    pub stage_eof: bool,
    /// Writes buffered while a redirect is in flight.
    pub pending_writes: Vec<Vec<u8>>,
    /// Inbound frames held while a redirect is in flight (the paper's
    /// interceptor redirects synchronously inside `read()` before passing
    /// the accompanying reply up to the application).
    pub held_frames: Vec<giop::Frame>,
    /// A redirect is in flight; application writes are buffered.
    pub redirecting: bool,
}

impl Stream {
    /// Creates a stream whose app-visible and real ids coincide (the
    /// initial state of every connection).
    pub fn new(conn: ConnId) -> Self {
        Stream {
            app: conn,
            real: conn,
            read_split: FrameSplitter::new(),
            write_split: FrameSplitter::new(),
            stage: RecvQueue::new(),
            stage_eof: false,
            pending_writes: Vec::new(),
            held_frames: Vec::new(),
            redirecting: false,
        }
    }

    /// Feeds incoming real bytes; returns the complete frames now
    /// available (the caller decides which to consume and which to
    /// [`stage`](Self::stage_frame)).
    ///
    /// # Errors
    ///
    /// Propagates [`GiopError::BadMagic`] on stream desynchronisation.
    pub fn push_incoming(&mut self, data: &[u8]) -> Result<Vec<Frame>, GiopError> {
        self.read_split.push(data);
        self.read_split.drain_frames()
    }

    /// Feeds outgoing application bytes; returns the complete frames.
    ///
    /// # Errors
    ///
    /// Propagates [`GiopError::BadMagic`] on malformed application output.
    pub fn push_outgoing(&mut self, data: &[u8]) -> Result<Vec<Frame>, GiopError> {
        self.write_split.push(data);
        self.write_split.drain_frames()
    }

    /// Re-stages a frame byte-identically for the application to read.
    /// Zero-copy: the frame's refcounted bytes are enqueued as a segment.
    pub fn stage_frame(&mut self, frame: &Frame) {
        self.stage.push(frame.bytes.clone());
    }

    /// Stages raw bytes (fabricated replies).
    pub fn stage_bytes(&mut self, bytes: &[u8]) {
        self.stage.push(Bytes::copy_from_slice(bytes));
    }

    /// Bytes currently staged.
    pub fn staged_len(&self) -> usize {
        self.stage.len()
    }

    /// Serves the application's `read()` from the stage.
    pub fn read(&mut self, max: usize) -> ReadOutcome {
        let data = self.stage.read(max);
        ReadOutcome {
            data,
            eof: self.stage.is_empty() && self.stage_eof,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giop::{Endian, Message};

    #[test]
    fn token_namespace() {
        assert!(is_intercept_token(TOKEN_GCS));
        assert!(is_intercept_token(TOKEN_QUERY_TIMEOUT));
        assert!(!is_intercept_token(0));
        assert!(!is_intercept_token(TOKEN_BASE - 1));
    }

    #[test]
    fn stage_and_read_roundtrip() {
        let mut s = Stream::new(ConnId::default_for_tests());
        let wire = Message::CloseConnection.encode(Endian::Big);
        let frames = s.push_incoming(&wire).unwrap();
        assert_eq!(frames.len(), 1);
        s.stage_frame(&frames[0]);
        assert_eq!(s.staged_len(), wire.len());
        let out = s.read(usize::MAX);
        assert_eq!(&out.data[..], &wire[..]);
        assert!(!out.eof);
        s.stage_eof = true;
        assert!(s.read(usize::MAX).eof);
    }

    #[test]
    fn partial_reads_respect_max() {
        let mut s = Stream::new(ConnId::default_for_tests());
        s.stage_bytes(&[1, 2, 3, 4, 5]);
        let first = s.read(2);
        assert_eq!(&first.data[..], &[1, 2]);
        let rest = s.read(usize::MAX);
        assert_eq!(&rest.data[..], &[3, 4, 5]);
    }

    /// Test-only ConnId constructor (streams don't dereference the id).
    trait ConnIdTestExt {
        fn default_for_tests() -> ConnId;
    }
    impl ConnIdTestExt for ConnId {
        fn default_for_tests() -> ConnId {
            // Any ConnId works for Stream bookkeeping; obtain one via a
            // throwaway simulation.
            use simnet::*;
            use std::cell::RefCell;
            use std::rc::Rc;
            struct Grab(Rc<RefCell<Option<ConnId>>>);
            impl Process for Grab {
                fn on_start(&mut self, sys: &mut dyn SysApi) {
                    *self.0.borrow_mut() = Some(sys.connect(Addr::new(sys.my_node(), Port(1))));
                }
                fn on_event(&mut self, _: &mut dyn SysApi, _: Event) {}
            }
            let cell = Rc::new(RefCell::new(None));
            let mut sim = Simulation::new(SimConfig::default());
            let n = sim.add_node("t");
            sim.spawn(n, "grab", Box::new(Grab(cell.clone())));
            sim.run_until(SimTime::from_millis(50));
            let got = *cell.borrow();
            got.expect("connect allocates an id")
        }
    }
}
