//! The client-side MEAD Interceptor.
//!
//! Wraps an unmodified client process (workload + client ORB). Per
//! section 3.1, "for client sockets, we use the read() call to filter and
//! interpret the custom MEAD messages that we piggyback onto regular GIOP
//! messages. We use the writev() call to redirect client requests to
//! non-faulty server replicas in the event of proactive fail-over."
//!
//! Two schemes activate client-side logic:
//!
//! * **MEAD fail-over messages** (section 4.3): incoming streams are
//!   scanned for piggybacked `"MEAD"` frames; on a fail-over notice the
//!   interceptor opens a connection to the named replica and, once it is
//!   established, performs the `dup2()`-style swap — the application keeps
//!   using the same descriptor, but bytes now flow to the new replica. The
//!   GIOP reply travelling with the notice is passed up untouched.
//! * **NEEDS_ADDRESSING_MODE** (section 4.2): an EOF on a server stream is
//!   *suppressed*; the interceptor multicasts an `AddressQuery` to the
//!   server group, waits up to 10 ms for an `AddressReply` from the first
//!   live replica, redirects the connection, and fabricates a
//!   `NEEDS_ADDRESSING_MODE` reply that makes the client ORB retransmit
//!   its last request over the redirected connection. On timeout the EOF
//!   is released and the application sees `COMM_FAILURE`.

use std::collections::{BTreeMap, BTreeSet};

use giop::{Endian, FrameKind, Message, MsgType, ReplyBody, ReplyMessage};
use groupcomm::{GcsClient, GcsDelivery};
use obs::{EventKind, Phase};
use simnet::{
    Addr, ConnId, Event, ExitReason, ListenerId, Port, Process, ProcessFactory, ProcessId,
    ReadOutcome, SimDuration, SimRng, SimTime, SysApi, SysError, TimerId,
};

use crate::config::{MeadConfig, RecoveryScheme};
use crate::intercept::common::{
    is_intercept_token, Stream, TOKEN_GCS, TOKEN_QUERY_TIMEOUT, TOKEN_REDIRECT_DONE_BASE,
};
use crate::messages::{FailoverNotice, GroupMsg};

/// Why a new connection is being opened by the interceptor.
#[derive(Debug)]
enum RedirectKind {
    /// Triggered by a piggybacked MEAD fail-over notice.
    MeadNotice,
    /// Triggered by an `AddressReply` after a suppressed EOF; carries the
    /// in-flight request to resurrect, if any.
    NeedsAddressing { outstanding: Option<u32> },
}

#[derive(Debug)]
struct Redirect {
    app: ConnId,
    old_real: ConnId,
    kind: RedirectKind,
}

/// State of a suppressed EOF awaiting an address reply.
#[derive(Debug)]
struct PendingQuery {
    app: ConnId,
    outstanding: Option<u32>,
    timer: TimerId,
}

/// The client-side interceptor process.
pub struct ClientInterceptor {
    inner: Box<dyn Process>,
    st: ClientState,
}

struct ClientState {
    cfg: MeadConfig,
    gcs: Option<GcsClient>,
    reply_group: String,
    /// app conn id -> stream.
    streams: BTreeMap<ConnId, Stream>,
    /// real conn id -> app conn id (diverges after redirects).
    real_to_app: BTreeMap<ConnId, ConnId>,
    /// new real conn -> redirect bookkeeping.
    redirects: BTreeMap<ConnId, Redirect>,
    /// Suppressed EOFs awaiting AddressReply, keyed by app conn.
    queries: BTreeMap<ConnId, PendingQuery>,
    /// Per-stream in-flight request (NEEDS_ADDRESSING bookkeeping).
    outstanding: BTreeMap<ConnId, u32>,
    /// Redirects whose dup2 work is finishing (timer token offset ->
    /// (app conn, request to resurrect)).
    finishing: BTreeMap<u64, (ConnId, Option<u32>)>,
    next_finish_token: u64,
    /// App conns whose redirect finished but which have not yet staged a
    /// GIOP reply from the *new* replica; the next such reply closes the
    /// paper's fail-over window (`FirstReplyAfterFailover`).
    awaiting_first_reply: BTreeSet<ConnId>,
}

impl ClientInterceptor {
    /// Wraps `inner` (an unmodified client process).
    pub fn new(cfg: MeadConfig, inner: Box<dyn Process>) -> Self {
        ClientInterceptor {
            inner,
            st: ClientState {
                cfg,
                gcs: None,
                reply_group: String::new(),
                streams: BTreeMap::new(),
                real_to_app: BTreeMap::new(),
                redirects: BTreeMap::new(),
                queries: BTreeMap::new(),
                outstanding: BTreeMap::new(),
                finishing: BTreeMap::new(),
                next_finish_token: 0,
                awaiting_first_reply: BTreeSet::new(),
            },
        }
    }
}

impl Process for ClientInterceptor {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        let pid = sys.my_pid().raw();
        self.st.reply_group = format!("clients/{pid}");
        let mut gcs = GcsClient::new(format!("client/{pid}"), TOKEN_GCS);
        gcs.start(sys);
        let reply_group = self.st.reply_group.clone();
        gcs.join(sys, &reply_group);
        self.st.gcs = Some(gcs);
        let mut facade = ClientFacade {
            sys,
            st: &mut self.st,
        };
        self.inner.on_start(&mut facade);
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event) {
        let deliveries = self
            .st
            .gcs
            .as_mut()
            .and_then(|gcs| gcs.handle_event(sys, &event));
        if let Some(deliveries) = deliveries {
            for d in deliveries {
                self.st.on_gcs(sys, d);
            }
            return;
        }
        if let Event::TimerFired { token, .. } = event {
            if is_intercept_token(token) {
                if let Some(ev) = self.st.on_timer(sys, token) {
                    let mut facade = ClientFacade {
                        sys,
                        st: &mut self.st,
                    };
                    self.inner.on_event(&mut facade, ev);
                }
                return;
            }
        }
        match event {
            Event::ConnEstablished { conn } if self.st.redirects.contains_key(&conn) => {
                if let Some(ev) = self.st.complete_redirect(sys, conn) {
                    let mut facade = ClientFacade {
                        sys,
                        st: &mut self.st,
                    };
                    self.inner.on_event(&mut facade, ev);
                }
            }
            Event::ConnRefused { conn } if self.st.redirects.contains_key(&conn) => {
                // Redirect target is gone too: release the failure to the
                // application.
                let redirect = self.st.redirects.remove(&conn).expect("checked");
                sys.count("mead.client.redirect_refused", 1);
                if let Some(stream) = self.st.streams.get_mut(&redirect.app) {
                    stream.redirecting = false;
                    stream.stage_eof = true;
                }
                let mut facade = ClientFacade {
                    sys,
                    st: &mut self.st,
                };
                self.inner
                    .on_event(&mut facade, Event::PeerClosed { conn: redirect.app });
            }
            Event::DataReadable { conn } => {
                let Some(&app) = self.st.real_to_app.get(&conn) else {
                    let mut facade = ClientFacade {
                        sys,
                        st: &mut self.st,
                    };
                    self.inner.on_event(&mut facade, event);
                    return;
                };
                let staged = self.st.pump_incoming(sys, conn, app);
                if staged {
                    let mut facade = ClientFacade {
                        sys,
                        st: &mut self.st,
                    };
                    self.inner
                        .on_event(&mut facade, Event::DataReadable { conn: app });
                }
            }
            Event::PeerClosed { conn } => {
                let Some(&app) = self.st.real_to_app.get(&conn) else {
                    let mut facade = ClientFacade {
                        sys,
                        st: &mut self.st,
                    };
                    self.inner.on_event(&mut facade, event);
                    return;
                };
                if self.st.cfg.scheme == RecoveryScheme::NeedsAddressing {
                    // Suppress the failure and go ask the group
                    // (section 4.2).
                    self.st.suppress_eof(sys, app);
                    return;
                }
                if let Some(stream) = self.st.streams.get_mut(&app) {
                    stream.stage_eof = true;
                }
                let mut facade = ClientFacade {
                    sys,
                    st: &mut self.st,
                };
                self.inner
                    .on_event(&mut facade, Event::PeerClosed { conn: app });
            }
            other => {
                // ConnEstablished / ConnRefused for app-initiated conns
                // (identity-mapped), app timers, accepts (clients don't
                // listen) — all pass through with translation where known.
                let translated = match other {
                    Event::ConnEstablished { conn } => Event::ConnEstablished {
                        conn: self.st.real_to_app.get(&conn).copied().unwrap_or(conn),
                    },
                    Event::ConnRefused { conn } => Event::ConnRefused {
                        conn: self.st.real_to_app.get(&conn).copied().unwrap_or(conn),
                    },
                    ev => ev,
                };
                let mut facade = ClientFacade {
                    sys,
                    st: &mut self.st,
                };
                self.inner.on_event(&mut facade, translated);
            }
        }
    }

    fn label(&self) -> &str {
        "mead-client-interceptor"
    }
}

impl ClientState {
    /// Drains the real connection, strips MEAD frames, stages GIOP frames.
    /// Returns whether application-visible bytes were staged.
    fn pump_incoming(&mut self, sys: &mut dyn SysApi, real: ConnId, app: ConnId) -> bool {
        let Ok(read) = sys.read(real, usize::MAX) else {
            return false;
        };
        let frames = {
            let Some(stream) = self.streams.get_mut(&app) else {
                return false;
            };
            if read.eof && self.cfg.scheme != RecoveryScheme::NeedsAddressing {
                stream.stage_eof = true;
            }
            match stream.push_incoming(&read.data) {
                Ok(f) => f,
                Err(e) => {
                    sys.count("mead.client.desync", 1);
                    sys.trace(&format!("client interceptor: stream desync: {e}"));
                    return false;
                }
            }
        };
        let mut staged = false;
        for frame in frames {
            match frame.kind {
                FrameKind::Mead => {
                    // Strip and act: this is the proactive fail-over path.
                    match FailoverNotice::decode(&frame) {
                        Ok(notice) => self.begin_mead_redirect(sys, app, &notice),
                        Err(e) => {
                            sys.count("mead.client.bad_notice", 1);
                            sys.trace(&format!("bad MEAD notice: {e}"));
                        }
                    }
                }
                FrameKind::Giop => {
                    if frame.msg_type() == MsgType::Reply as u8 {
                        // A reply settles the in-flight request.
                        self.outstanding.remove(&app);
                        // A reply read off the redirected connection closes
                        // the fail-over window. Replies held during the
                        // redirect came from the old replica and do not
                        // count.
                        if self
                            .streams
                            .get(&app)
                            .map(|s| !s.redirecting)
                            .unwrap_or(false)
                            && self.awaiting_first_reply.remove(&app)
                        {
                            sys.emit(EventKind::Phase(Phase::FirstReplyAfterFailover));
                        }
                    }
                    if let Some(stream) = self.streams.get_mut(&app) {
                        if stream.redirecting {
                            // Redirect in progress (triggered by a notice
                            // earlier in this very read): hold the reply
                            // until the new connection is in place, as the
                            // paper's synchronous in-read() redirect does.
                            stream.held_frames.push(frame);
                        } else {
                            stream.stage_frame(&frame);
                            staged = true;
                        }
                    }
                }
            }
        }
        staged
    }

    /// Starts the dup2-style redirect after a fail-over notice.
    fn begin_mead_redirect(&mut self, sys: &mut dyn SysApi, app: ConnId, notice: &FailoverNotice) {
        let Some(node) = crate::node_of(&notice.host) else {
            sys.count("mead.client.bad_notice", 1);
            return;
        };
        let Some(stream) = self.streams.get_mut(&app) else {
            return;
        };
        if stream.redirecting {
            return; // already moving
        }
        stream.redirecting = true;
        sys.count("mead.client.redirects_started", 1);
        let old_real = stream.real;
        let new_real = sys.connect(Addr::new(node, Port(notice.port)));
        self.redirects.insert(
            new_real,
            Redirect {
                app,
                old_real,
                kind: RedirectKind::MeadNotice,
            },
        );
    }

    /// First half of finishing a redirect, run when the replacement
    /// connection establishes: swap the descriptor mapping (the `dup2()`),
    /// close the old connection, and flush buffered writes. The
    /// interceptor then stays "busy" for the redirect cost; held replies
    /// and fabricated retransmission triggers are released when the
    /// completion timer fires ([`finish_redirect`](Self::finish_redirect)),
    /// so the cost is visible in the round-trip the client measures —
    /// matching the paper's synchronous in-`read()` redirect.
    fn complete_redirect(&mut self, sys: &mut dyn SysApi, new_real: ConnId) -> Option<Event> {
        let redirect = self.redirects.remove(&new_real)?;
        sys.charge_cpu(self.cfg.costs.redirect_cpu);
        sys.count("mead.client.redirects_completed", 1);
        sys.mark("mead.client.redirect_at");
        sys.emit(EventKind::Phase(Phase::ClientRedirect));
        let app = redirect.app;
        let stream = self.streams.get_mut(&app)?;
        debug_assert_eq!(stream.app, app, "streams are keyed by their app-visible id");
        stream.real = new_real;
        self.real_to_app.remove(&redirect.old_real);
        self.real_to_app.insert(new_real, app);
        sys.close(redirect.old_real);
        let outstanding = match redirect.kind {
            RedirectKind::MeadNotice => None,
            RedirectKind::NeedsAddressing { outstanding } => outstanding,
        };
        let token = TOKEN_REDIRECT_DONE_BASE + self.next_finish_token;
        self.next_finish_token += 1;
        self.finishing.insert(token, (app, outstanding));
        sys.set_timer(self.cfg.costs.redirect_cpu, token);
        None
    }

    /// Second half of a redirect, after the dup2 work: release held
    /// frames, flush buffered writes, fabricate the retransmission trigger
    /// if a request was in flight, and wake the application.
    fn finish_redirect(&mut self, sys: &mut dyn SysApi, token: u64) -> Option<Event> {
        let (app, outstanding) = self.finishing.remove(&token)?;
        self.awaiting_first_reply.insert(app);
        let stream = self.streams.get_mut(&app)?;
        stream.redirecting = false;
        let new_real = stream.real;
        for queued in std::mem::take(&mut stream.pending_writes) {
            let _ = sys.write(new_real, &queued);
        }
        let held = std::mem::take(&mut stream.held_frames);
        for frame in &held {
            stream.stage_frame(frame);
        }
        let mut wake = stream.staged_len() > 0;
        if let Some(request_id) = outstanding {
            // Fabricate the NEEDS_ADDRESSING_MODE reply that makes the ORB
            // resend over the redirected connection.
            sys.charge_cpu(self.cfg.costs.fabricate_cpu);
            sys.count("mead.client.fabricated_needs_addr", 1);
            let fab = Message::Reply(ReplyMessage {
                request_id,
                body: ReplyBody::NeedsAddressingMode(0),
            })
            .encode(Endian::Big);
            let stream = self.streams.get_mut(&app)?;
            stream.stage_bytes(&fab);
            wake = true;
        }
        wake.then_some(Event::DataReadable { conn: app })
    }

    /// NEEDS_ADDRESSING: EOF detected; hold it back and ask the group for
    /// the current primary.
    fn suppress_eof(&mut self, sys: &mut dyn SysApi, app: ConnId) {
        if self.queries.contains_key(&app) {
            return;
        }
        sys.count("mead.client.eof_suppressed", 1);
        sys.mark("mead.client.suppressed_at");
        sys.emit(EventKind::Phase(Phase::FaultDetected));
        // The stream is in limbo until the group answers: hold any writes
        // (the closed-loop client may fire its next request meanwhile).
        if let Some(stream) = self.streams.get_mut(&app) {
            stream.redirecting = true;
        }
        let outstanding = self.outstanding.get(&app).copied();
        let timer = sys.set_timer(self.cfg.address_query_timeout, TOKEN_QUERY_TIMEOUT);
        self.queries.insert(
            app,
            PendingQuery {
                app,
                outstanding,
                timer,
            },
        );
        let group = self.cfg.server_group.clone();
        let reply_group = self.reply_group.clone();
        if let Some(gcs) = self.gcs.as_mut() {
            gcs.multicast(
                sys,
                &group,
                &GroupMsg::AddressQuery { reply_group }.encode(),
            );
        }
    }

    fn on_gcs(&mut self, sys: &mut dyn SysApi, delivery: GcsDelivery) {
        if let GcsDelivery::Message { payload, .. } = delivery {
            match GroupMsg::decode(&payload) {
                Ok(GroupMsg::AddressReply { host, port, .. }) => {
                    // Answer the oldest pending query.
                    let Some((&app, _)) = self.queries.iter().next() else {
                        return; // late reply; timeout already fired
                    };
                    let query = self.queries.remove(&app).expect("keyed");
                    sys.cancel_timer(query.timer);
                    // NEEDS_ADDRESSING pulls its fail-over notification
                    // from the group instead of having the server push it.
                    sys.emit(EventKind::Phase(Phase::FailoverNotice));
                    let Some(node) = crate::node_of(&host) else {
                        return;
                    };
                    let Some(stream) = self.streams.get_mut(&app) else {
                        return;
                    };
                    stream.redirecting = true;
                    let old_real = stream.real;
                    let new_real = sys.connect(Addr::new(node, Port(port)));
                    self.redirects.insert(
                        new_real,
                        Redirect {
                            app,
                            old_real,
                            kind: RedirectKind::NeedsAddressing {
                                outstanding: query.outstanding,
                            },
                        },
                    );
                }
                // Server-group chatter multicast to the reply group; only
                // the address reply is for us.
                Ok(
                    GroupMsg::AddrAdvert { .. }
                    | GroupMsg::IorAdvert { .. }
                    | GroupMsg::LaunchRequest { .. }
                    | GroupMsg::SyncList { .. }
                    | GroupMsg::AddressQuery { .. }
                    | GroupMsg::Checkpoint { .. }
                    | GroupMsg::RmState { .. },
                ) => {}
                Err(e) => {
                    sys.count("mead.client.bad_group_msg", 1);
                    sys.trace(&format!("bad group message at client: {e}"));
                }
            }
        }
    }

    /// Handles interceptor timers; may return an event to raise to the
    /// application (the released EOF on query timeout, or the wake-up
    /// after a finished redirect).
    fn on_timer(&mut self, sys: &mut dyn SysApi, token: u64) -> Option<Event> {
        if token >= TOKEN_REDIRECT_DONE_BASE {
            return self.finish_redirect(sys, token);
        }
        if token != TOKEN_QUERY_TIMEOUT {
            return None;
        }
        // "If the client does not receive a response from the server group
        // within a specified time (we used a 10 ms timeout) ... a CORBA
        // COMM_FAILURE exception is propagated up to the client
        // application." (section 4.2)
        let (&app, _) = self.queries.iter().next()?;
        let query = self.queries.remove(&app).expect("keyed");
        sys.count("mead.client.query_timeout", 1);
        let stream = self.streams.get_mut(&query.app)?;
        stream.stage_eof = true;
        stream.redirecting = false;
        // Held writes are lost with the dead connection; the released EOF
        // fails their requests with COMM_FAILURE at the ORB.
        stream.pending_writes.clear();
        Some(Event::PeerClosed { conn: query.app })
    }
}

/// The syscall façade handed to the wrapped client application.
struct ClientFacade<'a> {
    sys: &'a mut dyn SysApi,
    st: &'a mut ClientState,
}

impl SysApi for ClientFacade<'_> {
    fn now(&self) -> SimTime {
        self.sys.now()
    }
    fn my_node(&self) -> simnet::NodeId {
        self.sys.my_node()
    }
    fn my_pid(&self) -> ProcessId {
        self.sys.my_pid()
    }

    fn listen(&mut self, port: Port) -> Result<ListenerId, SysError> {
        self.sys.listen(port)
    }

    fn unlisten(&mut self, listener: ListenerId) {
        self.sys.unlisten(listener)
    }

    fn connect(&mut self, addr: Addr) -> ConnId {
        let conn = self.sys.connect(addr);
        self.st.streams.insert(conn, Stream::new(conn));
        self.st.real_to_app.insert(conn, conn);
        conn
    }

    fn write(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), SysError> {
        let Some(stream) = self.st.streams.get_mut(&conn) else {
            return self.sys.write(conn, bytes);
        };
        if self.st.cfg.scheme == RecoveryScheme::NeedsAddressing {
            // Track the in-flight request id so a fabricated reply can
            // name it. This light parse is the scheme's ~8 % overhead.
            if let Ok(frames) = stream.push_outgoing(bytes) {
                for frame in frames {
                    if frame.kind == FrameKind::Giop && frame.msg_type() == MsgType::Request as u8 {
                        self.sys.charge_cpu(self.st.cfg.costs.request_track_cpu);
                        if let Ok(Message::Request(req)) = Message::decode(&frame.bytes) {
                            if req.response_expected {
                                self.st.outstanding.insert(conn, req.request_id);
                            }
                        }
                    }
                }
            }
        }
        let stream = self.st.streams.get_mut(&conn).expect("still present");
        if stream.redirecting {
            // Hold writes until the replacement connection is up.
            stream.pending_writes.push(bytes.to_vec());
            return Ok(());
        }
        let real = stream.real;
        self.sys.write(real, bytes)
    }

    fn read(&mut self, conn: ConnId, max: usize) -> Result<ReadOutcome, SysError> {
        match self.st.streams.get_mut(&conn) {
            Some(stream) => Ok(stream.read(max)),
            None => self.sys.read(conn, max),
        }
    }

    fn close(&mut self, conn: ConnId) {
        if let Some(stream) = self.st.streams.remove(&conn) {
            self.st.real_to_app.remove(&stream.real);
            self.st.outstanding.remove(&conn);
            self.st.queries.remove(&conn);
            self.st.awaiting_first_reply.remove(&conn);
            self.sys.close(stream.real);
        } else {
            self.sys.close(conn);
        }
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        debug_assert!(
            !is_intercept_token(token),
            "application timer tokens must stay below the interceptor namespace"
        );
        self.sys.set_timer(after, token)
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        self.sys.cancel_timer(timer)
    }

    fn spawn(
        &mut self,
        node: simnet::NodeId,
        name: &str,
        factory: ProcessFactory,
    ) -> Result<ProcessId, SysError> {
        self.sys.spawn(node, name, factory)
    }

    fn exit(&mut self, reason: ExitReason) {
        self.sys.exit(reason)
    }

    fn charge_cpu(&mut self, cost: SimDuration) {
        self.sys.charge_cpu(cost)
    }

    fn rng(&mut self) -> &mut SimRng {
        self.sys.rng()
    }

    fn tag_conn(&mut self, conn: ConnId, tag: &'static str) {
        self.sys.tag_conn(conn, tag)
    }

    fn count(&mut self, counter: &'static str, delta: u64) {
        self.sys.count(counter, delta)
    }

    fn mark(&mut self, series: &'static str) {
        self.sys.mark(series)
    }

    fn trace(&mut self, message: &str) {
        self.sys.trace(message)
    }

    fn emit(&mut self, kind: EventKind) {
        self.sys.emit(kind)
    }
}
