//! The MEAD Interceptor: library-interpositioning over the simulated
//! syscall surface.

pub mod client;
pub(crate) mod common;
pub mod server;

/// Timer-token namespace reserved by the interceptors. Wrapped
/// applications must keep their own tokens below [`tokens::TOKEN_BASE`].
pub mod tokens {
    pub use super::common::{
        is_intercept_token, TOKEN_BASE, TOKEN_CHECKPOINT, TOKEN_DRAIN, TOKEN_GCS, TOKEN_LEAK,
        TOKEN_QUERY_TIMEOUT, TOKEN_REDIRECT_DONE_BASE,
    };
}
