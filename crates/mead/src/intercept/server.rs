//! The server-side MEAD Interceptor with its embedded Proactive
//! Fault-Tolerance Manager.
//!
//! Wraps an *unmodified* server process (ORB + servants + naming
//! registration) exactly as the paper's `LD_PRELOAD` library wraps a TAO
//! server: the application's `listen`/`connect`/`read`/`write`/`close`
//! all pass through this layer, which
//!
//! * classifies sockets (accepted = client-side traffic, initiated =
//!   outbound traffic such as the Naming Service registration),
//! * hosts the memory-leak fault injector (section 5.1 injects the leak
//!   "within the Interceptor") and the two-step threshold monitor, checked
//!   on the write path (the paper rejects a polling thread, section 3.1),
//! * joins the replica group over GCS, advertises its address (from the
//!   intercepted `listen()`, section 4.3) and its IORs (from the
//!   intercepted Naming Service registration, section 4.1),
//! * past the migrate threshold, redirects clients by the configured
//!   scheme: replacing replies with `LOCATION_FORWARD`, or piggybacking
//!   MEAD fail-over notices onto replies, and
//! * answers `AddressQuery` multicasts when it is the first live replica
//!   (section 4.2).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use faults::{
    AdaptivePredictor, MemoryLeak, PressureKind, ResourceMonitor, ResourcePressure, ThresholdAction,
};
use giop::{Endian, Frame, FrameKind, Message, MsgType, ObjectKey, ReplyBody, ReplyMessage};
use groupcomm::{GcsClient, GcsDelivery};
use obs::{EventKind, Phase};
use simnet::{
    ConnId, Event, ExitReason, ListenerId, Port, Process, ProcessFactory, ProcessId, ReadOutcome,
    SimDuration, SimRng, SimTime, SysApi, SysError, TimerId,
};

use crate::config::{MeadConfig, RecoveryScheme};
use crate::directory::{replica_member_name, MemberName, ReplicaDirectory, Slot};
use crate::intercept::common::{
    is_intercept_token, Stream, TOKEN_CHECKPOINT, TOKEN_DRAIN, TOKEN_GCS, TOKEN_LEAK,
    TOKEN_PRESSURE_ARM, TOKEN_PRESSURE_TICK,
};
use crate::messages::{FailoverNotice, GroupMsg};

/// Hooks through which the interceptor captures and restores application
/// state for warm-passive replication. The application itself stays
/// MEAD-unaware: it shares its state (e.g. through an `Rc<Cell<..>>`)
/// with whoever builds the interceptor — the reproduction's stand-in for
/// MEAD's checkpointing library.
pub struct StateHooks {
    /// Serialises the current application state.
    pub capture: CaptureFn,
    /// Installs a received checkpoint into the application state.
    pub restore: RestoreFn,
}

/// Serialises the application state for a checkpoint.
pub type CaptureFn = Box<dyn Fn() -> Vec<u8>>;
/// Installs a received checkpoint into the application state.
pub type RestoreFn = Box<dyn Fn(&[u8])>;

/// The server-side interceptor process: `Interceptor(app)` in Figure 1.
pub struct ServerInterceptor {
    inner: Box<dyn Process>,
    st: ServerState,
    label: String,
}

struct ServerState {
    cfg: MeadConfig,
    slot: Slot,
    member: MemberName,
    gcs: Option<GcsClient>,
    dir: ReplicaDirectory,
    leak: Option<MemoryLeak>,
    /// Resource-pressure fault (CPU ramp / fd leak); armed by timer at
    /// `cfg.pressure.activate_at` if this instance started before then.
    pressure: Option<ResourcePressure>,
    /// Last pressure decile traced (emit `resource_pressure` only on
    /// decile crossings, not every tick).
    pressure_decile: u32,
    monitor: ResourceMonitor,
    adaptive: Option<AdaptivePredictor>,
    listen_port: Option<Port>,
    app_listeners: BTreeSet<ListenerId>,
    client_streams: BTreeMap<ConnId, Stream>,
    out_streams: BTreeMap<ConnId, Stream>,
    /// LOCATION_FORWARD bookkeeping: per-connection request_id → object key
    /// harvested from parsed requests.
    request_keys: BTreeMap<ConnId, BTreeMap<u32, ObjectKey>>,
    /// IORs captured from the app's Naming Service registrations.
    my_iors: Vec<giop::Ior>,
    /// Clients already told to move away.
    notified: BTreeSet<ConnId>,
    state_hooks: Option<StateHooks>,
    /// Has served at least one client request (making this instance the
    /// acting primary for warm-passive purposes).
    ever_served: bool,
    /// Served a request since the last checkpoint (state is dirty).
    served_since_checkpoint: bool,
    migrating: bool,
    draining: bool,
    /// Launch already requested this rejuvenation cycle.
    launch_requested: bool,
    /// We have seen ourselves in a view and re-advertised once.
    advertised_in_view: bool,
    /// Commit-before-ack (`cfg.commit_acks`): client replies written by
    /// the app since the last checkpoint, waiting for the checkpoint
    /// that covers them.
    current_batch: Vec<(ConnId, Vec<u8>)>,
    /// One entry per checkpoint multicast still in flight; its batch is
    /// released when our own checkpoint self-delivers through the total
    /// order (so the state the replies acknowledge is durable at the
    /// backups first).
    held_replies: VecDeque<Vec<(ConnId, Vec<u8>)>>,
}

impl ServerInterceptor {
    /// Wraps `inner` (an unmodified server process) for replica `slot`.
    pub fn new(cfg: MeadConfig, slot: Slot, inner: Box<dyn Process>) -> Self {
        let leak = cfg.leak.clone().map(MemoryLeak::new);
        let pressure = cfg.pressure.clone().map(ResourcePressure::new);
        let monitor = ResourceMonitor::clamped(cfg.launch_threshold, cfg.migrate_threshold);
        let adaptive = cfg.adaptive.clone().map(AdaptivePredictor::new);
        ServerInterceptor {
            label: format!("mead-server-interceptor/{slot}"),
            inner,
            st: ServerState {
                cfg,
                slot,
                member: MemberName::new(""),
                gcs: None,
                dir: ReplicaDirectory::new(),
                leak,
                pressure,
                pressure_decile: 0,
                monitor,
                adaptive,
                listen_port: None,
                app_listeners: BTreeSet::new(),
                client_streams: BTreeMap::new(),
                out_streams: BTreeMap::new(),
                request_keys: BTreeMap::new(),
                my_iors: Vec::new(),
                notified: BTreeSet::new(),
                state_hooks: None,
                ever_served: false,
                served_since_checkpoint: false,
                migrating: false,
                draining: false,
                launch_requested: false,
                advertised_in_view: false,
                current_batch: Vec::new(),
                held_replies: VecDeque::new(),
            },
        }
    }
}

impl ServerInterceptor {
    /// Attaches warm-passive state hooks: the primary's checkpoints carry
    /// `capture()`'s bytes, and checkpoints received from the primary are
    /// fed to `restore()` (backups track the primary's state).
    pub fn with_state_hooks(mut self, hooks: StateHooks) -> Self {
        self.st.state_hooks = Some(hooks);
        self
    }
}

impl Process for ServerInterceptor {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.st.member = replica_member_name(self.st.slot, sys.my_pid().raw());
        let mut gcs = GcsClient::new(self.st.member.as_str().to_string(), TOKEN_GCS);
        gcs.start(sys);
        let group = self.st.cfg.server_group.clone();
        gcs.join(sys, &group);
        self.st.gcs = Some(gcs);
        if self.st.leak.is_some() {
            let interval = self
                .st
                .cfg
                .leak
                .as_ref()
                .expect("leak config present")
                .interval;
            sys.set_timer(interval, TOKEN_LEAK);
        }
        if let Some(pressure) = self.st.pressure.as_ref() {
            let activate_at = pressure.config().activate_at;
            if activate_at >= sys.now() {
                sys.set_timer(activate_at - sys.now(), TOKEN_PRESSURE_ARM);
            } else {
                // Started after the activation instant: a fresh
                // replacement does not inherit the runaway.
                self.st.pressure = None;
            }
        }
        sys.set_timer(self.st.cfg.checkpoint_interval, TOKEN_CHECKPOINT);
        let mut facade = ServerFacade {
            sys,
            st: &mut self.st,
        };
        self.inner.on_start(&mut facade);
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event) {
        // 1. Group-communication traffic is interceptor-internal.
        let deliveries = self
            .st
            .gcs
            .as_mut()
            .and_then(|gcs| gcs.handle_event(sys, &event));
        if let Some(deliveries) = deliveries {
            for d in deliveries {
                self.st.on_gcs(sys, d);
            }
            return;
        }
        // 2. Interceptor timers.
        if let Event::TimerFired { token, .. } = event {
            if is_intercept_token(token) {
                self.st.on_timer(sys, token);
                return;
            }
        }
        // 3. Transport events on intercepted streams.
        match event {
            Event::Accepted { listener, conn, .. } if self.st.app_listeners.contains(&listener) => {
                self.st.client_streams.insert(conn, Stream::new(conn));
                let mut facade = ServerFacade {
                    sys,
                    st: &mut self.st,
                };
                self.inner.on_event(&mut facade, event);
            }
            Event::DataReadable { conn }
                if self.st.client_streams.contains_key(&conn)
                    || self.st.out_streams.contains_key(&conn) =>
            {
                let staged = self.st.pump_incoming(sys, conn);
                if staged {
                    let mut facade = ServerFacade {
                        sys,
                        st: &mut self.st,
                    };
                    self.inner
                        .on_event(&mut facade, Event::DataReadable { conn });
                }
            }
            Event::PeerClosed { conn }
                if self.st.client_streams.contains_key(&conn)
                    || self.st.out_streams.contains_key(&conn) =>
            {
                if let Some(s) = self
                    .st
                    .client_streams
                    .get_mut(&conn)
                    .or_else(|| self.st.out_streams.get_mut(&conn))
                {
                    s.stage_eof = true;
                }
                // A departed client no longer needs a migration notice.
                self.st.notified.insert(conn);
                let mut facade = ServerFacade {
                    sys,
                    st: &mut self.st,
                };
                self.inner.on_event(&mut facade, event);
                self.st.maybe_drain(sys);
            }
            other => {
                let mut facade = ServerFacade {
                    sys,
                    st: &mut self.st,
                };
                self.inner.on_event(&mut facade, other);
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl ServerState {
    /// Drains real bytes on `conn` into its stream, consuming control
    /// frames and charging per-scheme costs. Returns whether new bytes
    /// were staged for the application.
    fn pump_incoming(&mut self, sys: &mut dyn SysApi, conn: ConnId) -> bool {
        let Ok(read) = sys.read(conn, usize::MAX) else {
            return false;
        };
        let is_client = self.client_streams.contains_key(&conn);
        let stream = match self
            .client_streams
            .get_mut(&conn)
            .or_else(|| self.out_streams.get_mut(&conn))
        {
            Some(s) => s,
            None => return false,
        };
        if read.eof {
            stream.stage_eof = true;
        }
        let frames = match stream.push_incoming(&read.data) {
            Ok(f) => f,
            Err(e) => {
                sys.count("mead.server.desync", 1);
                sys.trace(&format!("server interceptor: stream desync: {e}"));
                return false;
            }
        };
        let mut staged = false;
        for frame in frames {
            // Warm-passive single-writer discipline (exactly-once mode):
            // a backup that has never served and is not the first listed
            // replica must not touch application state — a client that
            // resolved straight to a freshly launched, not-yet-warmed
            // instance would otherwise fork the state. Refuse with
            // TRANSIENT so the client retries against the acting primary.
            if is_client
                && self.cfg.commit_acks
                && frame.kind == FrameKind::Giop
                && frame.msg_type() == MsgType::Request as u8
                && !self.ever_served
                && !self.dir.is_first_replica(&self.member)
            {
                if let Ok(Message::Request(req)) = Message::decode(&frame.bytes) {
                    sys.charge_cpu(self.cfg.costs.fabricate_cpu);
                    sys.count("mead.nonprimary_refusals", 1);
                    if req.response_expected {
                        let reply = Message::Reply(ReplyMessage {
                            request_id: req.request_id,
                            body: ReplyBody::SystemException {
                                repo_id: giop::EX_TRANSIENT.to_string(),
                                minor: 1,
                                completed: 1, // NO
                            },
                        });
                        let _ = sys.write(conn, &reply.encode(Endian::Big));
                    }
                    continue;
                }
            }
            if is_client {
                self.process_client_frame(sys, conn, &frame);
            }
            // Server side passes every frame (including any stray MEAD
            // frame) up unchanged; only the client interceptor strips.
            let stream = self
                .client_streams
                .get_mut(&conn)
                .or_else(|| self.out_streams.get_mut(&conn))
                .expect("stream persists during pump");
            stream.stage_frame(&frame);
            staged = true;
        }
        staged
    }

    /// Read-path processing of one inbound client frame.
    fn process_client_frame(&mut self, sys: &mut dyn SysApi, conn: ConnId, frame: &Frame) {
        if frame.kind != FrameKind::Giop || frame.msg_type() != MsgType::Request as u8 {
            return;
        }
        self.ever_served = true;
        self.served_since_checkpoint = true;
        // "The memory leak at a server replica was activated when the
        // server received its first client request." (section 5.1)
        if let Some(leak) = self.leak.as_mut() {
            if !leak.is_active() {
                leak.activate();
                sys.count("mead.leak_activated", 1);
                sys.emit(EventKind::Phase(Phase::LeakDetected));
            }
        }
        // An armed fd leak consumes descriptor-table space per request.
        if let Some(p) = self.pressure.as_mut() {
            if p.is_active() && p.config().kind == PressureKind::Fd {
                p.on_request();
                if self.pressure_progress(sys) {
                    return;
                }
            }
        }
        if self.cfg.scheme == RecoveryScheme::LocationForward {
            // Full parse to harvest request_id and object key — the source
            // of this scheme's ~90 % overhead (section 5.2.2).
            sys.charge_cpu(self.cfg.costs.giop_parse_cpu);
            if let Ok(Message::Request(req)) = Message::decode(&frame.bytes) {
                self.request_keys
                    .entry(conn)
                    .or_default()
                    .insert(req.request_id, req.object_key);
            }
        }
    }

    /// Write-path filtering for replies to clients. Returns the bytes to
    /// actually put on the wire.
    fn filter_client_write(
        &mut self,
        sys: &mut dyn SysApi,
        conn: ConnId,
        frame: &Frame,
    ) -> Vec<u8> {
        if frame.kind != FrameKind::Giop || frame.msg_type() != MsgType::Reply as u8 {
            return frame.bytes.to_vec();
        }
        // Per-scheme steady-state costs on the reply path.
        match self.cfg.scheme {
            RecoveryScheme::LocationForward => sys.charge_cpu(self.cfg.costs.giop_parse_cpu),
            RecoveryScheme::MeadFailover => sys.charge_cpu(self.cfg.costs.frame_scan_cpu),
            _ => {}
        }
        // Event-driven threshold check: "proactive recovery needs to be
        // triggered only when there are active client connections"
        // (section 3.1) — hence on writev, not on a polling thread. The
        // ablation flag `poll_thresholds` moves this to the leak timer,
        // as does the adaptive predictor (whose rate estimate needs the
        // leak tick cadence).
        if !self.cfg.poll_thresholds && self.cfg.adaptive.is_none() {
            self.check_thresholds(sys, false);
        }
        if !self.migrating {
            return frame.bytes.to_vec();
        }
        match self.cfg.scheme {
            RecoveryScheme::LocationForward => self.forward_reply(sys, conn, frame),
            RecoveryScheme::MeadFailover => self.piggyback_reply(sys, conn, frame),
            _ => frame.bytes.to_vec(),
        }
    }

    /// LOCATION_FORWARD: suppress the normal reply, send a forward to the
    /// next replica's IOR instead (section 4.1).
    fn forward_reply(&mut self, sys: &mut dyn SysApi, conn: ConnId, frame: &Frame) -> Vec<u8> {
        let Ok(Message::Reply(rep)) = Message::decode(&frame.bytes) else {
            return frame.bytes.to_vec();
        };
        let key = self
            .request_keys
            .get_mut(&conn)
            .and_then(|m| m.remove(&rep.request_id));
        let target = self.dir.next_after(&self.member).cloned();
        let (Some(key), Some(target)) = (key, target) else {
            return frame.bytes.to_vec(); // cannot redirect; serve normally
        };
        sys.charge_cpu(if self.cfg.use_key_hash {
            self.cfg.costs.ior_lookup_cpu
        } else {
            self.cfg.costs.ior_bytewise_cpu
        });
        let Some(ior) = self
            .dir
            .ior_of(&target, &key, self.cfg.use_key_hash)
            .cloned()
        else {
            sys.count("mead.forward_no_ior", 1);
            return frame.bytes.to_vec();
        };
        sys.charge_cpu(self.cfg.costs.fabricate_cpu);
        sys.count("mead.forwards_sent", 1);
        sys.emit(EventKind::Phase(Phase::FailoverNotice));
        self.notified.insert(conn);
        Message::Reply(ReplyMessage {
            request_id: rep.request_id,
            body: ReplyBody::LocationForward(ior),
        })
        .encode(Endian::Big)
        .to_vec()
    }

    /// MEAD message: deliver the reply *and* piggyback a fail-over notice
    /// carrying the next replica's address (section 4.3).
    fn piggyback_reply(&mut self, sys: &mut dyn SysApi, conn: ConnId, frame: &Frame) -> Vec<u8> {
        let target = self.dir.next_after(&self.member).cloned();
        let addr = target
            .as_ref()
            .and_then(|t| self.dir.addr_of(t).map(|(h, p)| (h.to_string(), p)));
        let Some((host, port)) = addr else {
            sys.count("mead.piggyback_no_target", 1);
            return frame.bytes.to_vec();
        };
        sys.charge_cpu(self.cfg.costs.fabricate_cpu);
        sys.count("mead.piggybacks_sent", 1);
        sys.emit(EventKind::Phase(Phase::FailoverNotice));
        self.notified.insert(conn);
        // "Piggybacking regular GIOP Reply messages onto the MEAD proactive
        // failover messages": the notice travels first so the client-side
        // interceptor can redirect before handing the reply up.
        let mut out = FailoverNotice::new(&host, port, self.member.as_str()).encode();
        out.extend_from_slice(&frame.bytes);
        out
    }

    /// Outbound write-path processing (Naming Service traffic): in the
    /// LOCATION_FORWARD scheme, harvest the IORs the app registers
    /// (section 4.1 "we intercept the IOR ... when each server replica
    /// registers its objects with the Naming Service").
    fn process_outbound_frame(&mut self, sys: &mut dyn SysApi, frame: &Frame) {
        if self.cfg.scheme != RecoveryScheme::LocationForward {
            return;
        }
        if frame.kind != FrameKind::Giop || frame.msg_type() != MsgType::Request as u8 {
            return;
        }
        sys.charge_cpu(self.cfg.costs.giop_parse_cpu);
        let Ok(Message::Request(req)) = Message::decode(&frame.bytes) else {
            return;
        };
        if req.operation != "bind" {
            return;
        }
        let mut r = giop::CdrReader::new(req.body.to_vec().into(), Endian::Big);
        let parsed = r
            .read_string()
            .and_then(|_name| r.read_octets())
            .ok()
            .and_then(|bytes| giop::Ior::decode(&bytes).ok());
        if let Some(ior) = parsed {
            sys.count("mead.ior_captured", 1);
            self.my_iors.push(ior.clone());
            let group = self.cfg.server_group.clone();
            let member = self.member.as_str().to_string();
            if let Some(gcs) = self.gcs.as_mut() {
                gcs.multicast(sys, &group, &GroupMsg::IorAdvert { member, ior }.encode());
            }
        }
    }

    /// Combined resource-usage fraction feeding the two-step thresholds:
    /// the worst (max) of the active leak and the active pressure model.
    /// `None` while no resource fault is active.
    fn usage_fraction(&self) -> Option<f64> {
        let leak = self
            .leak
            .as_ref()
            .filter(|l| l.is_active())
            .map(|l| l.fraction());
        let pressure = self
            .pressure
            .as_ref()
            .filter(|p| p.is_active())
            .map(|p| p.fraction());
        match (leak, pressure) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0.0).max(b.unwrap_or(0.0))),
        }
    }

    /// Traces pressure decile crossings and crashes the process when the
    /// resource is fully consumed. Returns `true` when the process exited.
    fn pressure_progress(&mut self, sys: &mut dyn SysApi) -> bool {
        let Some(p) = self.pressure.as_ref() else {
            return false;
        };
        if !p.is_active() {
            return false;
        }
        let resource = p.config().kind.resource();
        let permille = p.permille();
        let decile = permille / 100;
        if decile > self.pressure_decile {
            self.pressure_decile = decile;
            sys.emit(EventKind::ResourcePressure { resource, permille });
        }
        if p.exhausted() {
            sys.count("mead.crash_exhaustion", 1);
            sys.mark("mead.crash_at");
            sys.exit(ExitReason::Crash(format!("{resource} exhausted")));
            return true;
        }
        false
    }

    /// Observes the current resource usage against the configured
    /// trigger (preset two-step thresholds, or the adaptive predictor)
    /// and initiates launch/migration on crossings.
    fn check_thresholds(&mut self, sys: &mut dyn SysApi, from_timer: bool) {
        if !self.cfg.scheme.is_proactive_migration() {
            return;
        }
        let Some(fraction) = self.usage_fraction() else {
            return;
        };
        let action = match self.adaptive.as_mut() {
            // The predictor samples on the leak-tick cadence so its rate
            // estimate sees clean usage deltas.
            Some(predictor) if from_timer => predictor.observe(sys.now(), fraction),
            Some(_) => None,
            None => self.monitor.observe(fraction),
        };
        match action {
            Some(ThresholdAction::LaunchReplacement) => {
                sys.emit(EventKind::Phase(Phase::ThresholdCrossed { step: 1 }));
                self.request_launch(sys);
            }
            Some(ThresholdAction::MigrateClients) => {
                sys.emit(EventKind::Phase(Phase::ThresholdCrossed { step: 2 }));
                self.request_launch(sys); // ensure a target exists
                self.migrating = true;
                sys.count("mead.migrations", 1);
                sys.mark("mead.migrate_at");
                sys.trace("migrate threshold crossed; redirecting clients");
            }
            None => {}
        }
    }

    /// Multicasts a state checkpoint immediately (used for the periodic
    /// cadence and for warming a newly joined replica).
    fn send_checkpoint(&mut self, sys: &mut dyn SysApi) {
        self.served_since_checkpoint = false;
        sys.count("mead.checkpoints_sent", 1);
        if self.cfg.commit_acks {
            // Every checkpoint multicast owns the batch of replies it
            // covers (possibly empty, e.g. a periodic or warming
            // checkpoint); self-delivery releases batches in FIFO order,
            // which matches multicast order from a single sender.
            self.held_replies
                .push_back(std::mem::take(&mut self.current_batch));
        }
        let state = match self.state_hooks.as_ref() {
            Some(hooks) => (hooks.capture)(),
            None => vec![0u8; self.cfg.checkpoint_bytes],
        };
        let group = self.cfg.server_group.clone();
        let member = self.member.as_str().to_string();
        if let Some(gcs) = self.gcs.as_mut() {
            gcs.multicast(
                sys,
                &group,
                &GroupMsg::Checkpoint { member, state }.encode(),
            );
        }
    }

    fn request_launch(&mut self, sys: &mut dyn SysApi) {
        if self.launch_requested {
            return; // once per rejuvenation cycle
        }
        self.launch_requested = true;
        sys.count("mead.launch_requests", 1);
        let group = self.cfg.server_group.clone();
        let member = self.member.as_str().to_string();
        if let Some(gcs) = self.gcs.as_mut() {
            gcs.multicast(sys, &group, &GroupMsg::LaunchRequest { member }.encode());
        }
    }

    fn advertise(&mut self, sys: &mut dyn SysApi) {
        let Some(port) = self.listen_port else {
            return;
        };
        let host = crate::host_of(sys.my_node());
        let group = self.cfg.server_group.clone();
        let member = self.member.as_str().to_string();
        let iors = self.my_iors.clone();
        if let Some(gcs) = self.gcs.as_mut() {
            gcs.multicast(
                sys,
                &group,
                &GroupMsg::AddrAdvert {
                    member: member.clone(),
                    host,
                    port: port.0,
                }
                .encode(),
            );
            for ior in iors {
                gcs.multicast(
                    sys,
                    &group,
                    &GroupMsg::IorAdvert {
                        member: member.clone(),
                        ior,
                    }
                    .encode(),
                );
            }
        }
    }

    fn on_gcs(&mut self, sys: &mut dyn SysApi, delivery: GcsDelivery) {
        match delivery {
            GcsDelivery::Ready => {
                self.advertise(sys);
                // Re-attach after a daemon outage: checkpoints sent on the
                // dead connection will never self-deliver, so their held
                // reply batches would starve. Merge everything still
                // outstanding into one fresh checkpoint on the new
                // connection (its self-delivery releases them all).
                if self.cfg.commit_acks
                    && (!self.held_replies.is_empty() || !self.current_batch.is_empty())
                {
                    let mut merged: Vec<(ConnId, Vec<u8>)> = Vec::new();
                    for batch in std::mem::take(&mut self.held_replies) {
                        merged.extend(batch);
                    }
                    merged.append(&mut self.current_batch);
                    self.current_batch = merged;
                    sys.count("mead.ack_recheckpoints", 1);
                    self.send_checkpoint(sys);
                }
            }
            GcsDelivery::View { group, members, .. } if group == self.cfg.server_group => {
                let grew = members.len() > self.dir.view().len();
                self.dir.on_view(members);
                // Advertise once more when our own join is confirmed, in
                // case the advert multicast was ordered ahead of the view.
                if !self.advertised_in_view && self.dir.view().contains(&self.member) {
                    self.advertised_in_view = true;
                    self.advertise(sys);
                }
                // Warm a newly joined replica immediately: the acting
                // primary pushes its current state so a hand-off moments
                // later (pre-launch at T1, migrate at T2) finds the
                // newcomer warm rather than empty.
                if grew && self.ever_served && self.state_hooks.is_some() {
                    self.send_checkpoint(sys);
                }
                // The first-listed replica synchronises the active-server
                // list when the group gains a member (section 4.3);
                // newcomers learn addresses from that SyncList.
                if grew && self.dir.is_first_replica(&self.member) {
                    let entries = self.dir.sync_entries();
                    let group = self.cfg.server_group.clone();
                    if let Some(gcs) = self.gcs.as_mut() {
                        gcs.multicast(sys, &group, &GroupMsg::SyncList { entries }.encode());
                        sys.count("mead.synclists_sent", 1);
                    }
                }
            }
            GcsDelivery::Message { payload, .. } => match GroupMsg::decode(&payload) {
                Ok(GroupMsg::AddrAdvert { member, host, port }) => {
                    self.dir.record_addr(&member, &host, port);
                }
                Ok(GroupMsg::IorAdvert { member, ior }) => {
                    self.dir.record_ior(&member, ior);
                }
                Ok(GroupMsg::SyncList { entries }) => self.dir.apply_sync(&entries),
                Ok(GroupMsg::AddressQuery { reply_group }) => {
                    // "The first server replica listed in Spread's
                    // group-membership list responds" (section 4.2).
                    if self.dir.is_first_replica(&self.member) {
                        if let Some(port) = self.listen_port {
                            sys.charge_cpu(self.cfg.costs.address_reply_cpu);
                            sys.charge_cpu(self.cfg.costs.fabricate_cpu);
                            sys.count("mead.address_replies", 1);
                            let host = crate::host_of(sys.my_node());
                            let member = self.member.as_str().to_string();
                            if let Some(gcs) = self.gcs.as_mut() {
                                gcs.multicast(
                                    sys,
                                    &reply_group,
                                    &GroupMsg::AddressReply {
                                        member,
                                        host,
                                        port: port.0,
                                    }
                                    .encode(),
                                );
                            }
                        }
                    }
                }
                Ok(GroupMsg::Checkpoint { member, state }) => {
                    if self.member != member.as_str() {
                        sys.count("mead.checkpoints_received", 1);
                        sys.count("mead.checkpoint_bytes", state.len() as u64);
                        // Warm-passive backups apply the primary's state.
                        // An instance that has served requests is itself
                        // the acting primary and ignores foreign
                        // checkpoints (single-writer discipline).
                        if !self.ever_served {
                            if let Some(hooks) = self.state_hooks.as_ref() {
                                (hooks.restore)(&state);
                                sys.count("mead.state_restored", 1);
                            }
                        }
                    } else if self.cfg.commit_acks {
                        // Our own checkpoint came back through the total
                        // order: the state is durable, release the reply
                        // batch it covers.
                        if let Some(batch) = self.held_replies.pop_front() {
                            for (conn, bytes) in batch {
                                sys.count("mead.acks_committed", 1);
                                let _ = sys.write(conn, &bytes);
                            }
                        }
                    }
                }
                Ok(GroupMsg::LaunchRequest { .. }) => {} // Recovery Manager's job
                Ok(GroupMsg::AddressReply { .. }) => {}  // client-side message
                Ok(GroupMsg::RmState { .. }) => {}       // manager-to-manager
                Err(e) => {
                    sys.count("mead.bad_group_msg", 1);
                    sys.trace(&format!("bad group message: {e}"));
                }
            },
            GcsDelivery::DaemonLost => {
                sys.count("mead.gcs_lost", 1);
            }
            GcsDelivery::View { .. } => {}
        }
    }

    fn on_timer(&mut self, sys: &mut dyn SysApi, token: u64) {
        match token {
            TOKEN_LEAK => {
                let mut exhausted = false;
                if let Some(leak) = self.leak.as_mut() {
                    leak.step(sys.rng());
                    exhausted = leak.is_exhausted();
                }
                if exhausted {
                    // Resource exhaustion: the process-crash fault.
                    sys.count("mead.crash_exhaustion", 1);
                    sys.mark("mead.crash_at");
                    sys.exit(ExitReason::Crash("memory exhausted".into()));
                    return;
                }
                if self.cfg.poll_thresholds || self.cfg.adaptive.is_some() {
                    // Timer-driven monitoring: the polling ablation, or
                    // the adaptive predictor's sampling cadence.
                    self.check_thresholds(sys, true);
                }
                if let Some(cfg) = self.cfg.leak.as_ref() {
                    sys.set_timer(cfg.interval, TOKEN_LEAK);
                }
            }
            TOKEN_CHECKPOINT => {
                // Warm-passive state transfer. With state hooks the acting
                // primary — the instance actually serving clients —
                // checkpoints whenever its state is dirty; without hooks
                // (the paper's stateless workload) the first-listed
                // replica emits fixed-size checkpoints for the Figure 5
                // traffic model.
                let should_send = match self.state_hooks {
                    Some(_) => self.served_since_checkpoint,
                    None => self.dir.is_first_replica(&self.member),
                } && self.dir.replica_count() > 1;
                if should_send {
                    self.send_checkpoint(sys);
                }
                sys.set_timer(self.cfg.checkpoint_interval, TOKEN_CHECKPOINT);
            }
            TOKEN_DRAIN => {
                sys.count("mead.graceful_rejuvenations", 1);
                sys.exit(ExitReason::Graceful);
            }
            TOKEN_PRESSURE_ARM => {
                if let Some(p) = self.pressure.as_mut() {
                    p.activate();
                    let kind = p.config().kind;
                    let tick = p.config().tick;
                    match kind {
                        PressureKind::Cpu => sys.count("mead.pressure_armed_cpu", 1),
                        PressureKind::Fd => sys.count("mead.pressure_armed_fd", 1),
                    }
                    sys.emit(EventKind::ResourcePressure {
                        resource: kind.resource(),
                        permille: 0,
                    });
                    if kind == PressureKind::Cpu {
                        sys.set_timer(tick, TOKEN_PRESSURE_TICK);
                    }
                }
            }
            TOKEN_PRESSURE_TICK => {
                let mut tick = None;
                if let Some(p) = self.pressure.as_mut() {
                    if p.is_active() && p.config().kind == PressureKind::Cpu {
                        let fraction = p.on_tick();
                        // The runaway computation steals real cycles:
                        // charge the consumed share of the tick so service
                        // latency degrades as the ramp climbs.
                        let stolen = p.config().tick.as_nanos() as f64 * fraction * 0.25;
                        sys.charge_cpu(SimDuration::from_nanos(stolen as u64));
                        tick = Some(p.config().tick);
                    }
                }
                if self.pressure_progress(sys) {
                    return;
                }
                if self.cfg.poll_thresholds || self.cfg.adaptive.is_some() {
                    self.check_thresholds(sys, true);
                }
                if let Some(tick) = tick {
                    sys.set_timer(tick, TOKEN_PRESSURE_TICK);
                }
            }
            _ => {}
        }
    }

    /// Once every connected client has been redirected, schedule the
    /// graceful exit (rejuvenation).
    fn maybe_drain(&mut self, sys: &mut dyn SysApi) {
        if !self.migrating || self.draining {
            return;
        }
        let all_notified = self
            .client_streams
            .keys()
            .all(|c| self.notified.contains(c));
        if all_notified {
            self.draining = true;
            sys.set_timer(self.cfg.drain_delay, TOKEN_DRAIN);
        }
    }
}

/// The syscall façade handed to the wrapped application.
struct ServerFacade<'a> {
    sys: &'a mut dyn SysApi,
    st: &'a mut ServerState,
}

impl SysApi for ServerFacade<'_> {
    fn now(&self) -> SimTime {
        self.sys.now()
    }
    fn my_node(&self) -> simnet::NodeId {
        self.sys.my_node()
    }
    fn my_pid(&self) -> ProcessId {
        self.sys.my_pid()
    }

    fn listen(&mut self, port: Port) -> Result<ListenerId, SysError> {
        // Section 4.3: "intercepts the listen() call at the server to
        // determine the port on which the server-side ORB is listening".
        let lsn = self.sys.listen(port)?;
        self.st.listen_port = Some(port);
        self.st.app_listeners.insert(lsn);
        self.st.advertise(self.sys);
        Ok(lsn)
    }

    fn unlisten(&mut self, listener: ListenerId) {
        self.st.app_listeners.remove(&listener);
        self.sys.unlisten(listener);
    }

    fn connect(&mut self, addr: simnet::Addr) -> ConnId {
        let conn = self.sys.connect(addr);
        self.st.out_streams.insert(conn, Stream::new(conn));
        conn
    }

    fn write(&mut self, conn: ConnId, bytes: &[u8]) -> Result<(), SysError> {
        if self.st.client_streams.contains_key(&conn) {
            let frames = {
                let stream = self.st.client_streams.get_mut(&conn).expect("checked");
                stream.push_outgoing(bytes).map_err(|_| {
                    // The app emitted something unframeable; pass raw.
                    SysError::UnknownConn(conn)
                })
            };
            match frames {
                Ok(frames) => {
                    let mut held_any = false;
                    for frame in frames {
                        let out = self.st.filter_client_write(self.sys, conn, &frame);
                        // Commit-before-ack: a GIOP reply only goes on
                        // the wire once the checkpoint covering the state
                        // it acknowledges is durable (self-delivered).
                        if self.st.cfg.commit_acks
                            && frame.kind == FrameKind::Giop
                            && frame.msg_type() == MsgType::Reply as u8
                        {
                            self.st.current_batch.push((conn, out));
                            held_any = true;
                        } else {
                            self.sys.write(conn, &out)?;
                        }
                    }
                    if held_any {
                        self.st.send_checkpoint(self.sys);
                    }
                    self.st.maybe_drain(self.sys);
                    Ok(())
                }
                Err(_) => self.sys.write(conn, bytes),
            }
        } else if self.st.out_streams.contains_key(&conn) {
            let frames = {
                let stream = self.st.out_streams.get_mut(&conn).expect("checked");
                stream.push_outgoing(bytes)
            };
            if let Ok(frames) = frames {
                for frame in &frames {
                    self.st.process_outbound_frame(self.sys, frame);
                }
            }
            self.sys.write(conn, bytes)
        } else {
            self.sys.write(conn, bytes)
        }
    }

    fn read(&mut self, conn: ConnId, max: usize) -> Result<ReadOutcome, SysError> {
        if let Some(stream) = self
            .st
            .client_streams
            .get_mut(&conn)
            .or_else(|| self.st.out_streams.get_mut(&conn))
        {
            Ok(stream.read(max))
        } else {
            self.sys.read(conn, max)
        }
    }

    fn close(&mut self, conn: ConnId) {
        self.st.client_streams.remove(&conn);
        self.st.out_streams.remove(&conn);
        self.st.request_keys.remove(&conn);
        self.sys.close(conn);
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        debug_assert!(
            !is_intercept_token(token),
            "application timer tokens must stay below the interceptor namespace"
        );
        self.sys.set_timer(after, token)
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        self.sys.cancel_timer(timer)
    }

    fn spawn(
        &mut self,
        node: simnet::NodeId,
        name: &str,
        factory: ProcessFactory,
    ) -> Result<ProcessId, SysError> {
        self.sys.spawn(node, name, factory)
    }

    fn exit(&mut self, reason: ExitReason) {
        self.sys.exit(reason)
    }

    fn charge_cpu(&mut self, cost: SimDuration) {
        self.sys.charge_cpu(cost)
    }

    fn rng(&mut self) -> &mut SimRng {
        self.sys.rng()
    }

    fn tag_conn(&mut self, conn: ConnId, tag: &'static str) {
        self.sys.tag_conn(conn, tag)
    }

    fn count(&mut self, counter: &'static str, delta: u64) {
        self.sys.count(counter, delta)
    }

    fn mark(&mut self, series: &'static str) {
        self.sys.mark(series)
    }

    fn trace(&mut self, message: &str) {
        self.sys.trace(message)
    }

    fn emit(&mut self, kind: EventKind) {
        self.sys.emit(kind)
    }
}
