//! The MEAD Recovery Manager.
//!
//! Section 3.3: "the MEAD Recovery Manager is responsible for launching
//! new server replicas that restore the application's resilience after a
//! server replica or a node crashes. ... By subscribing to the same group,
//! the Recovery Manager can receive membership-change notifications. ...
//! The Recovery Manager also receives messages from the MEAD Proactive
//! Fault-Tolerance Manager whenever the Fault-Tolerance Manager
//! anticipates that a server replica is about to fail."
//!
//! Replicas are organised into `target_degree` *slots*; each slot has at
//! most one intended live instance, bound in the Naming Service under
//! `replicas/slot<k>`. A relaunched instance gets a **fresh port**, which
//! is what makes cached references to the dead instance stale (the
//! `TRANSIENT` exceptions of section 5.2.1).
//!
//! The Recovery Manager is deliberately a single point of failure, exactly
//! as the paper admits of its own implementation.

use std::collections::BTreeMap;
use std::rc::Rc;

use groupcomm::{GcsClient, GcsDelivery};
use simnet::{Event, NodeId, Port, Process, SimDuration, SimTime, SysApi};

use crate::config::MeadConfig;
use crate::directory::{replica_member_name, slot_of_member, REPLICA_PREFIX};
use crate::messages::GroupMsg;

/// Parameters handed to the replica factory for each launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// The slot this instance fills (0-based).
    pub slot: u32,
    /// Fresh listen port assigned by the Recovery Manager.
    pub port: Port,
    /// Node the instance will run on.
    pub node: NodeId,
}

/// Builds a replica process (application wrapped in a server interceptor)
/// for a given spec. Provided by the experiment harness.
pub type ReplicaFactory = Rc<dyn Fn(&ReplicaSpec) -> Box<dyn simnet::Process>>;

const TOKEN_GCS: u64 = 1;
const TOKEN_TICK: u64 = 2;

#[derive(Debug, Default)]
struct SlotState {
    /// Member name we are waiting to see join, with launch time.
    pending: Option<(String, SimTime)>,
}

/// The Recovery Manager process.
pub struct RecoveryManager {
    cfg: MeadConfig,
    gcs: Option<GcsClient>,
    factory: ReplicaFactory,
    replica_nodes: Vec<NodeId>,
    target_degree: u32,
    next_port: u16,
    slots: BTreeMap<u32, SlotState>,
    last_view: Vec<String>,
    initial_launched: bool,
    pending_timeout: SimDuration,
}

impl RecoveryManager {
    /// Creates a manager maintaining `target_degree` replicas spread over
    /// `replica_nodes`, built by `factory`.
    pub fn new(
        cfg: MeadConfig,
        target_degree: u32,
        replica_nodes: Vec<NodeId>,
        factory: ReplicaFactory,
    ) -> Self {
        assert!(target_degree > 0, "need at least one replica");
        assert!(!replica_nodes.is_empty(), "need at least one server node");
        RecoveryManager {
            cfg,
            gcs: None,
            factory,
            replica_nodes,
            target_degree,
            next_port: 20000,
            slots: BTreeMap::new(),
            last_view: Vec::new(),
            initial_launched: false,
            pending_timeout: SimDuration::from_millis(1000),
        }
    }

    /// The Naming Service binding name for a slot.
    pub fn slot_binding(slot: u32) -> String {
        format!("replicas/slot{slot}")
    }

    fn launch(&mut self, sys: &mut dyn SysApi, slot: u32) {
        let port = Port(self.next_port);
        self.next_port += 1;
        let label = format!("replica-s{slot}");
        // Preferred placement is the slot's home node; when it is down
        // (node-crash fault), fall back to the other server nodes — the
        // paper's fault model includes node crashes even though its
        // evaluation only kills processes.
        let n = self.replica_nodes.len();
        for attempt in 0..n {
            let node = self.replica_nodes[(slot as usize + attempt) % n];
            let spec = ReplicaSpec { slot, port, node };
            let proc_box = (self.factory)(&spec);
            match sys.spawn(node, &label, Box::new(move || proc_box)) {
                Ok(pid) => {
                    sys.count("rm.launches", 1);
                    if attempt > 0 {
                        sys.count("rm.fallback_placements", 1);
                    }
                    sys.trace(&format!("launched slot {slot} on {node} port {port}"));
                    let expected = replica_member_name(slot, pid.raw());
                    self.slots.entry(slot).or_default().pending = Some((expected, sys.now()));
                    return;
                }
                Err(e) => {
                    sys.trace(&format!("launch of slot {slot} on {node} failed: {e}"));
                }
            }
        }
        sys.count("rm.launch_failed", 1);
    }

    fn slot_is_live(&self, slot: u32) -> bool {
        let prefix = format!("{REPLICA_PREFIX}{slot}/");
        self.last_view.iter().any(|m| m.starts_with(&prefix))
    }

    /// Core reconciliation: make every slot either live or pending.
    fn ensure_degree(&mut self, sys: &mut dyn SysApi) {
        let now = sys.now();
        for slot in 0..self.target_degree {
            // Clear fulfilled or expired pendings.
            let entry = self.slots.entry(slot).or_default();
            if let Some((expected, since)) = entry.pending.clone() {
                if self.last_view.contains(&expected) {
                    self.slots.entry(slot).or_default().pending = None;
                } else if now.saturating_since(since) > self.pending_timeout {
                    sys.count("rm.pending_expired", 1);
                    self.slots.entry(slot).or_default().pending = None;
                }
            }
            let pending = self.slots.entry(slot).or_default().pending.is_some();
            if !self.slot_is_live(slot) && !pending {
                self.launch(sys, slot);
            }
        }
    }
}

impl Process for RecoveryManager {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        let mut gcs = GcsClient::new("mgr/recovery", TOKEN_GCS);
        gcs.start(sys);
        let group = self.cfg.server_group.clone();
        gcs.join(sys, &group);
        self.gcs = Some(gcs);
        sys.set_timer(SimDuration::from_millis(100), TOKEN_TICK);
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event) {
        if let Event::TimerFired {
            token: TOKEN_TICK, ..
        } = event
        {
            if self.initial_launched {
                self.ensure_degree(sys);
            }
            sys.set_timer(SimDuration::from_millis(100), TOKEN_TICK);
            return;
        }
        let deliveries = self
            .gcs
            .as_mut()
            .and_then(|gcs| gcs.handle_event(sys, &event));
        let Some(deliveries) = deliveries else {
            return;
        };
        for d in deliveries {
            match d {
                GcsDelivery::Ready => {
                    // Initial deployment of the replicated server.
                    if !self.initial_launched {
                        self.initial_launched = true;
                        for slot in 0..self.target_degree {
                            self.launch(sys, slot);
                        }
                    }
                }
                GcsDelivery::View { group, members, .. } if group == self.cfg.server_group => {
                    self.last_view = members;
                    sys.count("rm.views", 1);
                    if self.initial_launched {
                        self.ensure_degree(sys);
                    }
                }
                GcsDelivery::Message { payload, .. } => {
                    if let Ok(GroupMsg::LaunchRequest { member }) = GroupMsg::decode(&payload) {
                        // Proactive fault notification (section 3.3): pre-
                        // launch the replacement before the failure.
                        sys.count("rm.proactive_notices", 1);
                        if let Some(slot) = slot_of_member(&member) {
                            let already_pending = self
                                .slots
                                .get(&slot)
                                .map(|s| s.pending.is_some())
                                .unwrap_or(false);
                            // Skip if a replacement instance for this slot
                            // is already live alongside the notifier.
                            let prefix = format!("{REPLICA_PREFIX}{slot}/");
                            let live_instances = self
                                .last_view
                                .iter()
                                .filter(|m| m.starts_with(&prefix))
                                .count();
                            if !already_pending && live_instances < 2 {
                                self.launch(sys, slot);
                            }
                        }
                    }
                }
                GcsDelivery::DaemonLost => sys.count("rm.gcs_lost", 1),
                GcsDelivery::View { .. } => {}
            }
        }
    }

    fn label(&self) -> &str {
        "recovery-manager"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_binding_names() {
        assert_eq!(RecoveryManager::slot_binding(0), "replicas/slot0");
        assert_eq!(RecoveryManager::slot_binding(2), "replicas/slot2");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_degree_rejected() {
        let factory: ReplicaFactory = Rc::new(|_spec| unreachable!("never launched"));
        let _ = RecoveryManager::new(
            MeadConfig::paper(crate::RecoveryScheme::MeadFailover),
            0,
            vec![NodeId::from_index(0)],
            factory,
        );
    }
}
