//! The MEAD Recovery Manager.
//!
//! Section 3.3: "the MEAD Recovery Manager is responsible for launching
//! new server replicas that restore the application's resilience after a
//! server replica or a node crashes. ... By subscribing to the same group,
//! the Recovery Manager can receive membership-change notifications. ...
//! The Recovery Manager also receives messages from the MEAD Proactive
//! Fault-Tolerance Manager whenever the Fault-Tolerance Manager
//! anticipates that a server replica is about to fail."
//!
//! Replicas are organised into `target_degree` *slots*; each slot has at
//! most one intended live instance, bound in the Naming Service under
//! `replicas/slot<k>`. A relaunched instance gets a **fresh port**, which
//! is what makes cached references to the dead instance stale (the
//! `TRANSIENT` exceptions of section 5.2.1).
//!
//! The Recovery Manager is deliberately a single point of failure, exactly
//! as the paper admits of its own implementation — in its default
//! configuration. With [`MeadConfig::rm_instances`] > 1 the manager is
//! itself replicated warm-passively (DESIGN §8): instances join a
//! manager group, the first member of the group's view (join order) is
//! the leader and the only instance that launches replicas, and the
//! leader multicasts its launch state ([`GroupMsg::RmState`]) so a
//! standby that takes over after a crash continues the port sequence and
//! outstanding launches instead of duplicating them.

use std::collections::BTreeMap;
use std::rc::Rc;

use groupcomm::{GcsClient, GcsDelivery};
use obs::{EventKind, Phase};
use simnet::{Event, NodeId, Port, Process, SimDuration, SimTime, SysApi};

use crate::config::MeadConfig;
use crate::directory::{replica_member_name, slot_of_member, MemberName, Slot, REPLICA_PREFIX};
use crate::messages::GroupMsg;

/// Parameters handed to the replica factory for each launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// The slot this instance fills (0-based).
    pub slot: Slot,
    /// Fresh listen port assigned by the Recovery Manager.
    pub port: Port,
    /// Node the instance will run on.
    pub node: NodeId,
}

/// Builds a replica process (application wrapped in a server interceptor)
/// for a given spec. Provided by the experiment harness.
pub type ReplicaFactory = Rc<dyn Fn(&ReplicaSpec) -> Box<dyn simnet::Process>>;

const TOKEN_GCS: u64 = 1;
const TOKEN_TICK: u64 = 2;

#[derive(Debug, Default)]
struct SlotState {
    /// Member name we are waiting to see join, with launch time.
    pending: Option<(MemberName, SimTime)>,
}

/// The Recovery Manager process.
pub struct RecoveryManager {
    cfg: MeadConfig,
    gcs: Option<GcsClient>,
    factory: ReplicaFactory,
    replica_nodes: Vec<NodeId>,
    target_degree: u32,
    next_port: u16,
    slots: BTreeMap<Slot, SlotState>,
    last_view: Vec<String>,
    initial_launched: bool,
    pending_timeout: SimDuration,
    /// `true` when this instance takes part in manager-group leader
    /// election (legacy single-instance managers never join the group,
    /// keeping the paper topology byte-identical).
    replicated: bool,
    member_name: String,
    manager_view: Vec<String>,
    seen_manager_view: bool,
    was_leader: bool,
    /// Launch state changed since the last [`GroupMsg::RmState`] share.
    dirty: bool,
}

impl RecoveryManager {
    /// Creates a manager maintaining `target_degree` replicas spread over
    /// `replica_nodes`, built by `factory`.
    pub fn new(
        cfg: MeadConfig,
        target_degree: u32,
        replica_nodes: Vec<NodeId>,
        factory: ReplicaFactory,
    ) -> Self {
        assert!(target_degree > 0, "need at least one replica");
        assert!(!replica_nodes.is_empty(), "need at least one server node");
        RecoveryManager {
            cfg,
            gcs: None,
            factory,
            replica_nodes,
            target_degree,
            next_port: 20000,
            slots: BTreeMap::new(),
            last_view: Vec::new(),
            initial_launched: false,
            pending_timeout: SimDuration::from_millis(1000),
            replicated: false,
            member_name: "mgr/recovery".to_string(),
            manager_view: Vec::new(),
            seen_manager_view: false,
            was_leader: false,
            dirty: false,
        }
    }

    /// Creates manager instance `instance` of a warm-passively replicated
    /// Recovery Manager deployment (`cfg.rm_instances` of them; spawn one
    /// per call). Instances elect the first member of the manager-group
    /// view as leader.
    pub fn replicated(
        cfg: MeadConfig,
        target_degree: u32,
        replica_nodes: Vec<NodeId>,
        factory: ReplicaFactory,
        instance: u32,
    ) -> Self {
        let mut rm = RecoveryManager::new(cfg, target_degree, replica_nodes, factory);
        rm.replicated = true;
        rm.member_name = format!("mgr/recovery/{instance}");
        rm
    }

    /// Leader = first manager-group member in join order; a legacy
    /// single-instance manager is always the leader.
    fn is_leader(&self) -> bool {
        !self.replicated || self.manager_view.first() == Some(&self.member_name)
    }

    /// Multicasts the launch state to standby instances when it changed.
    fn share_state(&mut self, sys: &mut dyn SysApi) {
        if !self.replicated || !self.dirty || !self.is_leader() {
            return;
        }
        self.dirty = false;
        let pendings: Vec<(u32, String)> = self
            .slots
            .iter()
            .filter_map(|(slot, s)| {
                s.pending
                    .as_ref()
                    .map(|(m, _)| (slot.index(), m.as_str().to_string()))
            })
            .collect();
        let msg = GroupMsg::RmState {
            next_port: self.next_port,
            pendings,
        };
        let group = self.cfg.manager_group.clone();
        if let Some(gcs) = self.gcs.as_mut() {
            gcs.multicast(sys, &group, &msg.encode());
        }
    }

    /// Applies a leader's [`GroupMsg::RmState`] on a standby.
    fn absorb_state(&mut self, sys: &mut dyn SysApi, next_port: u16, pendings: Vec<(u32, String)>) {
        self.next_port = self.next_port.max(next_port);
        let now = sys.now();
        for slot in (0..self.target_degree).map(Slot) {
            let pending = pendings
                .iter()
                .find(|(s, _)| *s == slot.index())
                .map(|(_, m)| (MemberName::from(m.as_str()), now));
            self.slots.entry(slot).or_default().pending = pending;
        }
        // A leader that launches exists: a takeover must reconcile, not
        // redo the initial deployment.
        self.initial_launched = true;
    }

    /// The Naming Service binding name for a slot.
    pub fn slot_binding(slot: Slot) -> String {
        format!("replicas/slot{slot}")
    }

    fn launch(&mut self, sys: &mut dyn SysApi, slot: Slot) {
        let port = Port(self.next_port);
        self.next_port += 1;
        let label = format!("replica-s{slot}");
        // Preferred placement is the slot's home node; when it is down
        // (node-crash fault), fall back to the other server nodes — the
        // paper's fault model includes node crashes even though its
        // evaluation only kills processes.
        let n = self.replica_nodes.len();
        for attempt in 0..n {
            let node = self.replica_nodes[(slot.index() as usize + attempt) % n];
            let spec = ReplicaSpec { slot, port, node };
            let proc_box = (self.factory)(&spec);
            match sys.spawn(node, &label, Box::new(move || proc_box)) {
                Ok(pid) => {
                    sys.count("rm.launches", 1);
                    sys.emit(EventKind::Phase(Phase::ReplicaLaunch));
                    if attempt > 0 {
                        sys.count("rm.fallback_placements", 1);
                    }
                    sys.trace(&format!("launched slot {slot} on {node} port {port}"));
                    let expected = replica_member_name(slot, pid.raw());
                    self.slots.entry(slot).or_default().pending = Some((expected, sys.now()));
                    self.dirty = true;
                    return;
                }
                Err(e) => {
                    sys.trace(&format!("launch of slot {slot} on {node} failed: {e}"));
                }
            }
        }
        sys.count("rm.launch_failed", 1);
    }

    fn slot_is_live(&self, slot: Slot) -> bool {
        let prefix = format!("{REPLICA_PREFIX}{slot}/");
        self.last_view.iter().any(|m| m.starts_with(&prefix))
    }

    /// Core reconciliation: make every slot either live or pending.
    fn ensure_degree(&mut self, sys: &mut dyn SysApi) {
        let now = sys.now();
        for slot in (0..self.target_degree).map(Slot) {
            // Clear fulfilled or expired pendings.
            let entry = self.slots.entry(slot).or_default();
            if let Some((expected, since)) = entry.pending.clone() {
                if self.last_view.iter().any(|m| expected == m.as_str()) {
                    self.slots.entry(slot).or_default().pending = None;
                    self.dirty = true;
                } else if now.saturating_since(since) > self.pending_timeout {
                    sys.count("rm.pending_expired", 1);
                    self.slots.entry(slot).or_default().pending = None;
                    self.dirty = true;
                }
            }
            let pending = self.slots.entry(slot).or_default().pending.is_some();
            if !self.slot_is_live(slot) && !pending {
                self.launch(sys, slot);
            }
        }
    }
}

impl Process for RecoveryManager {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        let mut gcs = GcsClient::new(self.member_name.clone(), TOKEN_GCS);
        gcs.start(sys);
        let group = self.cfg.server_group.clone();
        gcs.join(sys, &group);
        if self.replicated {
            let managers = self.cfg.manager_group.clone();
            gcs.join(sys, &managers);
        }
        self.gcs = Some(gcs);
        sys.set_timer(SimDuration::from_millis(100), TOKEN_TICK);
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event) {
        if let Event::TimerFired {
            token: TOKEN_TICK, ..
        } = event
        {
            if self.initial_launched && self.is_leader() {
                self.ensure_degree(sys);
                self.share_state(sys);
            }
            sys.set_timer(SimDuration::from_millis(100), TOKEN_TICK);
            return;
        }
        let deliveries = self
            .gcs
            .as_mut()
            .and_then(|gcs| gcs.handle_event(sys, &event));
        let Some(deliveries) = deliveries else {
            return;
        };
        for d in deliveries {
            match d {
                GcsDelivery::Ready => {
                    // Initial deployment of the replicated server. A
                    // replicated manager waits for the manager-group view
                    // to know whether it is the leader.
                    if !self.initial_launched && !self.replicated {
                        self.initial_launched = true;
                        for slot in (0..self.target_degree).map(Slot) {
                            self.launch(sys, slot);
                        }
                    }
                }
                GcsDelivery::View { group, members, .. } if group == self.cfg.server_group => {
                    self.last_view = members;
                    sys.count("rm.views", 1);
                    if self.initial_launched && self.is_leader() {
                        self.ensure_degree(sys);
                        self.share_state(sys);
                    }
                }
                GcsDelivery::View { group, members, .. }
                    if self.replicated && group == self.cfg.manager_group =>
                {
                    self.manager_view = members;
                    let leader = self.is_leader();
                    if leader && !self.was_leader {
                        if !self.seen_manager_view {
                            // First view at boot: the initial deployment.
                            if !self.initial_launched {
                                self.initial_launched = true;
                                for slot in (0..self.target_degree).map(Slot) {
                                    self.launch(sys, slot);
                                }
                                self.share_state(sys);
                            }
                        } else {
                            // The previous leader died: take over. Give
                            // inherited pendings a fresh grace period —
                            // their wall clocks started on another
                            // instance.
                            sys.count("rm.leader_elections", 1);
                            sys.trace("taking over as recovery-manager leader");
                            self.initial_launched = true;
                            let now = sys.now();
                            for s in self.slots.values_mut() {
                                if let Some((_, since)) = s.pending.as_mut() {
                                    *since = now;
                                }
                            }
                            self.ensure_degree(sys);
                            self.share_state(sys);
                        }
                    }
                    self.was_leader = leader;
                    self.seen_manager_view = true;
                }
                GcsDelivery::Message { payload, .. } => match GroupMsg::decode(&payload) {
                    Ok(GroupMsg::LaunchRequest { member }) => {
                        if !self.is_leader() {
                            continue;
                        }
                        // Proactive fault notification (section 3.3): pre-
                        // launch the replacement before the failure.
                        sys.count("rm.proactive_notices", 1);
                        if let Some(slot) = slot_of_member(&member) {
                            let already_pending = self
                                .slots
                                .get(&slot)
                                .map(|s| s.pending.is_some())
                                .unwrap_or(false);
                            // Skip if a replacement instance for this slot
                            // is already live alongside the notifier.
                            let prefix = format!("{REPLICA_PREFIX}{slot}/");
                            let live_instances = self
                                .last_view
                                .iter()
                                .filter(|m| m.starts_with(&prefix))
                                .count();
                            if !already_pending && live_instances < 2 {
                                self.launch(sys, slot);
                                self.share_state(sys);
                            }
                        }
                    }
                    Ok(GroupMsg::RmState {
                        next_port,
                        pendings,
                    }) => {
                        if self.replicated && !self.is_leader() {
                            self.absorb_state(sys, next_port, pendings);
                        }
                    }
                    // Replica-to-replica traffic on the shared group; not
                    // addressed to the Recovery Manager.
                    Ok(
                        GroupMsg::AddrAdvert { .. }
                        | GroupMsg::IorAdvert { .. }
                        | GroupMsg::SyncList { .. }
                        | GroupMsg::AddressQuery { .. }
                        | GroupMsg::AddressReply { .. }
                        | GroupMsg::Checkpoint { .. },
                    ) => {}
                    Err(e) => {
                        // A corrupted frame is a fault to surface, not a
                        // message to silently drop (chaos satellite).
                        sys.count("rm.bad_group_msg", 1);
                        sys.trace(&format!("undecodable group message: {e}"));
                    }
                },
                GcsDelivery::DaemonLost => {
                    sys.count("rm.gcs_lost", 1);
                    // A replicated instance cannot claim leadership on a
                    // stale view: demote until the re-attached daemon
                    // delivers a fresh manager-group view (otherwise two
                    // leaders could launch replicas concurrently).
                    if self.replicated {
                        self.manager_view.clear();
                        self.was_leader = false;
                    }
                }
                GcsDelivery::View { .. } => {}
            }
        }
    }

    fn label(&self) -> &str {
        "recovery-manager"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_binding_names() {
        assert_eq!(RecoveryManager::slot_binding(Slot(0)), "replicas/slot0");
        assert_eq!(RecoveryManager::slot_binding(Slot(2)), "replicas/slot2");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_degree_rejected() {
        let factory: ReplicaFactory = Rc::new(|_spec| unreachable!("never launched"));
        let _ = RecoveryManager::new(
            MeadConfig::builder(crate::RecoveryScheme::MeadFailover).build(),
            0,
            vec![NodeId::from_index(0)],
            factory,
        );
    }
}
