//! MEAD control-message formats.
//!
//! Two transports carry MEAD control traffic:
//!
//! 1. **Piggyback frames** on client/server GIOP connections: 12-byte
//!    `"MEAD"`-magic frames interleaved with GIOP frames (the client-side
//!    interceptor's `read()` filters them out — section 3.1). The only
//!    piggybacked message is the proactive fail-over notice of section 4.3,
//!    sized to match the paper's "100–150 bytes per client-server
//!    connection".
//! 2. **Group multicasts** among MEAD components (Fault-Tolerance Managers
//!    and the Recovery Manager) over the `groupcomm` substrate: replica
//!    address/IOR adverts, proactive fault notifications, active-server
//!    synchronisation, and the address query/reply pair used by the
//!    `NEEDS_ADDRESSING_MODE` scheme.

use bytes::Bytes;
use giop::{encode_frame, CdrReader, CdrWriter, Endian, Frame, Ior, MEAD_MAGIC};
use obs::{CodecError, WireCodec};

/// The proactive fail-over notice piggybacked onto GIOP replies
/// (section 4.3): "a MEAD proactive fail-over message containing the
/// address of the next available replica in the group".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailoverNotice {
    /// Host of the next available replica, e.g. `"node2"`.
    pub host: String,
    /// Port of the next available replica.
    pub port: u16,
    /// Member name of the failing replica (diagnostics).
    pub from_member: String,
    /// Padding bringing the frame into the paper's 100–150 byte range.
    pub pad: Vec<u8>,
}

impl FailoverNotice {
    /// Builds a notice padded to ≈128 bytes on the wire.
    pub fn new(host: &str, port: u16, from_member: &str) -> Self {
        let base = 12 + 1 + 8 + host.len() + 2 + 8 + from_member.len() + 4;
        let pad = vec![0u8; 128usize.saturating_sub(base)];
        FailoverNotice {
            host: host.to_string(),
            port,
            from_member: from_member.to_string(),
            pad,
        }
    }

    /// Encodes as a complete `"MEAD"` frame.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_wire().to_vec()
    }

    /// Decodes from a split [`Frame`] (must carry the MEAD magic).
    ///
    /// # Errors
    ///
    /// [`CodecError`] on foreign or malformed frames.
    pub fn decode(frame: &Frame) -> Result<Self, CodecError> {
        Self::decode_wire(&frame.bytes)
    }
}

impl WireCodec for FailoverNotice {
    const PROTOCOL: &'static str = "mead";

    fn frame_name(&self) -> &'static str {
        "failover_notice"
    }

    fn encode_wire(&self) -> Bytes {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u8(1); // kind
        w.write_string(&self.host);
        w.write_u16(self.port);
        w.write_string(&self.from_member);
        w.write_octets(&self.pad);
        encode_frame(MEAD_MAGIC, 1, Endian::Big, &w.finish())
    }

    fn decode_wire(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 12 || bytes[0..4] != MEAD_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut r = CdrReader::new(bytes[12..].to_vec().into(), Endian::Big);
        let kind = r.read_u8()?;
        if kind != 1 {
            return Err(CodecError::UnknownKind(kind));
        }
        Ok(FailoverNotice {
            host: r.read_string()?,
            port: r.read_u16()?,
            from_member: r.read_string()?,
            pad: r.read_octets()?,
        })
    }
}

/// Control messages multicast among MEAD components over group
/// communication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupMsg {
    /// A replica's Fault-Tolerance Manager advertises its transport address
    /// (intercepted from `listen()`, section 4.3).
    AddrAdvert {
        /// Advertising member.
        member: String,
        /// Listen host.
        host: String,
        /// Listen port.
        port: u16,
    },
    /// A replica's Fault-Tolerance Manager advertises an object IOR
    /// (intercepted from the Naming Service registration, section 4.1).
    IorAdvert {
        /// Advertising member.
        member: String,
        /// The advertised object reference.
        ior: Ior,
    },
    /// Proactive fault notification to the Recovery Manager: first
    /// threshold crossed, launch a replacement (section 3.2).
    LaunchRequest {
        /// The member expecting to fail.
        member: String,
    },
    /// The "first replica listed" synchronises the active-server listing
    /// across the group (section 4.3).
    SyncList {
        /// Known (member, host, port) triples.
        entries: Vec<(String, String, u16)>,
    },
    /// Client-side interceptor asking for the current primary's address
    /// after detecting an abrupt failure (section 4.2).
    AddressQuery {
        /// Group the answer should be multicast to.
        reply_group: String,
    },
    /// Answer to [`GroupMsg::AddressQuery`], sent by the first live
    /// replica in the view.
    AddressReply {
        /// Responding member.
        member: String,
        /// Primary's host.
        host: String,
        /// Primary's port.
        port: u16,
    },
    /// Warm-passive state checkpoint from the primary to the backups.
    Checkpoint {
        /// Checkpointing member.
        member: String,
        /// Opaque application state.
        state: Vec<u8>,
    },
    /// Warm-passive Recovery-Manager state, multicast by the RM leader to
    /// its standbys after every launch decision so a takeover continues
    /// the port sequence and pending launches instead of restarting them.
    RmState {
        /// Next fresh replica port the leader will assign.
        next_port: u16,
        /// Outstanding launches as `(slot, expected member name)`.
        pendings: Vec<(u32, String)>,
    },
}

impl GroupMsg {
    fn kind(&self) -> u8 {
        match self {
            GroupMsg::AddrAdvert { .. } => 0,
            GroupMsg::IorAdvert { .. } => 1,
            GroupMsg::LaunchRequest { .. } => 2,
            GroupMsg::SyncList { .. } => 3,
            GroupMsg::AddressQuery { .. } => 4,
            GroupMsg::AddressReply { .. } => 5,
            GroupMsg::Checkpoint { .. } => 6,
            GroupMsg::RmState { .. } => 7,
        }
    }

    /// Encodes for multicast.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_wire().to_vec()
    }

    /// Decodes a multicast payload.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on malformed input.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        Self::decode_wire(payload)
    }
}

impl WireCodec for GroupMsg {
    const PROTOCOL: &'static str = "mead-group";

    fn frame_name(&self) -> &'static str {
        match self {
            GroupMsg::AddrAdvert { .. } => "addr_advert",
            GroupMsg::IorAdvert { .. } => "ior_advert",
            GroupMsg::LaunchRequest { .. } => "launch_request",
            GroupMsg::SyncList { .. } => "sync_list",
            GroupMsg::AddressQuery { .. } => "address_query",
            GroupMsg::AddressReply { .. } => "address_reply",
            GroupMsg::Checkpoint { .. } => "checkpoint",
            GroupMsg::RmState { .. } => "rm_state",
        }
    }

    fn encode_wire(&self) -> Bytes {
        let mut w = CdrWriter::new(Endian::Big);
        w.write_u8(self.kind());
        match self {
            GroupMsg::AddrAdvert { member, host, port } => {
                w.write_string(member);
                w.write_string(host);
                w.write_u16(*port);
            }
            GroupMsg::IorAdvert { member, ior } => {
                w.write_string(member);
                w.write_octets(&ior.encode());
            }
            GroupMsg::LaunchRequest { member } => w.write_string(member),
            GroupMsg::SyncList { entries } => {
                w.write_u32(giop::wire_len(entries.len()));
                for (m, h, p) in entries {
                    w.write_string(m);
                    w.write_string(h);
                    w.write_u16(*p);
                }
            }
            GroupMsg::AddressQuery { reply_group } => w.write_string(reply_group),
            GroupMsg::AddressReply { member, host, port } => {
                w.write_string(member);
                w.write_string(host);
                w.write_u16(*port);
            }
            GroupMsg::Checkpoint { member, state } => {
                w.write_string(member);
                w.write_octets(state);
            }
            GroupMsg::RmState {
                next_port,
                pendings,
            } => {
                w.write_u16(*next_port);
                w.write_u32(giop::wire_len(pendings.len()));
                for (slot, member) in pendings {
                    w.write_u32(*slot);
                    w.write_string(member);
                }
            }
        }
        w.finish()
    }

    fn decode_wire(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = CdrReader::new(payload.to_vec().into(), Endian::Big);
        let kind = r.read_u8()?;
        Ok(match kind {
            0 => GroupMsg::AddrAdvert {
                member: r.read_string()?,
                host: r.read_string()?,
                port: r.read_u16()?,
            },
            1 => GroupMsg::IorAdvert {
                member: r.read_string()?,
                ior: Ior::decode(&r.read_octets()?)?,
            },
            2 => GroupMsg::LaunchRequest {
                member: r.read_string()?,
            },
            3 => {
                let n = r.read_u32()?;
                let mut entries = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    let m = r.read_string()?;
                    let h = r.read_string()?;
                    let p = r.read_u16()?;
                    entries.push((m, h, p));
                }
                GroupMsg::SyncList { entries }
            }
            4 => GroupMsg::AddressQuery {
                reply_group: r.read_string()?,
            },
            5 => GroupMsg::AddressReply {
                member: r.read_string()?,
                host: r.read_string()?,
                port: r.read_u16()?,
            },
            6 => GroupMsg::Checkpoint {
                member: r.read_string()?,
                state: r.read_octets()?,
            },
            7 => {
                let next_port = r.read_u16()?;
                let n = r.read_u32()?;
                let mut pendings = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    let slot = r.read_u32()?;
                    let member = r.read_string()?;
                    pendings.push((slot, member));
                }
                GroupMsg::RmState {
                    next_port,
                    pendings,
                }
            }
            other => return Err(CodecError::UnknownKind(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giop::{FrameSplitter, ObjectKey};

    #[test]
    fn failover_notice_roundtrips_through_frame_splitter() {
        let notice = FailoverNotice::new("node3", 20001, "replica/7");
        let wire = notice.encode();
        let mut s = FrameSplitter::new();
        s.push(&wire);
        let frame = s.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, giop::FrameKind::Mead);
        assert_eq!(FailoverNotice::decode(&frame).unwrap(), notice);
    }

    #[test]
    fn failover_notice_is_within_paper_size_range() {
        let wire = FailoverNotice::new("node3", 20001, "replica/7").encode();
        assert!(
            (100..=150).contains(&wire.len()),
            "paper: 100-150 bytes, got {}",
            wire.len()
        );
    }

    #[test]
    fn group_messages_roundtrip() {
        let ior = Ior::singleton("IDL:T:1.0", "node1", 9, ObjectKey::persistent("P", "O"));
        let cases = vec![
            GroupMsg::AddrAdvert {
                member: "replica/1".into(),
                host: "node1".into(),
                port: 20000,
            },
            GroupMsg::IorAdvert {
                member: "replica/1".into(),
                ior,
            },
            GroupMsg::LaunchRequest {
                member: "replica/2".into(),
            },
            GroupMsg::SyncList {
                entries: vec![
                    ("replica/1".into(), "node1".into(), 20000),
                    ("replica/2".into(), "node2".into(), 20001),
                ],
            },
            GroupMsg::AddressQuery {
                reply_group: "clients/17".into(),
            },
            GroupMsg::AddressReply {
                member: "replica/1".into(),
                host: "node1".into(),
                port: 20000,
            },
            GroupMsg::Checkpoint {
                member: "replica/1".into(),
                state: vec![9; 256],
            },
            GroupMsg::RmState {
                next_port: 20007,
                pendings: vec![(0, "replicas/0/44".into()), (2, "replicas/2/51".into())],
            },
        ];
        for msg in cases {
            assert_eq!(GroupMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_group_messages_error_not_panic() {
        let cases = vec![
            GroupMsg::SyncList {
                entries: vec![("m".into(), "h".into(), 1)],
            },
            GroupMsg::RmState {
                next_port: 20007,
                pendings: vec![(1, "replicas/1/9".into())],
            },
        ];
        for msg in cases {
            let wire = msg.encode();
            for cut in 0..wire.len() {
                assert!(GroupMsg::decode(&wire[..cut]).is_err());
            }
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(GroupMsg::decode(&[77]), Err(CodecError::UnknownKind(77)));
    }

    #[test]
    fn wire_codec_trait_round_trips_and_describes_frames() {
        let notice = FailoverNotice::new("node3", 20001, "replica/7");
        assert_eq!(
            FailoverNotice::decode_wire(&notice.encode_wire()).unwrap(),
            notice
        );
        match notice.frame_event() {
            obs::EventKind::Frame {
                protocol,
                frame,
                len,
            } => {
                assert_eq!(protocol, "mead");
                assert_eq!(frame, "failover_notice");
                assert_eq!(len as usize, notice.encode().len());
            }
            other => panic!("unexpected event {other:?}"),
        }
        let msg = GroupMsg::AddressQuery {
            reply_group: "clients/1".into(),
        };
        assert_eq!(GroupMsg::decode_wire(&msg.encode_wire()).unwrap(), msg);
        assert_eq!(msg.frame_name(), "address_query");
        // Foreign magic is a typed error, not a kind confusion.
        assert_eq!(
            FailoverNotice::decode_wire(&[0u8; 16]),
            Err(CodecError::BadMagic)
        );
    }
}
