//! The replicated server application (the *unmodified* CORBA server the
//! interceptor wraps).
//!
//! A [`ReplicaApp`] embeds a server ORB with the evaluation servant(s),
//! listens on the port its [`ReplicaSpec`](crate::ReplicaSpec) assigned,
//! and registers its objects with the Naming Service under the slot
//! binding name — re-registration after a restart is what refreshes stale
//! naming entries (section 5.2.1). It knows nothing about MEAD, faults or
//! group communication: everything proactive happens in the interceptor
//! underneath it, preserving the paper's transparency claim.

use giop::{Ior, ObjectKey};
use orb::{
    encode_bind, host_of, naming_ior, ClientOrb, ClientOrbConfig, Servant, ServerOrb,
    ServerOrbConfig, TimeOfDayServant, TIME_TYPE_ID,
};
use simnet::{Event, NodeId, Port, Process, SimDuration, SysApi};

/// Timer token for the periodic naming re-bind (outside the interceptor
/// token namespace, so the wrapping interceptor forwards it here).
const REBIND_TOKEN: u64 = 7_001;

/// The persistent object key shared by every replica of the time server
/// (persistent keys are what make cross-replica forwarding possible,
/// section 4).
pub fn time_object_key() -> ObjectKey {
    ObjectKey::persistent("TimePOA", "TimeOfDay")
}

/// An unmodified replicated server application.
pub struct ReplicaApp {
    orb: ServerOrb,
    client_orb: ClientOrb,
    naming_node: NodeId,
    bind_name: String,
    objects: Vec<(ObjectKey, String)>,
    port: Port,
    rebind_interval: Option<SimDuration>,
}

impl ReplicaApp {
    /// Creates the paper's time-of-day server for `slot`, listening on
    /// `port` and binding `replicas/slot<slot>` at the Naming Service on
    /// `naming_node`.
    pub fn time_server(slot: crate::Slot, port: Port, naming_node: NodeId) -> Self {
        let mut orb = ServerOrb::new(port, ServerOrbConfig::default());
        let key = time_object_key();
        orb.register(key.clone(), Box::new(TimeOfDayServant::default()));
        ReplicaApp {
            orb,
            client_orb: ClientOrb::new(ClientOrbConfig::default()),
            naming_node,
            bind_name: crate::RecoveryManager::slot_binding(slot),
            objects: vec![(key, TIME_TYPE_ID.to_string())],
            port,
            rebind_interval: None,
        }
    }

    /// Re-registers the naming bindings every `interval` (idempotent —
    /// the naming store has rebind semantics). Off by default: the paper
    /// topology binds once at startup. The chaos campaign enables it so
    /// bindings survive a Naming Service crash/restart, whose in-memory
    /// store comes back empty.
    pub fn with_rebind(mut self, interval: SimDuration) -> Self {
        self.rebind_interval = Some(interval);
        self
    }

    fn bind_all(&mut self, sys: &mut dyn SysApi) {
        let naming = naming_ior(self.naming_node);
        for (key, type_id) in self.objects.clone() {
            let ior = self.ior_for(sys, &key, &type_id);
            let body = encode_bind(&self.bind_name, &ior);
            let _ = self.client_orb.invoke(sys, &naming, "bind", &body);
        }
    }

    /// Adds another servant under `key`, also bound for forwarding.
    pub fn with_servant(
        mut self,
        key: ObjectKey,
        type_id: &str,
        servant: Box<dyn Servant>,
    ) -> Self {
        self.orb.register(key.clone(), servant);
        self.objects.push((key, type_id.to_string()));
        self
    }

    /// The IOR of this instance's object `key`.
    fn ior_for(&self, sys: &dyn SysApi, key: &ObjectKey, type_id: &str) -> Ior {
        Ior::singleton(type_id, &host_of(sys.my_node()), self.port.0, key.clone())
    }
}

impl Process for ReplicaApp {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        self.orb.start(sys);
        // Register with the Naming Service; a restarted instance re-binds
        // the slot name with its fresh address.
        self.bind_all(sys);
        if let Some(interval) = self.rebind_interval {
            sys.set_timer(interval, REBIND_TOKEN);
        }
    }

    fn on_event(&mut self, sys: &mut dyn SysApi, event: Event) {
        if let Event::TimerFired {
            token: REBIND_TOKEN,
            ..
        } = event
        {
            if let Some(interval) = self.rebind_interval {
                self.bind_all(sys);
                sys.set_timer(interval, REBIND_TOKEN);
            }
            return;
        }
        if self.client_orb.handle_event(sys, &event).is_some() {
            return; // naming-registration traffic
        }
        let _ = self.orb.handle_event(sys, &event);
    }

    fn label(&self) -> &str {
        "replica-app"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_key_is_persistent_and_shared() {
        assert_eq!(time_object_key(), time_object_key());
        assert_eq!(time_object_key().as_bytes().len(), ObjectKey::CANONICAL_LEN);
    }
}
