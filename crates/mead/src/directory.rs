//! The replica directory: who is in the group, in what order, and where.
//!
//! Each MEAD Fault-Tolerance Manager keeps this directory so it can pick
//! "the next non-faulty server replica in the group" (sections 4.1/4.3).
//! It is fed by GCS membership views, `AddrAdvert`/`IorAdvert` multicasts,
//! and the `SyncList` messages the first-listed replica sends after every
//! view change.
//!
//! Identity is typed: a replica slot is a [`Slot`] and a group member is a
//! [`MemberName`]. Member names still travel the wire as plain strings
//! (GCS views, `GroupMsg` adverts); the conversion happens once at the
//! directory boundary, so everything behind it is type-checked.

use std::collections::BTreeMap;
use std::fmt;

use giop::{Ior, ObjectKey};

/// Member-name prefix identifying replicas (other group members, like the
/// Recovery Manager, are ignored when selecting fail-over targets).
pub const REPLICA_PREFIX: &str = "replica/";

/// A replica slot index (0-based). The Recovery Manager maintains one
/// intended live instance per slot; slot numbers are stable across
/// relaunches while ports and pids change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot(pub u32);

impl Slot {
    /// The raw slot number.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A group-membership member name, e.g. `replica/2/77` or `mgr/recovery`.
///
/// Wraps the raw string that group-communication views and adverts carry,
/// adding the replica-name structure (`replica/<slot>/<pid>`) as methods.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberName(String);

impl MemberName {
    /// Wraps a raw member-name string.
    pub fn new(name: impl Into<String>) -> Self {
        MemberName(name.into())
    }

    /// The raw string, as it appears in views and on the wire.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `true` when this member is a replica (as opposed to, say, the
    /// Recovery Manager sharing the group).
    pub fn is_replica(&self) -> bool {
        self.0.starts_with(REPLICA_PREFIX)
    }

    /// The slot encoded in a replica member name, if any.
    pub fn slot(&self) -> Option<Slot> {
        slot_of_member(&self.0)
    }
}

impl fmt::Display for MemberName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for MemberName {
    fn from(s: String) -> Self {
        MemberName(s)
    }
}

impl From<&str> for MemberName {
    fn from(s: &str) -> Self {
        MemberName(s.to_string())
    }
}

impl AsRef<str> for MemberName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for MemberName {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for MemberName {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

/// Builds the canonical member name for a replica instance.
pub fn replica_member_name(slot: Slot, pid: u64) -> MemberName {
    MemberName(format!("{REPLICA_PREFIX}{slot}/{pid}"))
}

/// Extracts the slot number from a raw replica member name.
pub fn slot_of_member(member: &str) -> Option<Slot> {
    member
        .strip_prefix(REPLICA_PREFIX)?
        .split('/')
        .next()?
        .parse()
        .ok()
        .map(Slot)
}

/// Directory of live replicas and their advertised addresses/IORs.
#[derive(Clone, Debug, Default)]
pub struct ReplicaDirectory {
    /// Current view (all members, in view order).
    view: Vec<MemberName>,
    /// member -> (host, port)
    addrs: BTreeMap<MemberName, (String, u16)>,
    /// member -> advertised IORs, each stored with its precomputed 16-bit
    /// object-key hash (the point of section 4.1's optimisation is that
    /// the hash is computed once at registration, not per lookup).
    iors: BTreeMap<MemberName, Vec<(u16, Ior)>>,
}

impl ReplicaDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a new membership view (raw strings, straight off the GCS
    /// wire).
    ///
    /// Adverts of members that *departed* (present in the previous view,
    /// absent now) are garbage-collected so stale addresses are never
    /// handed out as fail-over targets. Adverts of processes not yet in
    /// the view are kept: a newcomer's advert may be ordered before its
    /// join view while the membership protocol deliberates.
    pub fn on_view(&mut self, members: Vec<String>) {
        let members: Vec<MemberName> = members.into_iter().map(MemberName).collect();
        let departed: Vec<MemberName> = self
            .view
            .iter()
            .filter(|m| !members.contains(m))
            .cloned()
            .collect();
        for m in &departed {
            self.addrs.remove(m);
            self.iors.remove(m);
        }
        self.view = members;
    }

    /// The current view, unfiltered.
    pub fn view(&self) -> &[MemberName] {
        &self.view
    }

    /// Live replicas, in view order.
    pub fn replicas(&self) -> impl Iterator<Item = &MemberName> {
        self.view.iter().filter(|m| m.is_replica())
    }

    /// Number of live replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas().count()
    }

    /// `true` if `member` is the first replica in the view (the paper's
    /// "first replica listed", responsible for sync and query answers).
    pub fn is_first_replica(&self, member: &MemberName) -> bool {
        self.replicas().next() == Some(member)
    }

    /// The first live replica, if any.
    pub fn first_replica(&self) -> Option<&MemberName> {
        self.replicas().next()
    }

    /// The next live replica after `member` in view order, wrapping, and
    /// excluding `member` itself — the fail-over target.
    pub fn next_after(&self, member: &MemberName) -> Option<&MemberName> {
        let replicas: Vec<&MemberName> = self.replicas().collect();
        if replicas.is_empty() {
            return None;
        }
        match replicas.iter().position(|m| *m == member) {
            Some(i) => {
                let next = replicas[(i + 1) % replicas.len()];
                (next != member).then_some(next)
            }
            // We are not (or no longer) in the view: any replica will do.
            None => Some(replicas[0]),
        }
    }

    /// Records an address advert (member name raw, off the wire).
    pub fn record_addr(&mut self, member: &str, host: &str, port: u16) {
        self.addrs
            .insert(MemberName::from(member), (host.to_string(), port));
    }

    /// Records an IOR advert (deduplicated by object key, hash computed
    /// once here).
    pub fn record_ior(&mut self, member: &str, ior: Ior) {
        let entry = self.iors.entry(MemberName::from(member)).or_default();
        let hash = ior
            .primary_profile()
            .map(|p| p.object_key.hash16())
            .unwrap_or(0);
        if let Some(profile) = ior.primary_profile() {
            entry.retain(|(_, existing)| {
                existing
                    .primary_profile()
                    .map(|p| p.object_key != profile.object_key)
                    .unwrap_or(true)
            });
        }
        entry.push((hash, ior));
    }

    /// Applies a `SyncList` of (member, host, port) triples.
    pub fn apply_sync(&mut self, entries: &[(String, String, u16)]) {
        for (m, h, p) in entries {
            self.addrs
                .insert(MemberName::from(m.as_str()), (h.clone(), *p));
        }
    }

    /// All known (member, host, port) triples, for emitting a `SyncList`.
    pub fn sync_entries(&self) -> Vec<(String, String, u16)> {
        self.addrs
            .iter()
            .map(|(m, (h, p))| (m.as_str().to_string(), h.clone(), *p))
            .collect()
    }

    /// Advertised address of `member`.
    pub fn addr_of(&self, member: &MemberName) -> Option<(&str, u16)> {
        self.addrs.get(member).map(|(h, p)| (h.as_str(), *p))
    }

    /// Looks up the IOR `member` advertises for `object_key`.
    ///
    /// With `use_hash` the comparison is by the 16-bit key hash first
    /// (section 4.1's optimisation), verified byte-wise on a hit; without
    /// it, byte-wise only (the ablation baseline).
    pub fn ior_of(
        &self,
        member: &MemberName,
        object_key: &ObjectKey,
        use_hash: bool,
    ) -> Option<&Ior> {
        let iors = self.iors.get(member)?;
        let wanted_hash = use_hash.then(|| object_key.hash16());
        iors.iter()
            .find(|(stored_hash, ior)| {
                if let Some(h) = wanted_hash {
                    // Cheap 16-bit comparison first; verify bytes on a hit.
                    if *stored_hash != h {
                        return false;
                    }
                }
                ior.primary_profile()
                    .map(|p| p.object_key == *object_key)
                    .unwrap_or(false)
            })
            .map(|(_, ior)| ior)
    }

    /// Number of IORs known for `member` (IOR-table footprint; the paper
    /// notes this state grows with the number of server objects).
    pub fn ior_count(&self, member: &MemberName) -> usize {
        self.iors.get(member).map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ior(host: &str, port: u16, obj: &str) -> Ior {
        Ior::singleton("IDL:T:1.0", host, port, ObjectKey::persistent("P", obj))
    }

    fn m(name: &str) -> MemberName {
        MemberName::from(name)
    }

    #[test]
    fn member_name_roundtrip() {
        let name = replica_member_name(Slot(2), 77);
        assert_eq!(name.as_str(), "replica/2/77");
        assert_eq!(name.slot(), Some(Slot(2)));
        assert!(name.is_replica());
        assert_eq!(slot_of_member(name.as_str()), Some(Slot(2)));
        assert_eq!(slot_of_member("mgr/recovery"), None);
        assert!(!m("mgr/recovery").is_replica());
        assert_eq!(Slot(3).index(), 3);
        assert_eq!(format!("{}", Slot(3)), "3");
    }

    #[test]
    fn replicas_filter_out_manager() {
        let mut d = ReplicaDirectory::new();
        d.on_view(vec![
            "mgr/recovery".into(),
            "replica/0/10".into(),
            "replica/1/11".into(),
        ]);
        assert_eq!(d.replica_count(), 2);
        assert_eq!(d.first_replica(), Some(&m("replica/0/10")));
        assert!(!d.is_first_replica(&m("mgr/recovery")));
        assert!(d.is_first_replica(&m("replica/0/10")));
    }

    #[test]
    fn next_after_wraps_and_excludes_self() {
        let mut d = ReplicaDirectory::new();
        d.on_view(vec![
            "replica/0/10".into(),
            "replica/1/11".into(),
            "replica/2/12".into(),
        ]);
        assert_eq!(d.next_after(&m("replica/0/10")), Some(&m("replica/1/11")));
        assert_eq!(d.next_after(&m("replica/2/12")), Some(&m("replica/0/10")));
        d.on_view(vec!["replica/0/10".into()]);
        assert_eq!(d.next_after(&m("replica/0/10")), None, "alone in the group");
        // Departed member still finds a target.
        d.on_view(vec!["replica/1/11".into()]);
        assert_eq!(d.next_after(&m("replica/0/10")), Some(&m("replica/1/11")));
    }

    #[test]
    fn view_change_garbage_collects_adverts() {
        let mut d = ReplicaDirectory::new();
        d.on_view(vec!["replica/0/10".into(), "replica/1/11".into()]);
        d.record_addr("replica/0/10", "node1", 20000);
        d.record_addr("replica/1/11", "node2", 20001);
        d.on_view(vec!["replica/1/11".into()]);
        assert_eq!(d.addr_of(&m("replica/0/10")), None);
        assert_eq!(d.addr_of(&m("replica/1/11")), Some(("node2", 20001)));
    }

    #[test]
    fn sync_entries_roundtrip() {
        let mut d = ReplicaDirectory::new();
        d.on_view(vec!["replica/0/10".into()]);
        d.record_addr("replica/0/10", "node1", 20000);
        let entries = d.sync_entries();
        let mut d2 = ReplicaDirectory::new();
        d2.on_view(vec!["replica/0/10".into()]);
        d2.apply_sync(&entries);
        assert_eq!(d2.addr_of(&m("replica/0/10")), Some(("node1", 20000)));
    }

    #[test]
    fn ior_lookup_by_hash_and_bytewise() {
        let mut d = ReplicaDirectory::new();
        d.on_view(vec!["replica/0/10".into()]);
        d.record_ior("replica/0/10", ior("node1", 20000, "TimeOfDay"));
        d.record_ior("replica/0/10", ior("node1", 20000, "Counter"));
        let key = ObjectKey::persistent("P", "Counter");
        for use_hash in [true, false] {
            let found = d.ior_of(&m("replica/0/10"), &key, use_hash).expect("found");
            assert_eq!(found.primary_profile().unwrap().object_key, key);
        }
        let missing = ObjectKey::persistent("P", "Nope");
        assert!(d.ior_of(&m("replica/0/10"), &missing, true).is_none());
        assert_eq!(d.ior_count(&m("replica/0/10")), 2);
    }

    #[test]
    fn ior_readvert_replaces_same_key() {
        let mut d = ReplicaDirectory::new();
        d.on_view(vec!["replica/0/10".into()]);
        d.record_ior("replica/0/10", ior("node1", 20000, "TimeOfDay"));
        d.record_ior("replica/0/10", ior("node1", 30000, "TimeOfDay"));
        assert_eq!(d.ior_count(&m("replica/0/10")), 1);
        let key = ObjectKey::persistent("P", "TimeOfDay");
        let found = d.ior_of(&m("replica/0/10"), &key, true).expect("found");
        assert_eq!(found.primary_profile().unwrap().port, 30000);
    }
}
