//! MEAD configuration: recovery scheme selection, thresholds, and the
//! interceptor cost model.

use faults::{AdaptiveConfig, LeakConfig, PressureConfig};
use simnet::SimDuration;

/// The recovery strategy in force, covering the paper's three proactive
/// schemes (section 4) and two reactive baselines (section 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryScheme {
    /// Reactive: the client recovers on its own via the Naming Service
    /// after each `COMM_FAILURE`. The Table 1 baseline.
    ReactiveNoCache,
    /// Reactive: the client pre-resolves all replica references into a
    /// local cache and walks it on failure (stale entries cause
    /// `TRANSIENT` exceptions).
    ReactiveCache,
    /// GIOP `NEEDS_ADDRESSING_MODE` (section 4.2): the *client-side*
    /// interceptor masks abrupt server failures — EOF is suppressed, the
    /// server group is asked for the new primary, the connection is
    /// redirected and a fabricated reply makes the ORB resend.
    NeedsAddressing,
    /// GIOP `LOCATION_FORWARD` (section 4.1): the *server-side*
    /// interceptor, past the migrate threshold, replaces normal replies
    /// with forwards carrying the next replica's IOR.
    LocationForward,
    /// MEAD proactive fail-over messages (section 4.3): piggybacked on
    /// replies, acted on by the client-side interceptor via a
    /// `dup2()`-style connection redirect.
    MeadFailover,
}

impl RecoveryScheme {
    /// All five strategies, in Table 1 order.
    pub const ALL: [RecoveryScheme; 5] = [
        RecoveryScheme::ReactiveNoCache,
        RecoveryScheme::ReactiveCache,
        RecoveryScheme::NeedsAddressing,
        RecoveryScheme::LocationForward,
        RecoveryScheme::MeadFailover,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryScheme::ReactiveNoCache => "Reactive Without Cache",
            RecoveryScheme::ReactiveCache => "Reactive With Cache",
            RecoveryScheme::NeedsAddressing => "NEEDS ADDRESSING Mode",
            RecoveryScheme::LocationForward => "LOCATION FORWARD",
            RecoveryScheme::MeadFailover => "MEAD Message",
        }
    }

    /// `true` for the proactive schemes that migrate clients before the
    /// crash (thresholds below 100 %).
    pub fn is_proactive_migration(self) -> bool {
        matches!(
            self,
            RecoveryScheme::LocationForward | RecoveryScheme::MeadFailover
        )
    }

    /// `true` when a client-side interceptor is deployed.
    pub fn has_client_interceptor(self) -> bool {
        matches!(
            self,
            RecoveryScheme::NeedsAddressing | RecoveryScheme::MeadFailover
        )
    }
}

/// Interceptor cost model. These per-message CPU charges are what turn
/// into the "% increase in RTT" column of Table 1; the defaults are
/// calibrated against the paper's 850 MHz testbed (baseline RTT 0.75 ms):
///
/// * `LOCATION_FORWARD` parses every GIOP request *and* reply to track
///   `request_id`s and object keys → ≈90 % overhead;
/// * `NEEDS_ADDRESSING` tracks request ids only (no object keys, no IOR
///   table) → ≈8 %;
/// * MEAD messages need only a frame-header scan → ≈3 %.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Full GIOP header+body parse and table upkeep, per message
    /// (LOCATION_FORWARD scheme; charged on both request and reply paths).
    pub giop_parse_cpu: SimDuration,
    /// Light parse extracting only the request id, plus the reply-path
    /// frame scan (NEEDS_ADDRESSING; charged once per invocation on the
    /// client's request path).
    pub request_track_cpu: SimDuration,
    /// Frame-magic/length scan (MEAD scheme). Charged once per invocation
    /// on the server's reply path; it covers both interceptor halves,
    /// since the client half's work happens between reply arrival and
    /// delivery and is folded here for observability.
    pub frame_scan_cpu: SimDuration,
    /// IOR-table lookup via the 16-bit object-key hash, per forward.
    pub ior_lookup_cpu: SimDuration,
    /// Byte-by-byte object-key comparison (ablation of the 16-bit hash).
    pub ior_bytewise_cpu: SimDuration,
    /// Fabricating a reply / rewriting a message.
    pub fabricate_cpu: SimDuration,
    /// The first-listed replica's work to answer an `AddressQuery`
    /// (section 4.2): consulting the membership listing and re-multicasting
    /// through the group-communication stack.
    pub address_reply_cpu: SimDuration,
    /// Completing a `dup2()`-style connection redirect at the client:
    /// socket teardown/re-pointing plus interceptor bookkeeping. Far
    /// cheaper than an ORB-level reconnect (~6 ms) — this asymmetry is the
    /// source of the MEAD scheme's 73.9 % fail-over win.
    pub redirect_cpu: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            giop_parse_cpu: SimDuration::from_micros(330),
            request_track_cpu: SimDuration::from_micros(60),
            frame_scan_cpu: SimDuration::from_micros(22),
            ior_lookup_cpu: SimDuration::from_micros(15),
            ior_bytewise_cpu: SimDuration::from_micros(60),
            fabricate_cpu: SimDuration::from_micros(80),
            address_reply_cpu: SimDuration::from_micros(700),
            redirect_cpu: SimDuration::from_micros(1250),
        }
    }
}

/// Complete MEAD deployment configuration shared by the interceptors and
/// the Recovery Manager.
#[derive(Clone, Debug)]
pub struct MeadConfig {
    /// Strategy in force.
    pub scheme: RecoveryScheme,
    /// First (launch) threshold as a fraction, e.g. 0.8.
    pub launch_threshold: f64,
    /// Second (migrate) threshold as a fraction, e.g. 0.9.
    pub migrate_threshold: f64,
    /// Interceptor cost model.
    pub costs: CostModel,
    /// Memory-leak fault injected at the primary (section 5.1). `None`
    /// disables fault injection (fault-free runs).
    pub leak: Option<LeakConfig>,
    /// Resource-pressure fault (CPU-exhaustion ramp or fd leak) armed at
    /// an absolute instant; feeds the same two-step thresholds as the
    /// leak. Replicas started *after* the activation instant never arm it
    /// (a fresh replacement does not inherit the runaway). `None` (the
    /// default, and the paper's configuration) disables it.
    pub pressure: Option<PressureConfig>,
    /// Group that replicas and the Recovery Manager join.
    pub server_group: String,
    /// Warm-passive checkpoint interval (primary → backups over GCS).
    pub checkpoint_interval: SimDuration,
    /// Checkpoint payload size (application state size).
    pub checkpoint_bytes: usize,
    /// How long a migrating replica waits after notifying all clients
    /// before exiting gracefully.
    pub drain_delay: SimDuration,
    /// Client-side wait for an `AddressReply` before exposing the failure
    /// (paper: "we used a 10 ms timeout").
    pub address_query_timeout: SimDuration,
    /// Use the 16-bit object-key hash for IOR lookups (section 4.1's
    /// optimisation); `false` falls back to byte-wise comparison
    /// (ablation).
    pub use_key_hash: bool,
    /// Replace the preset two-step thresholds with the adaptive
    /// rate-estimating predictor (the paper's future work, section 6):
    /// actions fire when the *predicted time to exhaustion* crosses the
    /// configured safety margins instead of at fixed usage fractions.
    pub adaptive: Option<AdaptiveConfig>,
    /// Check thresholds from the periodic leak timer instead of on the
    /// write path. The paper rejected timer-driven monitoring ("proactive
    /// recovery needs to be triggered only when there are active client
    /// connections", section 3.1); `true` enables it as an ablation:
    /// crossings are detected at timer granularity rather than at the next
    /// client interaction.
    pub poll_thresholds: bool,
    /// Number of Recovery Manager instances. `1` reproduces the paper's
    /// deliberate single point of failure (DESIGN §6.5); higher values
    /// replicate the RM warm-passively over `groupcomm` with leader
    /// election on view change (chaos-campaign hardening, DESIGN §8).
    pub rm_instances: u32,
    /// Group the Recovery Manager instances join for leader election and
    /// warm-passive state exchange.
    pub manager_group: String,
    /// Hold each client reply until the checkpoint covering it has been
    /// self-delivered through the totally-ordered group (commit-before-
    /// ack). Off by default: the paper's warm-passive transfer replies
    /// immediately and tolerates a small state-staleness window, which
    /// is what Table 1 measures. The chaos campaign turns this on to get
    /// exactly-once fail-over semantics.
    pub commit_acks: bool,
    /// Observability verbosity this deployment asks of the simulation
    /// trace ([`obs::TraceLevel`]); the scenario runner applies it to the
    /// kernel recorder before the run starts.
    pub trace_level: obs::TraceLevel,
}

impl MeadConfig {
    /// Starts a builder seeded with the paper's configuration for
    /// `scheme`: the 80 %/90 % threshold pair, the calibrated cost model
    /// and the standard memory leak. `MeadConfig::builder(s).build()`
    /// reproduces the Table 1 deployment for scheme `s` exactly.
    pub fn builder(scheme: RecoveryScheme) -> MeadConfigBuilder {
        MeadConfigBuilder {
            cfg: MeadConfig {
                scheme,
                launch_threshold: 0.8,
                migrate_threshold: 0.9,
                costs: CostModel::default(),
                leak: Some(LeakConfig::default()),
                pressure: None,
                server_group: "servers".to_string(),
                checkpoint_interval: SimDuration::from_millis(250),
                checkpoint_bytes: 128,
                drain_delay: SimDuration::from_millis(5),
                address_query_timeout: SimDuration::from_millis(10),
                use_key_hash: true,
                adaptive: None,
                poll_thresholds: false,
                rm_instances: 1,
                manager_group: "managers".to_string(),
                commit_acks: false,
                trace_level: obs::TraceLevel::Recovery,
            },
        }
    }
}

/// Builder returned by [`MeadConfig::builder`]; every knob defaults to
/// the paper's values, so experiments state only what they vary.
#[derive(Clone, Debug)]
pub struct MeadConfigBuilder {
    cfg: MeadConfig,
}

impl MeadConfigBuilder {
    /// Sets both two-step thresholds explicitly. Both are clamped to
    /// (0, 1] and `launch` is capped at `migrate` (the launch step can
    /// never follow the migrate step).
    pub fn thresholds(mut self, launch: f64, migrate: f64) -> Self {
        self.cfg.migrate_threshold = migrate.clamp(0.05, 1.0);
        self.cfg.launch_threshold = launch.clamp(0.01, self.cfg.migrate_threshold);
        self
    }

    /// Sets the migrate threshold with the launch threshold trailing it
    /// by the paper's 10-point gap (the Figure 5 sweep's single knob).
    pub fn migrate_threshold(self, threshold: f64) -> Self {
        self.thresholds(threshold - 0.1, threshold)
    }

    /// Replaces the interceptor cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.cfg.costs = costs;
        self
    }

    /// Sets (or, with `None`, disables) the injected memory leak.
    pub fn leak(mut self, leak: Option<LeakConfig>) -> Self {
        self.cfg.leak = leak;
        self
    }

    /// Sets (or, with `None`, disables) the resource-pressure fault.
    pub fn pressure(mut self, pressure: Option<PressureConfig>) -> Self {
        self.cfg.pressure = pressure;
        self
    }

    /// Sets the observability trace verbosity for the deployment.
    pub fn trace_level(mut self, level: obs::TraceLevel) -> Self {
        self.cfg.trace_level = level;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> MeadConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_table1() {
        assert_eq!(
            RecoveryScheme::ReactiveNoCache.name(),
            "Reactive Without Cache"
        );
        assert_eq!(RecoveryScheme::MeadFailover.name(), "MEAD Message");
        assert_eq!(RecoveryScheme::ALL.len(), 5);
    }

    #[test]
    fn proactive_predicates() {
        assert!(RecoveryScheme::LocationForward.is_proactive_migration());
        assert!(RecoveryScheme::MeadFailover.is_proactive_migration());
        assert!(!RecoveryScheme::NeedsAddressing.is_proactive_migration());
        assert!(RecoveryScheme::NeedsAddressing.has_client_interceptor());
        assert!(!RecoveryScheme::LocationForward.has_client_interceptor());
        assert!(!RecoveryScheme::ReactiveNoCache.has_client_interceptor());
    }

    #[test]
    fn builder_defaults_match_the_paper() {
        let cfg = MeadConfig::builder(RecoveryScheme::MeadFailover).build();
        assert_eq!(cfg.launch_threshold, 0.8);
        assert_eq!(cfg.migrate_threshold, 0.9);
        assert!(cfg.leak.is_some());
        assert!(cfg.use_key_hash);
        // Paper fidelity: the RM stays a SPOF and replies are immediate
        // unless an experiment opts in to the hardened behaviour.
        assert_eq!(cfg.rm_instances, 1);
        assert_eq!(cfg.manager_group, "managers");
        assert!(!cfg.commit_acks);
        assert_eq!(cfg.trace_level, obs::TraceLevel::Recovery);
    }

    #[test]
    fn builder_threshold_sweep_keeps_gap_and_bounds() {
        let cfg = MeadConfig::builder(RecoveryScheme::MeadFailover)
            .migrate_threshold(0.2)
            .build();
        assert!((cfg.migrate_threshold - 0.2).abs() < 1e-9);
        assert!((cfg.launch_threshold - 0.1).abs() < 1e-9);
        let cfg = MeadConfig::builder(RecoveryScheme::MeadFailover)
            .migrate_threshold(0.05)
            .build();
        assert!(cfg.launch_threshold <= cfg.migrate_threshold);
        assert!(cfg.launch_threshold > 0.0);
    }

    #[test]
    fn builder_explicit_knobs() {
        let cfg = MeadConfig::builder(RecoveryScheme::LocationForward)
            .thresholds(0.5, 0.7)
            .leak(None)
            .trace_level(obs::TraceLevel::Kernel)
            .build();
        assert_eq!(cfg.scheme, RecoveryScheme::LocationForward);
        assert!((cfg.launch_threshold - 0.5).abs() < 1e-9);
        assert!((cfg.migrate_threshold - 0.7).abs() < 1e-9);
        assert!(cfg.leak.is_none());
        assert_eq!(cfg.trace_level, obs::TraceLevel::Kernel);
        // launch can never trail migrate: it is capped.
        let cfg = MeadConfig::builder(RecoveryScheme::MeadFailover)
            .thresholds(0.9, 0.6)
            .build();
        assert!(cfg.launch_threshold <= cfg.migrate_threshold);
    }
}
