//! Property tests for MEAD's control-message formats.

use proptest::prelude::*;

use giop::{FrameSplitter, Ior, ObjectKey};
use mead::{FailoverNotice, GroupMsg};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/_.-]{1,32}"
}

fn arb_ior() -> impl Strategy<Value = Ior> {
    (
        arb_name(),
        "[a-z0-9]{1,12}",
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 1..64),
    )
        .prop_map(|(type_id, host, port, key)| {
            Ior::singleton(&type_id, &host, port, ObjectKey::from_bytes(key))
        })
}

fn arb_group_msg() -> impl Strategy<Value = GroupMsg> {
    prop_oneof![
        (arb_name(), arb_name(), any::<u16>())
            .prop_map(|(member, host, port)| { GroupMsg::AddrAdvert { member, host, port } }),
        (arb_name(), arb_ior()).prop_map(|(member, ior)| GroupMsg::IorAdvert { member, ior }),
        arb_name().prop_map(|member| GroupMsg::LaunchRequest { member }),
        prop::collection::vec((arb_name(), arb_name(), any::<u16>()), 0..6)
            .prop_map(|entries| GroupMsg::SyncList { entries }),
        arb_name().prop_map(|reply_group| GroupMsg::AddressQuery { reply_group }),
        (arb_name(), arb_name(), any::<u16>())
            .prop_map(|(member, host, port)| { GroupMsg::AddressReply { member, host, port } }),
        (arb_name(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(member, state)| { GroupMsg::Checkpoint { member, state } }),
    ]
}

proptest! {
    #[test]
    fn group_messages_roundtrip(msg in arb_group_msg()) {
        prop_assert_eq!(GroupMsg::decode(&msg.encode()).expect("decodes"), msg);
    }

    #[test]
    fn group_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = GroupMsg::decode(&bytes);
    }

    #[test]
    fn failover_notices_roundtrip_and_interleave_with_giop(
        host in "[a-z0-9]{1,16}",
        port in any::<u16>(),
        member in "[a-zA-Z0-9/]{1,24}",
        rid in any::<u32>(),
    ) {
        let notice = FailoverNotice::new(&host, port, &member);
        // The piggyback layout: notice first, then the reply.
        let mut stream = notice.encode();
        let reply = giop::Message::Reply(giop::ReplyMessage {
            request_id: rid,
            body: giop::ReplyBody::NoException(vec![1, 2, 3]),
        })
        .encode(giop::Endian::Big);
        stream.extend_from_slice(&reply);
        let mut s = FrameSplitter::new();
        s.push(&stream);
        let frames = s.drain_frames().expect("both frames split");
        prop_assert_eq!(frames.len(), 2);
        let got = FailoverNotice::decode(&frames[0]).expect("notice decodes");
        prop_assert_eq!(got.host, host);
        prop_assert_eq!(got.port, port);
        prop_assert_eq!(&frames[1].bytes[..], &reply[..]);
    }
}
