//! Unit tests of the interceptors' byte-stream surgery over the mock
//! syscall context: frame staging, MEAD-frame stripping, piggybacking,
//! `dup2()` redirects, and EOF suppression — all observed wire-level.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use giop::{
    Endian, FrameKind, FrameSplitter, Message, ObjectKey, ReplyBody, ReplyMessage, RequestMessage,
};
use groupcomm::{GcsWire, GCS_PORT};
use mead::{
    tokens, ClientInterceptor, FailoverNotice, GroupMsg, MeadConfig, RecoveryScheme,
    ServerInterceptor,
};
use simnet::testkit::MockSys;
use simnet::{Addr, ConnId, Event, NodeId, Port, Process, SysApi, TimerId};

/// A scriptable inner application: logs events, executes queued actions
/// when any event arrives.
#[derive(Debug, Default)]
struct AppState {
    log: Vec<String>,
    /// (conn, bytes) writes to perform on the next event.
    write_queue: VecDeque<(ConnId, Vec<u8>)>,
    /// Connect to this address on start.
    connect_on_start: Option<Addr>,
    /// Listen on this port on start.
    listen_on_start: Option<Port>,
    /// Last connection created on start.
    conn: Option<ConnId>,
    /// Bytes read from DataReadable events.
    read_bytes: Vec<u8>,
    read_eof: bool,
}

struct TestApp(Rc<RefCell<AppState>>);

impl Process for TestApp {
    fn on_start(&mut self, sys: &mut dyn SysApi) {
        let mut st = self.0.borrow_mut();
        if let Some(port) = st.listen_on_start {
            sys.listen(port).expect("listen");
        }
        if let Some(addr) = st.connect_on_start {
            st.conn = Some(sys.connect(addr));
        }
        st.log.push("started".into());
    }
    fn on_event(&mut self, sys: &mut dyn SysApi, ev: Event) {
        let mut st = self.0.borrow_mut();
        st.log.push(format!("{ev:?}"));
        if let Event::DataReadable { conn } = ev {
            let got = sys.read(conn, usize::MAX).expect("read");
            st.read_bytes.extend_from_slice(&got.data);
            st.read_eof |= got.eof;
        }
        while let Some((conn, bytes)) = st.write_queue.pop_front() {
            let _ = sys.write(conn, &bytes);
        }
    }
}

fn reply(rid: u32) -> Vec<u8> {
    Message::Reply(ReplyMessage {
        request_id: rid,
        body: ReplyBody::NoException(vec![rid as u8]),
    })
    .encode(Endian::Big)
    .to_vec()
}

fn request(rid: u32) -> Vec<u8> {
    Message::Request(RequestMessage {
        request_id: rid,
        response_expected: true,
        object_key: ObjectKey::persistent("TimePOA", "TimeOfDay"),
        operation: "time_of_day".into(),
        body: Vec::new(),
    })
    .encode(Endian::Big)
    .to_vec()
}

/// Decodes the GCS frames a component wrote to its daemon connection.
fn gcs_frames(bytes: &[u8]) -> Vec<GcsWire> {
    let mut s = groupcomm::GcsSplitter::new();
    s.push(bytes);
    s.drain().expect("well-formed gcs stream")
}

/// Feeds a GCS wire message into the interceptor as daemon traffic.
fn feed_gcs(interceptor: &mut dyn Process, sys: &mut MockSys, gcs_conn: ConnId, msg: &GcsWire) {
    sys.push_incoming(gcs_conn, &msg.encode());
    interceptor.on_event(sys, Event::DataReadable { conn: gcs_conn });
}

fn timer_by_token(sys: &MockSys, token: u64) -> TimerId {
    sys.timers()
        .iter()
        .rev()
        .find(|t| t.token == token && !t.cancelled)
        .map(|t| t.timer)
        .expect("timer armed")
}

// ---------------------------------------------------------------------
// Server interceptor
// ---------------------------------------------------------------------

struct ServerRig {
    interceptor: ServerInterceptor,
    sys: MockSys,
    app: Rc<RefCell<AppState>>,
    gcs_conn: ConnId,
    listener: simnet::ListenerId,
}

fn server_rig(scheme: RecoveryScheme) -> ServerRig {
    let app = Rc::new(RefCell::new(AppState {
        listen_on_start: Some(Port(2810)),
        ..AppState::default()
    }));
    let mut interceptor = ServerInterceptor::new(
        MeadConfig::builder(scheme).build(),
        mead::Slot(0),
        Box::new(TestApp(app.clone())),
    );
    let mut sys = MockSys::new(NodeId::from_index(1));
    interceptor.on_start(&mut sys);
    // First connect is the GCS client reaching the local daemon; complete
    // its handshake so the Attach goes out.
    let (gcs_conn, gcs_addr) = sys.connected()[0];
    assert_eq!(gcs_addr.port, GCS_PORT);
    interceptor.on_event(&mut sys, Event::ConnEstablished { conn: gcs_conn });
    let listener = sys.listeners()[0].0;
    ServerRig {
        interceptor,
        sys,
        app,
        gcs_conn,
        listener,
    }
}

/// Brings the rig's GCS online: attach ack, a view with `members`, and an
/// address advert for the peer replica.
fn bring_group_online(rig: &mut ServerRig, me: &str, other: &str) {
    feed_gcs(
        &mut rig.interceptor,
        &mut rig.sys,
        rig.gcs_conn,
        &GcsWire::Attached,
    );
    feed_gcs(
        &mut rig.interceptor,
        &mut rig.sys,
        rig.gcs_conn,
        &GcsWire::View {
            group: "servers".into(),
            view_id: 1,
            members: vec![me.to_string(), other.to_string()],
        },
    );
    feed_gcs(
        &mut rig.interceptor,
        &mut rig.sys,
        rig.gcs_conn,
        &GcsWire::Deliver {
            group: "servers".into(),
            sender: other.to_string(),
            payload: GroupMsg::AddrAdvert {
                member: other.to_string(),
                host: "node2".into(),
                port: 30000,
            }
            .encode(),
        },
    );
}

#[test]
fn server_interceptor_joins_group_and_advertises_listen_port() {
    let mut rig = server_rig(RecoveryScheme::MeadFailover);
    feed_gcs(
        &mut rig.interceptor,
        &mut rig.sys,
        rig.gcs_conn,
        &GcsWire::Attached,
    );
    let frames = gcs_frames(rig.sys.written(rig.gcs_conn));
    // Attach, then Join("servers"), then the AddrAdvert multicast.
    assert!(matches!(&frames[0], GcsWire::Attach { member } if member.starts_with("replica/0/")));
    assert!(matches!(&frames[1], GcsWire::Join { group } if group == "servers"));
    let advert = frames.iter().find_map(|f| match f {
        GcsWire::Multicast { payload, .. } => GroupMsg::decode(payload).ok(),
        _ => None,
    });
    match advert {
        Some(GroupMsg::AddrAdvert { host, port, .. }) => {
            assert_eq!(host, "node1");
            assert_eq!(port, 2810);
        }
        other => panic!("expected AddrAdvert, got {other:?}"),
    }
}

#[test]
fn server_interceptor_stages_requests_and_passes_replies_through() {
    let mut rig = server_rig(RecoveryScheme::MeadFailover);
    let conn = rig.sys.accept_conn();
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::Accepted {
            listener: rig.listener,
            conn,
            peer_node: NodeId::from_index(4),
        },
    );
    // Client request arrives: the app must read it byte-identically.
    let req = request(7);
    rig.sys.push_incoming(conn, &req);
    rig.interceptor
        .on_event(&mut rig.sys, Event::DataReadable { conn });
    assert_eq!(
        rig.app.borrow().read_bytes,
        req,
        "request must pass through unmodified"
    );
    assert_eq!(
        rig.sys.counter("mead.leak_activated"),
        1,
        "first request activates the leak"
    );
    // App replies: the reply goes to the wire unmodified (not migrating).
    rig.app.borrow_mut().write_queue.push_back((conn, reply(7)));
    rig.sys.push_incoming(conn, &request(8));
    rig.sys.clear_written(conn);
    rig.interceptor
        .on_event(&mut rig.sys, Event::DataReadable { conn });
    let on_wire = rig.sys.written(conn);
    let mut split = FrameSplitter::new();
    split.push(on_wire);
    let frames = split.drain_frames().expect("frames");
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].kind, FrameKind::Giop);
    assert_eq!(&frames[0].bytes[..], &reply(7)[..]);
}

#[test]
fn migrating_server_piggybacks_failover_notice_before_reply() {
    let mut rig = server_rig(RecoveryScheme::MeadFailover);
    let me_member = {
        feed_gcs(
            &mut rig.interceptor,
            &mut rig.sys,
            rig.gcs_conn,
            &GcsWire::Attached,
        );
        let frames = gcs_frames(rig.sys.written(rig.gcs_conn));
        match &frames[0] {
            GcsWire::Attach { member } => member.clone(),
            other => panic!("expected attach, got {other:?}"),
        }
    };
    bring_group_online(&mut rig, &me_member, "replica/1/55");
    // Client connection + first request (activates leak).
    let conn = rig.sys.accept_conn();
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::Accepted {
            listener: rig.listener,
            conn,
            peer_node: NodeId::from_index(4),
        },
    );
    rig.sys.push_incoming(conn, &request(1));
    rig.interceptor
        .on_event(&mut rig.sys, Event::DataReadable { conn });
    // Step the leak to exhaustion-threshold by firing its timer repeatedly.
    for _ in 0..40 {
        if rig.sys.counter("mead.migrations") > 0 || rig.sys.exit_requested().is_some() {
            break;
        }
        let timer = timer_by_token(&rig.sys, tokens::TOKEN_LEAK);
        rig.interceptor.on_event(
            &mut rig.sys,
            Event::TimerFired {
                timer,
                token: tokens::TOKEN_LEAK,
            },
        );
        // A reply write is what trips the event-driven threshold check.
        rig.app.borrow_mut().write_queue.push_back((conn, reply(2)));
        rig.sys.clear_written(conn);
        rig.sys.push_incoming(conn, &request(2));
        rig.interceptor
            .on_event(&mut rig.sys, Event::DataReadable { conn });
    }
    assert_eq!(
        rig.sys.counter("mead.migrations"),
        1,
        "migration must fire before exhaustion"
    );
    assert_eq!(rig.sys.counter("mead.piggybacks_sent"), 1);
    // The wire now carries [MEAD notice][GIOP reply].
    let mut split = FrameSplitter::new();
    split.push(rig.sys.written(conn));
    let frames = split.drain_frames().expect("frames");
    assert_eq!(frames.len(), 2, "notice + reply");
    assert_eq!(frames[0].kind, FrameKind::Mead);
    let notice = FailoverNotice::decode(&frames[0]).expect("notice decodes");
    assert_eq!(notice.host, "node2");
    assert_eq!(notice.port, 30000);
    assert_eq!(frames[1].kind, FrameKind::Giop);
    // All clients notified: the drain timer is armed; firing it exits
    // gracefully (rejuvenation).
    let drain = timer_by_token(&rig.sys, tokens::TOKEN_DRAIN);
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::TimerFired {
            timer: drain,
            token: tokens::TOKEN_DRAIN,
        },
    );
    assert!(matches!(
        rig.sys.exit_requested(),
        Some(simnet::ExitReason::Graceful)
    ));
}

#[test]
fn location_forward_server_replaces_reply_with_forward() {
    let mut rig = server_rig(RecoveryScheme::LocationForward);
    let me_member = {
        feed_gcs(
            &mut rig.interceptor,
            &mut rig.sys,
            rig.gcs_conn,
            &GcsWire::Attached,
        );
        let frames = gcs_frames(rig.sys.written(rig.gcs_conn));
        match &frames[0] {
            GcsWire::Attach { member } => member.clone(),
            other => panic!("expected attach, got {other:?}"),
        }
    };
    bring_group_online(&mut rig, &me_member, "replica/1/55");
    // The peer also advertises the IOR for the shared persistent key.
    let peer_ior = giop::Ior::singleton(
        "IDL:TimeOfDay:1.0",
        "node2",
        30000,
        ObjectKey::persistent("TimePOA", "TimeOfDay"),
    );
    feed_gcs(
        &mut rig.interceptor,
        &mut rig.sys,
        rig.gcs_conn,
        &GcsWire::Deliver {
            group: "servers".into(),
            sender: "replica/1/55".into(),
            payload: GroupMsg::IorAdvert {
                member: "replica/1/55".into(),
                ior: peer_ior,
            }
            .encode(),
        },
    );
    let conn = rig.sys.accept_conn();
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::Accepted {
            listener: rig.listener,
            conn,
            peer_node: NodeId::from_index(4),
        },
    );
    rig.sys.push_incoming(conn, &request(1));
    rig.interceptor
        .on_event(&mut rig.sys, Event::DataReadable { conn });
    for _ in 0..40 {
        if rig.sys.counter("mead.migrations") > 0 {
            break;
        }
        let timer = timer_by_token(&rig.sys, tokens::TOKEN_LEAK);
        rig.interceptor.on_event(
            &mut rig.sys,
            Event::TimerFired {
                timer,
                token: tokens::TOKEN_LEAK,
            },
        );
        rig.app.borrow_mut().write_queue.push_back((conn, reply(2)));
        rig.sys.clear_written(conn);
        rig.sys.push_incoming(conn, &request(2));
        rig.interceptor
            .on_event(&mut rig.sys, Event::DataReadable { conn });
    }
    assert_eq!(rig.sys.counter("mead.forwards_sent"), 1);
    // The last written frame is a LOCATION_FORWARD reply, not the normal
    // reply the app produced.
    let mut split = FrameSplitter::new();
    split.push(rig.sys.written(conn));
    let frames = split.drain_frames().expect("frames");
    assert_eq!(frames.len(), 1);
    match Message::decode(&frames[0].bytes).expect("decodes") {
        Message::Reply(rep) => match rep.body {
            ReplyBody::LocationForward(ior) => {
                let p = ior.primary_profile().expect("profile");
                assert_eq!(p.host, "node2");
                assert_eq!(p.port, 30000);
            }
            other => panic!("expected forward, got {other:?}"),
        },
        other => panic!("expected reply, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Client interceptor
// ---------------------------------------------------------------------

struct ClientRig {
    interceptor: ClientInterceptor,
    sys: MockSys,
    app: Rc<RefCell<AppState>>,
    #[allow(dead_code)]
    gcs_conn: ConnId,
    server_conn: ConnId,
}

fn client_rig(scheme: RecoveryScheme) -> ClientRig {
    let app = Rc::new(RefCell::new(AppState {
        connect_on_start: Some(Addr::new(NodeId::from_index(1), Port(2810))),
        ..AppState::default()
    }));
    let mut interceptor = ClientInterceptor::new(
        MeadConfig::builder(scheme).build(),
        Box::new(TestApp(app.clone())),
    );
    let mut sys = MockSys::new(NodeId::from_index(4));
    interceptor.on_start(&mut sys);
    let (gcs_conn, gcs_addr) = sys.connected()[0];
    assert_eq!(gcs_addr.port, GCS_PORT);
    interceptor.on_event(&mut sys, Event::ConnEstablished { conn: gcs_conn });
    feed_gcs(&mut interceptor, &mut sys, gcs_conn, &GcsWire::Attached);
    let (server_conn, _) = sys.connected()[1];
    ClientRig {
        interceptor,
        sys,
        app,
        gcs_conn,
        server_conn,
    }
}

#[test]
fn client_interceptor_strips_notice_holds_reply_and_redirects() {
    let mut rig = client_rig(RecoveryScheme::MeadFailover);
    let conn = rig.server_conn;
    // The failing server sends [notice][reply].
    let mut wire = FailoverNotice::new("node2", 30000, "replica/0/9").encode();
    let the_reply = reply(3);
    wire.extend_from_slice(&the_reply);
    rig.sys.push_incoming(conn, &wire);
    rig.interceptor
        .on_event(&mut rig.sys, Event::DataReadable { conn });
    // The reply is held: the app has read nothing yet.
    assert!(
        rig.app.borrow().read_bytes.is_empty(),
        "reply must be held during redirect"
    );
    // The interceptor opened a raw connection to the next replica.
    let (new_conn, new_addr) = *rig.sys.connected().last().expect("redirect conn");
    assert_eq!(new_addr, Addr::new(NodeId::from_index(2), Port(30000)));
    // App writes during the redirect are buffered, not sent anywhere.
    rig.app
        .borrow_mut()
        .write_queue
        .push_back((conn, request(4)));
    // (Any app-namespace event reaches the app's action queue.)
    let tick = rig.sys.set_timer(simnet::SimDuration::from_millis(1), 1);
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::TimerFired {
            timer: tick,
            token: 1,
        },
    );
    assert!(rig.sys.written(new_conn).is_empty());
    // Establishment completes the dup2; the finish timer releases the held
    // reply and flushes the buffered request to the NEW connection.
    rig.interceptor
        .on_event(&mut rig.sys, Event::ConnEstablished { conn: new_conn });
    assert!(rig.sys.is_closed(conn), "old connection closed by dup2");
    let finish = *rig
        .sys
        .timers()
        .iter()
        .rev()
        .find(|t| t.token >= tokens::TOKEN_REDIRECT_DONE_BASE)
        .expect("finish timer");
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::TimerFired {
            timer: finish.timer,
            token: finish.token,
        },
    );
    assert_eq!(
        rig.app.borrow().read_bytes,
        the_reply,
        "held reply released after redirect"
    );
    assert_eq!(
        rig.sys.written(new_conn),
        &request(4)[..],
        "buffered write flushed to new conn"
    );
    assert_eq!(rig.sys.counter("mead.client.redirects_completed"), 1);
}

#[test]
fn needs_addressing_suppresses_eof_and_fabricates_resend_trigger() {
    let mut rig = client_rig(RecoveryScheme::NeedsAddressing);
    let conn = rig.server_conn;
    // App sends a request (tracked as in-flight by the interceptor).
    rig.app
        .borrow_mut()
        .write_queue
        .push_back((conn, request(11)));
    let tick = rig.sys.set_timer(simnet::SimDuration::from_millis(1), 1);
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::TimerFired {
            timer: tick,
            token: 1,
        },
    );
    // Abrupt server death: EOF must NOT reach the app.
    let app_log_before = rig.app.borrow().log.len();
    rig.interceptor
        .on_event(&mut rig.sys, Event::PeerClosed { conn });
    assert_eq!(rig.app.borrow().log.len(), app_log_before, "EOF suppressed");
    assert_eq!(rig.sys.counter("mead.client.eof_suppressed"), 1);
    // An AddressQuery went out over group communication.
    let frames = gcs_frames(rig.sys.written(rig.gcs_conn));
    let query = frames.iter().any(|f| {
        matches!(
            f,
            GcsWire::Multicast { group, payload } if group == "servers"
                && matches!(GroupMsg::decode(payload), Ok(GroupMsg::AddressQuery { .. }))
        )
    });
    assert!(query, "AddressQuery must be multicast, got {frames:?}");
    // The group answers; the interceptor redirects.
    feed_gcs(
        &mut rig.interceptor,
        &mut rig.sys,
        rig.gcs_conn,
        &GcsWire::Deliver {
            group: format!("clients/{}", 99),
            sender: "replica/1/55".into(),
            payload: GroupMsg::AddressReply {
                member: "replica/1/55".into(),
                host: "node2".into(),
                port: 30000,
            }
            .encode(),
        },
    );
    let (new_conn, new_addr) = *rig.sys.connected().last().expect("redirect conn");
    assert_eq!(new_addr, Addr::new(NodeId::from_index(2), Port(30000)));
    rig.interceptor
        .on_event(&mut rig.sys, Event::ConnEstablished { conn: new_conn });
    let finish = *rig
        .sys
        .timers()
        .iter()
        .rev()
        .find(|t| t.token >= tokens::TOKEN_REDIRECT_DONE_BASE)
        .expect("finish timer");
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::TimerFired {
            timer: finish.timer,
            token: finish.token,
        },
    );
    // The app's ORB receives a fabricated NEEDS_ADDRESSING_MODE reply for
    // the in-flight request.
    let staged = rig.app.borrow().read_bytes.clone();
    match Message::decode(&staged).expect("fabricated reply decodes") {
        Message::Reply(rep) => {
            assert_eq!(rep.request_id, 11);
            assert!(matches!(rep.body, ReplyBody::NeedsAddressingMode(_)));
        }
        other => panic!("expected fabricated reply, got {other:?}"),
    }
    assert_eq!(rig.sys.counter("mead.client.fabricated_needs_addr"), 1);
}

#[test]
fn needs_addressing_timeout_releases_the_eof() {
    let mut rig = client_rig(RecoveryScheme::NeedsAddressing);
    let conn = rig.server_conn;
    rig.interceptor
        .on_event(&mut rig.sys, Event::PeerClosed { conn });
    let timeout = timer_by_token(&rig.sys, tokens::TOKEN_QUERY_TIMEOUT);
    rig.interceptor.on_event(
        &mut rig.sys,
        Event::TimerFired {
            timer: timeout,
            token: tokens::TOKEN_QUERY_TIMEOUT,
        },
    );
    assert_eq!(rig.sys.counter("mead.client.query_timeout"), 1);
    let log = rig.app.borrow().log.clone();
    assert!(
        log.iter().any(|l| l.contains("PeerClosed")),
        "EOF must be released to the app on timeout: {log:?}"
    );
}
