//! Seeded chaos fault plans.
//!
//! A [`FaultPlan`] is a deterministic, timed schedule of faults — process
//! crashes, infrastructure crashes, link partitions, message-loss bursts
//! and multi-replica leaks — generated from a seed and a [`PlanSpace`]
//! describing what the target topology can absorb. The chaos campaign
//! (`experiments --bin chaos`) sweeps hundreds of such plans through the
//! simulator and checks recovery invariants after each one.
//!
//! The generator keeps every plan inside the warm-passive `f = 1` fault
//! model the stack is built for:
//!
//! * **crash-like** events (replica / RM / daemon / naming crashes) are
//!   spaced at least [`MIN_CRASH_GAP`] apart, so recovery from one fault
//!   completes before the next lands;
//! * infrastructure restarts happen within [`MAX_RESTART`];
//! * partitions always heal within [`MAX_PARTITION`], and loss bursts end
//!   within [`MAX_BURST`] — they may *overlap* crashes (that is the
//!   interesting concurrency), but can never strand traffic forever;
//! * at most `PlanSpace::rm_crashes` Recovery-Manager crashes are drawn,
//!   since nothing relaunches the RM itself.

use std::fmt;

use rand::Rng;
use simnet::{SimDuration, SimRng, SimTime};

/// Minimum spacing between two crash-like events.
pub const MIN_CRASH_GAP: SimDuration = SimDuration::from_millis(600);
/// Upper bound on infrastructure restart delay.
pub const MAX_RESTART: SimDuration = SimDuration::from_millis(200);
/// Upper bound on a partition's lifetime.
pub const MAX_PARTITION: SimDuration = SimDuration::from_millis(500);
/// Upper bound on a loss burst's lifetime.
pub const MAX_BURST: SimDuration = SimDuration::from_millis(300);
/// Upper bound on a jittery link's per-delivery extra delay.
pub const MAX_JITTER_BOUND: SimDuration = SimDuration::from_millis(10);
/// Upper bound on a jittery link's lifetime.
pub const MAX_JITTER_SPAN: SimDuration = SimDuration::from_millis(600);
/// Upper bound on a flash crowd's size.
pub const MAX_CROWD: u32 = 64;
/// Upper bound on a flash crowd's arrival spread.
pub const MAX_CROWD_SPREAD: SimDuration = SimDuration::from_millis(400);

/// One injectable fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Kill the server replica currently bound to `slot`.
    CrashReplica {
        /// Replica slot index (0-based).
        slot: u32,
    },
    /// Kill the lowest-numbered live Recovery Manager instance.
    CrashRecoveryManager,
    /// Kill the GCS daemon on `node`; the executor restarts it after
    /// `restart_after`.
    CrashGcsDaemon {
        /// Node index hosting the daemon.
        node: u32,
        /// Delay before the daemon is respawned.
        restart_after: SimDuration,
    },
    /// Kill the Naming Service; the executor restarts it (empty — the
    /// paper's naming store is in-memory) after `restart_after`.
    CrashNaming {
        /// Delay before the naming service is respawned.
        restart_after: SimDuration,
    },
    /// Sever the link between two nodes; healed after `heal_after`.
    Partition {
        /// First node index.
        a: u32,
        /// Second node index.
        b: u32,
        /// Delay before the link heals.
        heal_after: SimDuration,
    },
    /// Delay-retransmit every message with probability `probability`
    /// for `duration`, then restore the configured loss model.
    LossBurst {
        /// Per-delivery retransmission probability in `[0, 1]`.
        probability: f64,
        /// Burst length.
        duration: SimDuration,
    },
    /// Kill several replica slots at the *same* instant — a correlated
    /// failure group (shared rack, shared bug). The group must leave at
    /// least one slot alive, so the warm-passive stack has a survivor to
    /// fail over to.
    CorrelatedCrash {
        /// Distinct slot indices to kill, sorted ascending.
        slots: Vec<u32>,
    },
    /// A flash crowd: `clients` short-lived read-only clients arrive,
    /// staggered uniformly over `spread`, each issuing `reads` read
    /// requests against the replicated counter before disconnecting.
    FlashCrowd {
        /// Number of crowd clients spawned.
        clients: u32,
        /// Read requests per crowd client.
        reads: u32,
        /// Window over which arrivals are staggered.
        spread: SimDuration,
    },
    /// Rolling-upgrade restart: kill slot `0, 1, … slots-1` in order,
    /// one every `gap` (`gap` ≥ [`MIN_CRASH_GAP`], so each slot's
    /// replacement is live before the next goes down).
    RollingRestart {
        /// Number of replica slots cycled (the full topology).
        slots: u32,
        /// Spacing between consecutive slot kills.
        gap: SimDuration,
    },
    /// Sever only the `from` → `to` direction of a link (asymmetric
    /// partition); healed after `heal_after`.
    AsymmetricPartition {
        /// Node whose outbound traffic is blocked.
        from: u32,
        /// Destination the blocked traffic was heading to.
        to: u32,
        /// Delay before the direction heals.
        heal_after: SimDuration,
    },
    /// Add seeded per-delivery jitter of up to `bound` on the `a` ↔ `b`
    /// link for `duration`, then clear it.
    JitteryLink {
        /// First node index.
        a: u32,
        /// Second node index.
        b: u32,
        /// Upper bound of the extra uniform per-delivery delay.
        bound: SimDuration,
        /// How long the link stays jittery.
        duration: SimDuration,
    },
    /// CPU-exhaustion ramp on the replica bound to `slot`: consumed CPU
    /// fraction grows by `ramp_per_sec` per second, feeding the
    /// two-step `ResourceMonitor` thresholds (and crashing the process
    /// if it ever reaches 1.0 before rejuvenation).
    CpuExhaustion {
        /// Replica slot index the pressure lands on.
        slot: u32,
        /// Consumed-fraction growth per second (> 0).
        ramp_per_sec: f64,
    },
    /// File-descriptor leak on the replica bound to `slot`: each client
    /// request leaks `per_request` of the fd table, feeding the same
    /// two-step thresholds.
    FdLeak {
        /// Replica slot index the pressure lands on.
        slot: u32,
        /// Consumed-fraction growth per client request (> 0).
        per_request: f64,
    },
}

impl FaultKind {
    /// Whether this fault kills a process (and therefore needs the
    /// [`MIN_CRASH_GAP`] spacing discipline).
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            FaultKind::CrashReplica { .. }
                | FaultKind::CrashRecoveryManager
                | FaultKind::CrashGcsDaemon { .. }
                | FaultKind::CrashNaming { .. }
                | FaultKind::CorrelatedCrash { .. }
                | FaultKind::RollingRestart { .. }
        )
    }

    /// Stable snake-case name of the fault model, used as the
    /// `fault_injected` trace tag and in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::CrashReplica { .. } => "crash_replica",
            FaultKind::CrashRecoveryManager => "crash_rm",
            FaultKind::CrashGcsDaemon { .. } => "crash_daemon",
            FaultKind::CrashNaming { .. } => "crash_naming",
            FaultKind::Partition { .. } => "partition",
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::CorrelatedCrash { .. } => "correlated_crash",
            FaultKind::FlashCrowd { .. } => "flash_crowd",
            FaultKind::RollingRestart { .. } => "rolling_restart",
            FaultKind::AsymmetricPartition { .. } => "asymmetric_partition",
            FaultKind::JitteryLink { .. } => "jittery_link",
            FaultKind::CpuExhaustion { .. } => "cpu_exhaustion",
            FaultKind::FdLeak { .. } => "fd_leak",
        }
    }

    /// The instants this fault kills processes at, given its injection
    /// instant (empty for non-crash faults). A [`RollingRestart`]
    /// expands into one kill per slot.
    ///
    /// [`RollingRestart`]: FaultKind::RollingRestart
    pub fn crash_instants(&self, at: SimTime) -> Vec<SimTime> {
        match self {
            FaultKind::RollingRestart { slots, gap } => {
                (0..*slots).map(|i| at + *gap * u64::from(i)).collect()
            }
            k if k.is_crash() => vec![at],
            _ => Vec::new(),
        }
    }
}

/// A fault scheduled at an absolute simulation instant.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: SimTime,
    /// What to inject.
    pub kind: FaultKind,
}

/// A complete seeded chaos schedule.
///
/// Fields are private so every plan in circulation has passed
/// [`FaultPlan::validate`]: construct plans with the generators
/// ([`FaultPlan::generate`], [`FaultPlan::generate_with`]) or explicitly
/// via [`FaultPlanBuilder`], which refuses schedules the validator
/// rejects.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The seed this plan was generated from (also seeds the scenario).
    seed: u64,
    /// Events sorted by [`FaultEvent::at`].
    events: Vec<FaultEvent>,
    /// When `true`, every server replica runs the paper's memory leak —
    /// the multi-replica-leak composition from the campaign brief.
    leak_all: bool,
}

/// Checked constructor for [`FaultPlan`] — the only way code outside the
/// generator can assemble a plan, so [`FaultPlan::validate`] is
/// unavoidable.
///
/// ```
/// use faults::{FaultEvent, FaultKind, FaultPlanBuilder, PlanSpace};
/// use simnet::{SimDuration, SimTime};
///
/// let space = PlanSpace {
///     replica_slots: 3,
///     daemon_nodes: vec![],
///     naming: false,
///     rm_crashes: 0,
///     partition_pairs: vec![],
///     loss: true,
///     start: SimTime::from_millis(500),
///     end: SimTime::from_secs(9),
/// };
/// let plan = FaultPlanBuilder::new(42)
///     .event(FaultEvent {
///         at: SimTime::from_millis(900),
///         kind: FaultKind::LossBurst {
///             probability: 0.2,
///             duration: SimDuration::from_millis(150),
///         },
///     })
///     .build(&space)
///     .expect("schedule fits the space");
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    events: Vec<FaultEvent>,
    leak_all: bool,
}

impl FaultPlanBuilder {
    /// Starts an empty plan for `seed` (no events, no leak).
    pub fn new(seed: u64) -> Self {
        FaultPlanBuilder {
            seed,
            events: Vec::new(),
            leak_all: false,
        }
    }

    /// Appends one fault event.
    pub fn event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Appends a batch of fault events.
    pub fn events(mut self, events: impl IntoIterator<Item = FaultEvent>) -> Self {
        self.events.extend(events);
        self
    }

    /// Sets the all-replica memory-leak composition flag.
    pub fn leak_all(mut self, leak_all: bool) -> Self {
        self.leak_all = leak_all;
        self
    }

    /// Sorts the schedule and runs [`FaultPlan::validate`] against
    /// `space`; only a plan the validator accepts is returned.
    pub fn build(mut self, space: &PlanSpace) -> Result<FaultPlan, PlanError> {
        self.events.sort_by_key(|e| e.at);
        let plan = FaultPlan {
            seed: self.seed,
            events: self.events,
            leak_all: self.leak_all,
        };
        plan.validate(space)?;
        Ok(plan)
    }
}

/// What the target topology can absorb; bounds the generator's draws.
#[derive(Clone, Debug)]
pub struct PlanSpace {
    /// Number of server replica slots (crash targets).
    pub replica_slots: u32,
    /// Node indices whose GCS daemon may be crashed (and restarted).
    pub daemon_nodes: Vec<u32>,
    /// Whether the Naming Service may be crashed (and restarted).
    pub naming: bool,
    /// Maximum Recovery-Manager crashes per plan (`0` = never; keep
    /// below the number of RM instances, nothing relaunches the RM).
    pub rm_crashes: u32,
    /// Node pairs whose link may be partitioned.
    pub partition_pairs: Vec<(u32, u32)>,
    /// Whether message-loss bursts may be drawn.
    pub loss: bool,
    /// Earliest injection instant (after boot/warm-up).
    pub start: SimTime,
    /// Latest instant a fault may *begin* (heals/restarts may run past).
    pub end: SimTime,
}

/// Which fault families [`FaultPlan::generate_with`] may draw from — the
/// declarative knob a scenario file's `[[mix]]` tables set. The classic
/// chaos campaign (`FaultPlan::generate`) is equivalent to
/// [`FaultMix::classic`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultMix {
    /// Single crash-like faults (replica / RM / daemon / naming, per the
    /// [`PlanSpace`]).
    pub crashes: bool,
    /// Correlated multi-slot crash groups.
    pub correlated: bool,
    /// Rolling-upgrade restarts across all slots.
    pub rolling: bool,
    /// Symmetric link partitions.
    pub partitions: bool,
    /// One-directional link cuts.
    pub asymmetric: bool,
    /// Jittery links (seeded per-delivery delay).
    pub jitter: bool,
    /// Message-loss bursts.
    pub loss: bool,
    /// Flash-crowd client arrival.
    pub flash_crowd: bool,
    /// CPU-exhaustion ramps.
    pub cpu: bool,
    /// File-descriptor leaks.
    pub fd: bool,
    /// Whether the every-replica memory leak may be drawn.
    pub leak: bool,
}

impl FaultMix {
    /// The classic PR-2 campaign families: crashes, partitions, loss
    /// bursts and multi-replica leaks.
    pub fn classic() -> Self {
        FaultMix {
            crashes: true,
            correlated: false,
            rolling: false,
            partitions: true,
            asymmetric: false,
            jitter: false,
            loss: true,
            flash_crowd: false,
            cpu: false,
            fd: false,
            leak: true,
        }
    }

    /// Every family enabled.
    pub fn all() -> Self {
        FaultMix {
            crashes: true,
            correlated: true,
            rolling: true,
            partitions: true,
            asymmetric: true,
            jitter: true,
            loss: true,
            flash_crowd: true,
            cpu: true,
            fd: true,
            leak: true,
        }
    }

    /// Nothing enabled (useful as a base for builder-style setup).
    pub fn none() -> Self {
        FaultMix {
            crashes: false,
            correlated: false,
            rolling: false,
            partitions: false,
            asymmetric: false,
            jitter: false,
            loss: false,
            flash_crowd: false,
            cpu: false,
            fd: false,
            leak: false,
        }
    }
}

/// Why a [`FaultPlan`] failed validation against its [`PlanSpace`].
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// Events are not sorted by injection instant.
    Unsorted {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// An event begins outside the `[space.start, space.end]` window.
    OutsideWindow {
        /// The offending injection instant (ns).
        at_ns: u64,
    },
    /// A `LossBurst` probability outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// The offending probability.
        probability: f64,
    },
    /// Two crash instants closer than [`MIN_CRASH_GAP`].
    CrashGap {
        /// Earlier crash instant (ns).
        first_ns: u64,
        /// Later crash instant (ns).
        second_ns: u64,
    },
    /// A slot index at or beyond `space.replica_slots`.
    BadSlot {
        /// The offending slot.
        slot: u32,
    },
    /// A correlated crash group that is empty, unsorted, has duplicate
    /// slots, or covers every slot (no survivor).
    BadCrashGroup {
        /// The offending group.
        slots: Vec<u32>,
    },
    /// A link fault whose two endpoints coincide.
    BadLink {
        /// The node on both ends.
        node: u32,
    },
    /// A duration outside its fault model's bounds (zero restarts, heals
    /// beyond [`MAX_PARTITION`], bursts beyond [`MAX_BURST`], …).
    BadDuration {
        /// The fault model whose duration is out of bounds.
        fault: &'static str,
        /// The offending duration (ns).
        duration_ns: u64,
    },
    /// A non-positive pressure rate, or a crowd with zero clients/reads
    /// or more than [`MAX_CROWD`].
    BadRate {
        /// The fault model whose rate is out of bounds.
        fault: &'static str,
    },
    /// More than one resource-pressure fault targeting one slot.
    DuplicatePressure {
        /// The doubly-pressured slot.
        slot: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unsorted { index } => {
                write!(f, "events not sorted by instant (index {index})")
            }
            PlanError::OutsideWindow { at_ns } => {
                write!(f, "event at {at_ns} ns begins outside the fault window")
            }
            PlanError::ProbabilityOutOfRange { probability } => {
                write!(f, "loss probability {probability} outside [0, 1]")
            }
            PlanError::CrashGap {
                first_ns,
                second_ns,
            } => write!(
                f,
                "crashes at {first_ns} ns and {second_ns} ns violate MIN_CRASH_GAP"
            ),
            PlanError::BadSlot { slot } => write!(f, "slot {slot} beyond the topology"),
            PlanError::BadCrashGroup { slots } => {
                write!(f, "bad correlated crash group {slots:?}")
            }
            PlanError::BadLink { node } => {
                write!(f, "link fault with both endpoints on node {node}")
            }
            PlanError::BadDuration { fault, duration_ns } => {
                write!(f, "{fault} duration {duration_ns} ns out of bounds")
            }
            PlanError::BadRate { fault } => write!(f, "{fault} rate out of bounds"),
            PlanError::DuplicatePressure { slot } => {
                write!(f, "more than one pressure fault on slot {slot}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// The seed this plan was generated from (also seeds the scenario).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule, sorted by [`FaultEvent::at`].
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether every server replica runs the paper's memory leak.
    pub fn leak_all(&self) -> bool {
        self.leak_all
    }

    /// Deterministically generates a plan from `seed` within `space`.
    pub fn generate(seed: u64, space: &PlanSpace) -> FaultPlan {
        let mut rng = SimRng::for_kernel(seed, 0xC4A05);
        let window = space.end - space.start;
        let mut events = Vec::new();

        // Crash-like events: walk forward from `start`, one MIN_CRASH_GAP
        // (plus jitter) at a time, so recovery always has room to finish.
        let mut rm_left = space.rm_crashes;
        let mut at = space.start + rand_duration(&mut rng, MIN_CRASH_GAP);
        while at <= space.end {
            let mut choices: Vec<u32> = vec![0; space.replica_slots.max(1) as usize];
            for (slot, c) in choices.iter_mut().enumerate() {
                *c = slot as u32; // encode CrashReplica{slot} as its slot
            }
            let base = space.replica_slots;
            if rm_left > 0 {
                choices.push(base); // CrashRecoveryManager
            }
            if !space.daemon_nodes.is_empty() {
                choices.push(base + 1); // CrashGcsDaemon
            }
            if space.naming {
                choices.push(base + 2); // CrashNaming
            }
            let pick = choices[rng.gen_range(0..choices.len())];
            let kind = if pick < base {
                FaultKind::CrashReplica { slot: pick }
            } else if pick == base {
                rm_left -= 1;
                FaultKind::CrashRecoveryManager
            } else if pick == base + 1 {
                let node = space.daemon_nodes[rng.gen_range(0..space.daemon_nodes.len())];
                FaultKind::CrashGcsDaemon {
                    node,
                    restart_after: rand_duration(&mut rng, MAX_RESTART),
                }
            } else {
                FaultKind::CrashNaming {
                    restart_after: rand_duration(&mut rng, MAX_RESTART),
                }
            };
            events.push(FaultEvent { at, kind });
            at = at + MIN_CRASH_GAP + rand_duration(&mut rng, MIN_CRASH_GAP);
        }

        // Recoverable network faults draw their instants independently so
        // they overlap the crash timeline — concurrent faults are the
        // point of the campaign.
        if !space.partition_pairs.is_empty() {
            for _ in 0..rng.gen_range(0..=2u32) {
                let (a, b) = space.partition_pairs[rng.gen_range(0..space.partition_pairs.len())];
                events.push(FaultEvent {
                    at: space.start + rand_duration_u64(&mut rng, window),
                    kind: FaultKind::Partition {
                        a,
                        b,
                        heal_after: rand_duration(&mut rng, MAX_PARTITION),
                    },
                });
            }
        }
        if space.loss && rng.gen_bool(0.5) {
            events.push(FaultEvent {
                at: space.start + rand_duration_u64(&mut rng, window),
                kind: FaultKind::LossBurst {
                    probability: 0.1 + 0.4 * rng.gen::<f64>(),
                    duration: rand_duration(&mut rng, MAX_BURST),
                },
            });
        }

        events.sort_by_key(|e| e.at);
        FaultPlan {
            seed,
            events,
            leak_all: rng.gen_bool(0.3),
        }
    }

    /// Deterministically generates a plan from `seed` within `space`,
    /// drawing only from the fault families `mix` enables. Uses an RNG
    /// stream distinct from [`generate`](Self::generate), so classic
    /// campaign plans are unaffected by the richer zoo.
    pub fn generate_with(seed: u64, space: &PlanSpace, mix: &FaultMix) -> FaultPlan {
        let mut rng = SimRng::for_kernel(seed, 0xC4A06);
        let window = space.end - space.start;
        let mut events = Vec::new();

        // Crash-like events share one forward walk so the MIN_CRASH_GAP
        // discipline holds across families.
        let mut rm_left = if mix.crashes { space.rm_crashes } else { 0 };
        let slots = space.replica_slots;
        let mut at = space.start + rand_duration(&mut rng, MIN_CRASH_GAP);
        while at <= space.end {
            // Encoded choice space: 0 = plain crash (sub-drawn as in the
            // classic generator), 1 = correlated group, 2 = rolling.
            let mut families = Vec::new();
            if mix.crashes {
                families.push(0u32);
                families.push(0); // plain crashes stay the common case
            }
            if mix.correlated && slots >= 3 {
                families.push(1);
            }
            if mix.rolling && slots >= 1 {
                families.push(2);
            }
            if families.is_empty() {
                break;
            }
            match families[rng.gen_range(0..families.len())] {
                0 => {
                    let mut choices: Vec<u32> = (0..slots.max(1)).collect();
                    if rm_left > 0 {
                        choices.push(slots);
                    }
                    if !space.daemon_nodes.is_empty() {
                        choices.push(slots + 1);
                    }
                    if space.naming {
                        choices.push(slots + 2);
                    }
                    let pick = choices[rng.gen_range(0..choices.len())];
                    let kind = if pick < slots {
                        FaultKind::CrashReplica { slot: pick }
                    } else if pick == slots {
                        rm_left -= 1;
                        FaultKind::CrashRecoveryManager
                    } else if pick == slots + 1 {
                        let node = space.daemon_nodes[rng.gen_range(0..space.daemon_nodes.len())];
                        FaultKind::CrashGcsDaemon {
                            node,
                            restart_after: rand_duration(&mut rng, MAX_RESTART),
                        }
                    } else {
                        FaultKind::CrashNaming {
                            restart_after: rand_duration(&mut rng, MAX_RESTART),
                        }
                    };
                    events.push(FaultEvent { at, kind });
                }
                1 => {
                    // Group of 2 ..= slots-1 distinct slots: draw by
                    // walking the slot list, guaranteeing the size.
                    let size = rng.gen_range(2..slots);
                    let mut pool: Vec<u32> = (0..slots).collect();
                    let mut group = Vec::new();
                    for _ in 0..size {
                        let i = rng.gen_range(0..pool.len());
                        group.push(pool.swap_remove(i));
                    }
                    group.sort_unstable();
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::CorrelatedCrash { slots: group },
                    });
                }
                _ => {
                    let gap = MIN_CRASH_GAP + rand_duration(&mut rng, MIN_CRASH_GAP);
                    events.push(FaultEvent {
                        at,
                        kind: FaultKind::RollingRestart { slots, gap },
                    });
                    // The walk resumes after the last slot's kill.
                    at += gap * u64::from(slots.saturating_sub(1));
                }
            }
            at = at + MIN_CRASH_GAP + rand_duration(&mut rng, MIN_CRASH_GAP);
        }

        // Recoverable network and load faults draw their instants
        // independently so they overlap the crash timeline.
        if mix.partitions && !space.partition_pairs.is_empty() {
            for _ in 0..rng.gen_range(0..=2u32) {
                let (a, b) = space.partition_pairs[rng.gen_range(0..space.partition_pairs.len())];
                events.push(FaultEvent {
                    at: space.start + rand_duration_u64(&mut rng, window),
                    kind: FaultKind::Partition {
                        a,
                        b,
                        heal_after: rand_duration(&mut rng, MAX_PARTITION),
                    },
                });
            }
        }
        if mix.asymmetric && !space.partition_pairs.is_empty() {
            for _ in 0..rng.gen_range(0..=2u32) {
                let (a, b) = space.partition_pairs[rng.gen_range(0..space.partition_pairs.len())];
                let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                events.push(FaultEvent {
                    at: space.start + rand_duration_u64(&mut rng, window),
                    kind: FaultKind::AsymmetricPartition {
                        from,
                        to,
                        heal_after: rand_duration(&mut rng, MAX_PARTITION),
                    },
                });
            }
        }
        if mix.jitter && !space.partition_pairs.is_empty() && rng.gen_bool(0.7) {
            let (a, b) = space.partition_pairs[rng.gen_range(0..space.partition_pairs.len())];
            events.push(FaultEvent {
                at: space.start + rand_duration_u64(&mut rng, window),
                kind: FaultKind::JitteryLink {
                    a,
                    b,
                    bound: rand_duration(&mut rng, MAX_JITTER_BOUND),
                    duration: rand_duration(&mut rng, MAX_JITTER_SPAN),
                },
            });
        }
        if mix.loss && rng.gen_bool(0.5) {
            events.push(FaultEvent {
                at: space.start + rand_duration_u64(&mut rng, window),
                kind: FaultKind::LossBurst {
                    probability: 0.1 + 0.4 * rng.gen::<f64>(),
                    duration: rand_duration(&mut rng, MAX_BURST),
                },
            });
        }
        if mix.flash_crowd && rng.gen_bool(0.7) {
            events.push(FaultEvent {
                at: space.start + rand_duration_u64(&mut rng, window),
                kind: FaultKind::FlashCrowd {
                    clients: rng.gen_range(8..=24),
                    reads: rng.gen_range(2..=5),
                    spread: rand_duration(&mut rng, MAX_CROWD_SPREAD),
                },
            });
        }
        let mut pressured: Vec<u32> = Vec::new();
        if mix.cpu && slots > 0 && rng.gen_bool(0.6) {
            let slot = rng.gen_range(0..slots);
            pressured.push(slot);
            events.push(FaultEvent {
                at: space.start + rand_duration_u64(&mut rng, window),
                kind: FaultKind::CpuExhaustion {
                    slot,
                    ramp_per_sec: 0.35 + 0.55 * rng.gen::<f64>(),
                },
            });
        }
        if mix.fd && slots > 0 && rng.gen_bool(0.6) {
            let slot = rng.gen_range(0..slots);
            if !pressured.contains(&slot) {
                events.push(FaultEvent {
                    at: space.start + rand_duration_u64(&mut rng, window),
                    kind: FaultKind::FdLeak {
                        slot,
                        per_request: 0.02 + 0.06 * rng.gen::<f64>(),
                    },
                });
            }
        }

        events.sort_by_key(|e| e.at);
        FaultPlan {
            seed,
            events,
            leak_all: mix.leak && rng.gen_bool(0.3),
        }
    }

    /// Validates the plan against `space`: every event inside the fault
    /// window, probabilities in `[0, 1]`, durations within their model
    /// bounds, slot/link indices that exist, the crash-gap discipline
    /// (including the kills a [`RollingRestart`] expands into), and at
    /// most one resource-pressure fault per slot.
    ///
    /// [`RollingRestart`]: FaultKind::RollingRestart
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] found, in event order.
    pub fn validate(&self, space: &PlanSpace) -> Result<(), PlanError> {
        for (i, w) in self.events.windows(2).enumerate() {
            if w[0].at > w[1].at {
                return Err(PlanError::Unsorted { index: i + 1 });
            }
        }
        let slots = space.replica_slots;
        let mut crash_instants: Vec<SimTime> = Vec::new();
        let mut pressured: Vec<u32> = Vec::new();
        for e in &self.events {
            if e.at < space.start || e.at > space.end {
                return Err(PlanError::OutsideWindow {
                    at_ns: e.at.as_nanos(),
                });
            }
            crash_instants.extend(e.kind.crash_instants(e.at));
            let bad_duration = |d: SimDuration, lo_exclusive: bool, max: SimDuration| {
                (lo_exclusive && d.is_zero()) || d > max
            };
            match &e.kind {
                FaultKind::CrashReplica { slot } => {
                    if *slot >= slots {
                        return Err(PlanError::BadSlot { slot: *slot });
                    }
                }
                FaultKind::CrashRecoveryManager => {}
                FaultKind::CrashGcsDaemon { restart_after, .. }
                | FaultKind::CrashNaming { restart_after } => {
                    if bad_duration(*restart_after, true, MAX_RESTART) {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: restart_after.as_nanos(),
                        });
                    }
                }
                FaultKind::Partition { a, b, heal_after } => {
                    if a == b {
                        return Err(PlanError::BadLink { node: *a });
                    }
                    if bad_duration(*heal_after, true, MAX_PARTITION) {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: heal_after.as_nanos(),
                        });
                    }
                }
                FaultKind::LossBurst {
                    probability,
                    duration,
                } => {
                    if !(0.0..=1.0).contains(probability) {
                        return Err(PlanError::ProbabilityOutOfRange {
                            probability: *probability,
                        });
                    }
                    if bad_duration(*duration, true, MAX_BURST) {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: duration.as_nanos(),
                        });
                    }
                }
                FaultKind::CorrelatedCrash { slots: group } => {
                    let sorted_unique = group.windows(2).all(|w| w[0] < w[1]) && !group.is_empty();
                    if !sorted_unique || group.len() >= slots as usize {
                        return Err(PlanError::BadCrashGroup {
                            slots: group.clone(),
                        });
                    }
                    if let Some(&max_slot) = group.last() {
                        if max_slot >= slots {
                            return Err(PlanError::BadSlot { slot: max_slot });
                        }
                    }
                }
                FaultKind::FlashCrowd {
                    clients,
                    reads,
                    spread,
                } => {
                    if *clients == 0 || *clients > MAX_CROWD || *reads == 0 {
                        return Err(PlanError::BadRate {
                            fault: e.kind.name(),
                        });
                    }
                    if *spread > MAX_CROWD_SPREAD {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: spread.as_nanos(),
                        });
                    }
                }
                FaultKind::RollingRestart { slots: n, gap } => {
                    if *n == 0 || *n > slots {
                        return Err(PlanError::BadSlot { slot: *n });
                    }
                    if *gap < MIN_CRASH_GAP {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: gap.as_nanos(),
                        });
                    }
                }
                FaultKind::AsymmetricPartition {
                    from,
                    to,
                    heal_after,
                } => {
                    if from == to {
                        return Err(PlanError::BadLink { node: *from });
                    }
                    if bad_duration(*heal_after, true, MAX_PARTITION) {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: heal_after.as_nanos(),
                        });
                    }
                }
                FaultKind::JitteryLink {
                    a,
                    b,
                    bound,
                    duration,
                } => {
                    if a == b {
                        return Err(PlanError::BadLink { node: *a });
                    }
                    if bad_duration(*bound, true, MAX_JITTER_BOUND) {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: bound.as_nanos(),
                        });
                    }
                    if bad_duration(*duration, true, MAX_JITTER_SPAN) {
                        return Err(PlanError::BadDuration {
                            fault: e.kind.name(),
                            duration_ns: duration.as_nanos(),
                        });
                    }
                }
                FaultKind::CpuExhaustion { slot, ramp_per_sec } => {
                    if *slot >= slots {
                        return Err(PlanError::BadSlot { slot: *slot });
                    }
                    if !ramp_per_sec.is_finite() || *ramp_per_sec <= 0.0 {
                        return Err(PlanError::BadRate {
                            fault: e.kind.name(),
                        });
                    }
                    if pressured.contains(slot) {
                        return Err(PlanError::DuplicatePressure { slot: *slot });
                    }
                    pressured.push(*slot);
                }
                FaultKind::FdLeak { slot, per_request } => {
                    if *slot >= slots {
                        return Err(PlanError::BadSlot { slot: *slot });
                    }
                    if !per_request.is_finite() || *per_request <= 0.0 {
                        return Err(PlanError::BadRate {
                            fault: e.kind.name(),
                        });
                    }
                    if pressured.contains(slot) {
                        return Err(PlanError::DuplicatePressure { slot: *slot });
                    }
                    pressured.push(*slot);
                }
            }
        }
        crash_instants.sort();
        for w in crash_instants.windows(2) {
            if w[1] - w[0] < MIN_CRASH_GAP {
                return Err(PlanError::CrashGap {
                    first_ns: w[0].as_nanos(),
                    second_ns: w[1].as_nanos(),
                });
            }
        }
        Ok(())
    }

    /// The instant by which every fault has been injected *and* every
    /// restart / heal / burst-end it implies has fired.
    pub fn settled_by(&self) -> SimTime {
        let mut last = SimTime::ZERO;
        for e in &self.events {
            let done = match &e.kind {
                FaultKind::CrashGcsDaemon { restart_after, .. } => e.at + *restart_after,
                FaultKind::CrashNaming { restart_after } => e.at + *restart_after,
                FaultKind::Partition { heal_after, .. } => e.at + *heal_after,
                FaultKind::AsymmetricPartition { heal_after, .. } => e.at + *heal_after,
                FaultKind::LossBurst { duration, .. } => e.at + *duration,
                FaultKind::JitteryLink { duration, .. } => e.at + *duration,
                FaultKind::FlashCrowd { spread, .. } => e.at + *spread,
                FaultKind::RollingRestart { slots, gap } => {
                    e.at + *gap * u64::from(slots.saturating_sub(1))
                }
                FaultKind::CpuExhaustion { ramp_per_sec, .. } => {
                    // The ramp's implied exhaustion crash: usage reaches
                    // 1.0 after 1/ramp seconds (quantised to the pressure
                    // tick), and the relaunch it triggers follows that.
                    let secs = 1.0 / ramp_per_sec.max(f64::MIN_POSITIVE);
                    e.at
                        + SimDuration::from_nanos((secs * 1e9).min(1e15) as u64)
                        + SimDuration::from_millis(100)
                }
                FaultKind::CrashReplica { .. }
                | FaultKind::CrashRecoveryManager
                | FaultKind::CorrelatedCrash { .. }
                // An fd leak only grows while requests flow, so it can
                // only exhaust during the active phase, which the
                // executor's post-completion settling already covers.
                | FaultKind::FdLeak { .. } => e.at,
            };
            last = last.max(done);
        }
        last
    }
}

/// A uniform duration in `[1 ms, max]` (never zero — a zero restart
/// delay would race the crash it follows).
fn rand_duration(rng: &mut SimRng, max: SimDuration) -> SimDuration {
    let max_us = (max.as_nanos() / 1_000).max(1_000);
    SimDuration::from_micros(rng.gen_range(1_000..=max_us))
}

fn rand_duration_u64(rng: &mut SimRng, window: SimDuration) -> SimDuration {
    SimDuration::from_micros(rng.gen_range(0..=window.as_nanos() / 1_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> PlanSpace {
        PlanSpace {
            replica_slots: 3,
            daemon_nodes: vec![1, 2, 3],
            naming: true,
            rm_crashes: 1,
            partition_pairs: vec![(0, 4), (1, 4), (2, 4)],
            loss: true,
            start: SimTime::from_millis(700),
            end: SimTime::from_secs(5),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(
                FaultPlan::generate(seed, &space()),
                FaultPlan::generate(seed, &space())
            );
        }
    }

    #[test]
    fn events_are_sorted_and_in_window() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            assert!(!plan.events.is_empty(), "seed {seed} drew no faults");
            for w in plan.events.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
            for e in &plan.events {
                assert!(e.at >= space().start && e.at <= space().end);
            }
        }
    }

    #[test]
    fn crash_events_respect_min_gap() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            let crashes: Vec<SimTime> = plan
                .events
                .iter()
                .filter(|e| e.kind.is_crash())
                .map(|e| e.at)
                .collect();
            for w in crashes.windows(2) {
                assert!(w[1] - w[0] >= MIN_CRASH_GAP, "seed {seed}");
            }
        }
    }

    #[test]
    fn recoverable_faults_are_bounded() {
        let mut rm = 0;
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            for e in &plan.events {
                match &e.kind {
                    FaultKind::CrashGcsDaemon { restart_after, .. }
                    | FaultKind::CrashNaming { restart_after } => {
                        assert!(*restart_after <= MAX_RESTART);
                        assert!(*restart_after > SimDuration::ZERO);
                    }
                    FaultKind::Partition { heal_after, .. } => {
                        assert!(*heal_after <= MAX_PARTITION);
                    }
                    FaultKind::LossBurst {
                        probability,
                        duration,
                    } => {
                        assert!((0.1..=0.5).contains(probability));
                        assert!(*duration <= MAX_BURST);
                    }
                    FaultKind::CrashRecoveryManager => rm += 1,
                    FaultKind::CrashReplica { slot } => assert!(*slot < 3),
                    other => panic!("classic generate drew a zoo fault: {other:?}"),
                }
            }
            assert!(plan.settled_by() >= plan.events.last().expect("nonempty").at);
        }
        assert!(rm > 0, "no seed ever drew an RM crash");
    }

    #[test]
    fn rm_crash_budget_is_respected() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            let rms = plan
                .events
                .iter()
                .filter(|e| e.kind == FaultKind::CrashRecoveryManager)
                .count();
            assert!(rms <= 1, "seed {seed} drew {rms} RM crashes");
        }
    }

    #[test]
    fn generate_with_is_deterministic_and_distinct_from_classic() {
        let mix = FaultMix::all();
        let mut differs = false;
        for seed in 0..50 {
            let a = FaultPlan::generate_with(seed, &space(), &mix);
            let b = FaultPlan::generate_with(seed, &space(), &mix);
            assert_eq!(a, b, "seed {seed}");
            if a != FaultPlan::generate(seed, &space()) {
                differs = true;
            }
        }
        assert!(differs, "zoo generator never diverged from classic");
    }

    #[test]
    fn generate_with_honors_the_mix() {
        let net_only = FaultMix {
            asymmetric: true,
            jitter: true,
            partitions: true,
            ..FaultMix::none()
        };
        for seed in 0..100 {
            let plan = FaultPlan::generate_with(seed, &space(), &net_only);
            for e in &plan.events {
                assert!(
                    matches!(
                        e.kind,
                        FaultKind::Partition { .. }
                            | FaultKind::AsymmetricPartition { .. }
                            | FaultKind::JitteryLink { .. }
                    ),
                    "seed {seed} drew off-mix fault {:?}",
                    e.kind
                );
            }
        }
    }

    #[test]
    fn generated_zoo_plans_validate_clean() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..300 {
            let plan = FaultPlan::generate_with(seed, &space(), &FaultMix::all());
            plan.validate(&space())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for e in &plan.events {
                seen.insert(e.kind.name());
            }
        }
        for kind in [
            "correlated_crash",
            "flash_crowd",
            "rolling_restart",
            "asymmetric_partition",
            "jittery_link",
            "cpu_exhaustion",
            "fd_leak",
        ] {
            assert!(seen.contains(kind), "300 seeds never drew {kind}");
        }
    }

    #[test]
    fn validate_rejects_bad_probability() {
        for probability in [-0.1, 1.5, f64::NAN] {
            let plan = FaultPlan {
                seed: 0,
                leak_all: false,
                events: vec![FaultEvent {
                    at: SimTime::from_millis(800),
                    kind: FaultKind::LossBurst {
                        probability,
                        duration: SimDuration::from_millis(100),
                    },
                }],
            };
            assert!(matches!(
                plan.validate(&space()),
                Err(PlanError::ProbabilityOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn validate_rejects_out_of_window_and_unsorted() {
        let event = |ms: u64| FaultEvent {
            at: SimTime::from_millis(ms),
            kind: FaultKind::Partition {
                a: 0,
                b: 4,
                heal_after: SimDuration::from_millis(100),
            },
        };
        let early = FaultPlan {
            seed: 0,
            leak_all: false,
            events: vec![event(100)],
        };
        assert!(matches!(
            early.validate(&space()),
            Err(PlanError::OutsideWindow { .. })
        ));
        let unsorted = FaultPlan {
            seed: 0,
            leak_all: false,
            events: vec![event(900), event(800)],
        };
        assert!(matches!(
            unsorted.validate(&space()),
            Err(PlanError::Unsorted { index: 1 })
        ));
    }

    #[test]
    fn validate_rejects_crash_gap_violations_including_rolling_expansion() {
        let plan = FaultPlan {
            seed: 0,
            leak_all: false,
            events: vec![
                FaultEvent {
                    at: SimTime::from_millis(800),
                    kind: FaultKind::CrashReplica { slot: 0 },
                },
                FaultEvent {
                    at: SimTime::from_millis(900),
                    kind: FaultKind::CrashReplica { slot: 1 },
                },
            ],
        };
        assert!(matches!(
            plan.validate(&space()),
            Err(PlanError::CrashGap { .. })
        ));
        // A rolling restart expands into per-slot instants; a crash too
        // close to one of the *later* instants must also be rejected.
        let rolling = FaultPlan {
            seed: 0,
            leak_all: false,
            events: vec![
                FaultEvent {
                    at: SimTime::from_millis(800),
                    kind: FaultKind::RollingRestart {
                        slots: 3,
                        gap: MIN_CRASH_GAP,
                    },
                },
                FaultEvent {
                    at: SimTime::from_millis(800) + MIN_CRASH_GAP * 2 + SimDuration::from_millis(1),
                    kind: FaultKind::CrashReplica { slot: 0 },
                },
            ],
        };
        assert!(matches!(
            rolling.validate(&space()),
            Err(PlanError::CrashGap { .. })
        ));
    }

    #[test]
    fn validate_rejects_malformed_zoo_faults() {
        let at = SimTime::from_millis(800);
        let cases: Vec<(FaultKind, PlanError)> = vec![
            (
                FaultKind::CorrelatedCrash { slots: vec![2, 1] },
                PlanError::BadCrashGroup { slots: vec![2, 1] },
            ),
            (
                FaultKind::CorrelatedCrash { slots: vec![0, 7] },
                PlanError::BadSlot { slot: 7 },
            ),
            (
                FaultKind::FlashCrowd {
                    clients: MAX_CROWD + 1,
                    reads: 2,
                    spread: SimDuration::from_millis(100),
                },
                PlanError::BadRate {
                    fault: "flash_crowd",
                },
            ),
            (
                FaultKind::AsymmetricPartition {
                    from: 2,
                    to: 2,
                    heal_after: SimDuration::from_millis(100),
                },
                PlanError::BadLink { node: 2 },
            ),
            (
                FaultKind::JitteryLink {
                    a: 0,
                    b: 4,
                    bound: MAX_JITTER_BOUND + SimDuration::from_millis(1),
                    duration: SimDuration::from_millis(100),
                },
                PlanError::BadDuration {
                    fault: "jittery_link",
                    duration_ns: (MAX_JITTER_BOUND + SimDuration::from_millis(1)).as_nanos(),
                },
            ),
            (
                FaultKind::CpuExhaustion {
                    slot: 0,
                    ramp_per_sec: -1.0,
                },
                PlanError::BadRate {
                    fault: "cpu_exhaustion",
                },
            ),
            (
                FaultKind::FdLeak {
                    slot: 9,
                    per_request: 0.05,
                },
                PlanError::BadSlot { slot: 9 },
            ),
        ];
        for (kind, want) in cases {
            let plan = FaultPlan {
                seed: 0,
                leak_all: false,
                events: vec![FaultEvent { at, kind }],
            };
            assert_eq!(plan.validate(&space()).expect_err("invalid"), want);
        }
        // At most one pressure fault per slot.
        let dup = FaultPlan {
            seed: 0,
            leak_all: false,
            events: vec![
                FaultEvent {
                    at,
                    kind: FaultKind::CpuExhaustion {
                        slot: 1,
                        ramp_per_sec: 0.5,
                    },
                },
                FaultEvent {
                    at: at + SimDuration::from_millis(50),
                    kind: FaultKind::FdLeak {
                        slot: 1,
                        per_request: 0.05,
                    },
                },
            ],
        };
        assert_eq!(
            dup.validate(&space()).expect_err("invalid"),
            PlanError::DuplicatePressure { slot: 1 }
        );
    }
}
