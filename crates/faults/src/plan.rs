//! Seeded chaos fault plans.
//!
//! A [`FaultPlan`] is a deterministic, timed schedule of faults — process
//! crashes, infrastructure crashes, link partitions, message-loss bursts
//! and multi-replica leaks — generated from a seed and a [`PlanSpace`]
//! describing what the target topology can absorb. The chaos campaign
//! (`experiments --bin chaos`) sweeps hundreds of such plans through the
//! simulator and checks recovery invariants after each one.
//!
//! The generator keeps every plan inside the warm-passive `f = 1` fault
//! model the stack is built for:
//!
//! * **crash-like** events (replica / RM / daemon / naming crashes) are
//!   spaced at least [`MIN_CRASH_GAP`] apart, so recovery from one fault
//!   completes before the next lands;
//! * infrastructure restarts happen within [`MAX_RESTART`];
//! * partitions always heal within [`MAX_PARTITION`], and loss bursts end
//!   within [`MAX_BURST`] — they may *overlap* crashes (that is the
//!   interesting concurrency), but can never strand traffic forever;
//! * at most `PlanSpace::rm_crashes` Recovery-Manager crashes are drawn,
//!   since nothing relaunches the RM itself.

use rand::Rng;
use simnet::{SimDuration, SimRng, SimTime};

/// Minimum spacing between two crash-like events.
pub const MIN_CRASH_GAP: SimDuration = SimDuration::from_millis(600);
/// Upper bound on infrastructure restart delay.
pub const MAX_RESTART: SimDuration = SimDuration::from_millis(200);
/// Upper bound on a partition's lifetime.
pub const MAX_PARTITION: SimDuration = SimDuration::from_millis(500);
/// Upper bound on a loss burst's lifetime.
pub const MAX_BURST: SimDuration = SimDuration::from_millis(300);

/// One injectable fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Kill the server replica currently bound to `slot`.
    CrashReplica {
        /// Replica slot index (0-based).
        slot: u32,
    },
    /// Kill the lowest-numbered live Recovery Manager instance.
    CrashRecoveryManager,
    /// Kill the GCS daemon on `node`; the executor restarts it after
    /// `restart_after`.
    CrashGcsDaemon {
        /// Node index hosting the daemon.
        node: u32,
        /// Delay before the daemon is respawned.
        restart_after: SimDuration,
    },
    /// Kill the Naming Service; the executor restarts it (empty — the
    /// paper's naming store is in-memory) after `restart_after`.
    CrashNaming {
        /// Delay before the naming service is respawned.
        restart_after: SimDuration,
    },
    /// Sever the link between two nodes; healed after `heal_after`.
    Partition {
        /// First node index.
        a: u32,
        /// Second node index.
        b: u32,
        /// Delay before the link heals.
        heal_after: SimDuration,
    },
    /// Delay-retransmit every message with probability `probability`
    /// for `duration`, then restore the configured loss model.
    LossBurst {
        /// Per-delivery retransmission probability in `[0, 1]`.
        probability: f64,
        /// Burst length.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// Whether this fault kills a process (and therefore needs the
    /// [`MIN_CRASH_GAP`] spacing discipline).
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            FaultKind::CrashReplica { .. }
                | FaultKind::CrashRecoveryManager
                | FaultKind::CrashGcsDaemon { .. }
                | FaultKind::CrashNaming { .. }
        )
    }
}

/// A fault scheduled at an absolute simulation instant.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: SimTime,
    /// What to inject.
    pub kind: FaultKind,
}

/// A complete seeded chaos schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The seed this plan was generated from (also seeds the scenario).
    pub seed: u64,
    /// Events sorted by [`FaultEvent::at`].
    pub events: Vec<FaultEvent>,
    /// When `true`, every server replica runs the paper's memory leak —
    /// the multi-replica-leak composition from the campaign brief.
    pub leak_all: bool,
}

/// What the target topology can absorb; bounds the generator's draws.
#[derive(Clone, Debug)]
pub struct PlanSpace {
    /// Number of server replica slots (crash targets).
    pub replica_slots: u32,
    /// Node indices whose GCS daemon may be crashed (and restarted).
    pub daemon_nodes: Vec<u32>,
    /// Whether the Naming Service may be crashed (and restarted).
    pub naming: bool,
    /// Maximum Recovery-Manager crashes per plan (`0` = never; keep
    /// below the number of RM instances, nothing relaunches the RM).
    pub rm_crashes: u32,
    /// Node pairs whose link may be partitioned.
    pub partition_pairs: Vec<(u32, u32)>,
    /// Whether message-loss bursts may be drawn.
    pub loss: bool,
    /// Earliest injection instant (after boot/warm-up).
    pub start: SimTime,
    /// Latest instant a fault may *begin* (heals/restarts may run past).
    pub end: SimTime,
}

impl FaultPlan {
    /// Deterministically generates a plan from `seed` within `space`.
    pub fn generate(seed: u64, space: &PlanSpace) -> FaultPlan {
        let mut rng = SimRng::for_kernel(seed, 0xC4A05);
        let window = space.end - space.start;
        let mut events = Vec::new();

        // Crash-like events: walk forward from `start`, one MIN_CRASH_GAP
        // (plus jitter) at a time, so recovery always has room to finish.
        let mut rm_left = space.rm_crashes;
        let mut at = space.start + rand_duration(&mut rng, MIN_CRASH_GAP);
        while at <= space.end {
            let mut choices: Vec<u32> = vec![0; space.replica_slots.max(1) as usize];
            for (slot, c) in choices.iter_mut().enumerate() {
                *c = slot as u32; // encode CrashReplica{slot} as its slot
            }
            let base = space.replica_slots;
            if rm_left > 0 {
                choices.push(base); // CrashRecoveryManager
            }
            if !space.daemon_nodes.is_empty() {
                choices.push(base + 1); // CrashGcsDaemon
            }
            if space.naming {
                choices.push(base + 2); // CrashNaming
            }
            let pick = choices[rng.gen_range(0..choices.len())];
            let kind = if pick < base {
                FaultKind::CrashReplica { slot: pick }
            } else if pick == base {
                rm_left -= 1;
                FaultKind::CrashRecoveryManager
            } else if pick == base + 1 {
                let node = space.daemon_nodes[rng.gen_range(0..space.daemon_nodes.len())];
                FaultKind::CrashGcsDaemon {
                    node,
                    restart_after: rand_duration(&mut rng, MAX_RESTART),
                }
            } else {
                FaultKind::CrashNaming {
                    restart_after: rand_duration(&mut rng, MAX_RESTART),
                }
            };
            events.push(FaultEvent { at, kind });
            at = at + MIN_CRASH_GAP + rand_duration(&mut rng, MIN_CRASH_GAP);
        }

        // Recoverable network faults draw their instants independently so
        // they overlap the crash timeline — concurrent faults are the
        // point of the campaign.
        if !space.partition_pairs.is_empty() {
            for _ in 0..rng.gen_range(0..=2u32) {
                let (a, b) = space.partition_pairs[rng.gen_range(0..space.partition_pairs.len())];
                events.push(FaultEvent {
                    at: space.start + rand_duration_u64(&mut rng, window),
                    kind: FaultKind::Partition {
                        a,
                        b,
                        heal_after: rand_duration(&mut rng, MAX_PARTITION),
                    },
                });
            }
        }
        if space.loss && rng.gen_bool(0.5) {
            events.push(FaultEvent {
                at: space.start + rand_duration_u64(&mut rng, window),
                kind: FaultKind::LossBurst {
                    probability: 0.1 + 0.4 * rng.gen::<f64>(),
                    duration: rand_duration(&mut rng, MAX_BURST),
                },
            });
        }

        events.sort_by_key(|e| e.at);
        FaultPlan {
            seed,
            events,
            leak_all: rng.gen_bool(0.3),
        }
    }

    /// The instant by which every fault has been injected *and* every
    /// restart / heal / burst-end it implies has fired.
    pub fn settled_by(&self) -> SimTime {
        let mut last = SimTime::ZERO;
        for e in &self.events {
            let done = match &e.kind {
                FaultKind::CrashGcsDaemon { restart_after, .. } => e.at + *restart_after,
                FaultKind::CrashNaming { restart_after } => e.at + *restart_after,
                FaultKind::Partition { heal_after, .. } => e.at + *heal_after,
                FaultKind::LossBurst { duration, .. } => e.at + *duration,
                _ => e.at,
            };
            last = last.max(done);
        }
        last
    }
}

/// A uniform duration in `[1 ms, max]` (never zero — a zero restart
/// delay would race the crash it follows).
fn rand_duration(rng: &mut SimRng, max: SimDuration) -> SimDuration {
    let max_us = (max.as_nanos() / 1_000).max(1_000);
    SimDuration::from_micros(rng.gen_range(1_000..=max_us))
}

fn rand_duration_u64(rng: &mut SimRng, window: SimDuration) -> SimDuration {
    SimDuration::from_micros(rng.gen_range(0..=window.as_nanos() / 1_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> PlanSpace {
        PlanSpace {
            replica_slots: 3,
            daemon_nodes: vec![1, 2, 3],
            naming: true,
            rm_crashes: 1,
            partition_pairs: vec![(0, 4), (1, 4), (2, 4)],
            loss: true,
            start: SimTime::from_millis(700),
            end: SimTime::from_secs(5),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(
                FaultPlan::generate(seed, &space()),
                FaultPlan::generate(seed, &space())
            );
        }
    }

    #[test]
    fn events_are_sorted_and_in_window() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            assert!(!plan.events.is_empty(), "seed {seed} drew no faults");
            for w in plan.events.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
            for e in &plan.events {
                assert!(e.at >= space().start && e.at <= space().end);
            }
        }
    }

    #[test]
    fn crash_events_respect_min_gap() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            let crashes: Vec<SimTime> = plan
                .events
                .iter()
                .filter(|e| e.kind.is_crash())
                .map(|e| e.at)
                .collect();
            for w in crashes.windows(2) {
                assert!(w[1] - w[0] >= MIN_CRASH_GAP, "seed {seed}");
            }
        }
    }

    #[test]
    fn recoverable_faults_are_bounded() {
        let mut rm = 0;
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            for e in &plan.events {
                match &e.kind {
                    FaultKind::CrashGcsDaemon { restart_after, .. }
                    | FaultKind::CrashNaming { restart_after } => {
                        assert!(*restart_after <= MAX_RESTART);
                        assert!(*restart_after > SimDuration::ZERO);
                    }
                    FaultKind::Partition { heal_after, .. } => {
                        assert!(*heal_after <= MAX_PARTITION);
                    }
                    FaultKind::LossBurst {
                        probability,
                        duration,
                    } => {
                        assert!((0.1..=0.5).contains(probability));
                        assert!(*duration <= MAX_BURST);
                    }
                    FaultKind::CrashRecoveryManager => rm += 1,
                    FaultKind::CrashReplica { slot } => assert!(*slot < 3),
                }
            }
            assert!(plan.settled_by() >= plan.events.last().expect("nonempty").at);
        }
        assert!(rm > 0, "no seed ever drew an RM crash");
    }

    #[test]
    fn rm_crash_budget_is_respected() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &space());
            let rms = plan
                .events
                .iter()
                .filter(|e| e.kind == FaultKind::CrashRecoveryManager)
                .count();
            assert!(rms <= 1, "seed {seed} drew {rms} RM crashes");
        }
    }
}
